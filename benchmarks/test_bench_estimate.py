"""Benchmarks of the state-estimate kernel (PR 5).

Two families:

* **closure** — the timed tau-closure on plants with *hidden routing
  choices*: ``m`` parallel components each take one of two internalised
  syncs resetting different clocks, so ``2^m`` pairwise-incomparable
  zones pile up per discrete state — exactly the shape the stacked
  kernel batches (one guard/reset/invariant/delay pipeline per group,
  one broadcast subsumption matrix per wave).  The per-zone reference
  path is selected by ``REPRO_ESTIMATE_SCALAR=1``, which is how the
  committed ``BENCH_pre_pr5`` baseline was recorded.
* **session** — end-to-end estimated-monitor conformance sessions on
  generated composed plants (the unit price the sharded differential
  campaign pays per instance), plus the campaign sharding overhead
  itself at ``jobs`` 1 vs 2 on a small instance window.

Benchmarks use the *default* estimate mode so one command measures
whatever the environment selects — record a scalar baseline with::

    REPRO_ESTIMATE_SCALAR=1 python -m pytest benchmarks/test_bench_estimate.py \
        --benchmark-json pre.json
"""

from fractions import Fraction

import pytest

from repro.gen import generate_instance, run_campaign
from repro.gen.differential import DiffConfig
from repro.par import auto_jobs
from repro.semantics import StateEstimate, System
from repro.ta.builder import NetworkBuilder
from repro.testing import EagerPolicy, SimulatedImplementation, TiocoMonitor
from repro.util import counters


def hidden_choices_network(m: int, window: int = 3):
    """``m`` hidden routing choices, each resetting a different clock.

    Components ``C0..Cm-1`` leave their initial location through one of
    two internalised syncs (``r_i!`` resets ``x_i``, ``s_i!`` resets
    ``y_i``) within a bounded window — redundant internal failover paths
    invisible at the boundary.  The observable face is a plain
    ``go? … fin!`` exchange.
    """
    net = NetworkBuilder(f"choices{m}")
    net.clock(*[f"x{i}" for i in range(m)], *[f"y{i}" for i in range(m)], "cf")
    net.input_channel("go")
    hidden = [name for i in range(m) for name in (f"r{i}", f"s{i}")]
    net.output_channel("fin", *hidden)
    net.interface("go", "fin")
    for i in range(m):
        c = net.automaton(f"C{i}")
        c.location("Busy", f"x{i} <= {window}", initial=True)
        c.location("Done")
        c.edge("Busy", "Done", sync=f"r{i}!", assign=f"x{i} := 0")
        c.edge("Busy", "Done", sync=f"s{i}!", assign=f"y{i} := 0")
    r = net.automaton("R")
    r.location("Idle", initial=True)
    for i in range(m):
        r.edge("Idle", "Idle", sync=f"r{i}?")
        r.edge("Idle", "Idle", sync=f"s{i}?")
    f = net.automaton("F")
    f.location("Wait", initial=True)
    f.location("Armed", "cf <= 6")
    f.location("End")
    f.edge("Wait", "Armed", sync="go?", assign="cf := 0")
    f.edge("Armed", "End", sync="fin!", guard="cf >= 1")
    return net.build()


@pytest.mark.parametrize("m,window", [(2, 4), (3, 3)], ids=["m2w4", "m3w3"])
def test_bench_estimate_closure(benchmark, m, window):
    """Timed closure + delay + closure + labels on a 2^m-way estimate."""
    network = hidden_choices_network(m, window)

    def run():
        estimate = StateEstimate(System(network), max_states=2048)
        assert estimate.observe("go", "input")
        estimate.max_quiescence()
        assert estimate.advance(Fraction(3, 2))
        estimate.max_quiescence()
        labels = estimate.enabled_labels("output")
        assert labels == ["fin"]
        return estimate.size

    size = benchmark(run)
    benchmark.extra_info["members"] = size
    benchmark.extra_info["mode"] = (
        "scalar" if not StateEstimate(System(network)).batch else "batched"
    )


def test_bench_estimate_rescaled_probes(benchmark):
    """Quiescence probes through rescaling delays (memo + scale_stack)."""
    network = hidden_choices_network(3, 3)

    def run():
        estimate = StateEstimate(System(network), max_states=2048)
        assert estimate.observe("go", "input")
        for delay in (Fraction(1, 2), Fraction(1, 3), Fraction(1, 3)):
            estimate.max_quiescence()
            assert estimate.advance(delay)
        bound, _ = estimate.max_quiescence()
        return bound

    assert benchmark(run) is not None


@pytest.mark.parametrize("family", ["clientserver", "chain"])
def test_bench_estimated_session(benchmark, family):
    """End-to-end estimated-monitor sessions on generated plants."""
    instances = [generate_instance(seed, family) for seed in (0, 2, 4)]

    def run():
        steps = 0
        for instance in instances:
            system = System(instance.plant)
            imp = SimulatedImplementation(system, EagerPolicy())
            monitor = TiocoMonitor(System(instance.plant))
            inputs = monitor.enabled_labels("input")
            if inputs and imp.give_input(inputs[0]):
                assert monitor.observe(inputs[0], "input")
            for _ in range(12):
                scheduled = imp.next_output()
                if scheduled is None:
                    delay = Fraction(1)
                    if not monitor.max_quiescence().allows(delay):
                        break
                    imp.advance(delay)
                    assert monitor.advance(delay)
                    steps += 1
                    continue
                label = imp.advance(scheduled.delay)
                assert monitor.advance(scheduled.delay), monitor.violation
                if label is not None:
                    assert monitor.observe(label, "output"), monitor.violation
                steps += 1
        return steps

    assert benchmark(run) > 0


def test_bench_estimated_session_hidden_choices(benchmark):
    """A monitor session where the estimate dominates the step cost.

    The implementation schedules the hidden failover syncs itself; the
    tioco monitor tracks the full ``2^m``-way estimate through delays and
    the final output — the expensive kind of instance the sharded
    campaign runs, and the end-to-end face of the closure benchmarks.
    """
    network = hidden_choices_network(3, 3)

    def run():
        system = System(network)
        imp = SimulatedImplementation(system, EagerPolicy())
        monitor = TiocoMonitor(System(network), max_states=2048)
        assert imp.give_input("go")
        assert monitor.observe("go", "input")
        steps = 0
        for _ in range(10):
            scheduled = imp.next_output()
            if scheduled is None:
                delay = Fraction(1)
                if not monitor.max_quiescence().allows(delay):
                    break
                imp.advance(delay)
                assert monitor.advance(delay)
                steps += 1
                continue
            label = imp.advance(scheduled.delay)
            assert monitor.advance(scheduled.delay), monitor.violation
            if label is not None:
                assert monitor.observe(label, "output"), monitor.violation
            steps += 1
        return steps

    assert benchmark(run) > 0


@pytest.mark.parametrize("jobs", [1, 2])
def test_bench_campaign_sharded(benchmark, jobs):
    """Campaign throughput at --jobs 1 vs 2 (speedup scales with cores).

    On a single-core runner the two are expected to tie (the sharded
    path's pool overhead is the thing being bounded here); the recorded
    ``cpus`` extra_info says which regime a given JSON measured.
    """
    config = DiffConfig(max_nodes=800, sim_steps=8, conf_steps=8,
                        check_fixpoint=False)

    def run():
        summary = run_campaign(
            count=12,
            seed=4200,
            diff_config=config,
            checks=("estimate", "conformance"),
            zone_trials=0,
            shrink=False,
            jobs=jobs,
        )
        assert summary.ok
        return len(summary.reports)

    assert benchmark(run) == 12
    benchmark.extra_info["cpus"] = auto_jobs()


def test_estimate_counters_track_batching():
    """The op counters distinguish the batched and scalar pipelines."""
    counters.reset()
    estimate = StateEstimate(
        System(hidden_choices_network(3, 3)), batch=True, batch_min=1,
        max_states=2048,
    )
    estimate.observe("go", "input")
    estimate.max_quiescence()
    counts = counters.export()["counts"]
    assert counts.get("estimate.timed_closures") == 1
    assert counts.get("estimate.batched_groups", 0) > 0
    assert counts.get("stack.hidden_posts", 0) > 0
    assert counts.get("stack.frontier_reductions", 0) > 0
