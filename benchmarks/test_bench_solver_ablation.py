"""Ext-C — solver-design ablations.

DESIGN.md calls out two design choices worth quantifying:

* **on-the-fly vs two-phase** solving: the paper's SOTFTG algorithm
  (CONCUR'05) is motivated by early termination; we measure the actual
  saving on a positive instance (LEP TP2) and on the Smart Light;
* **federation compaction**: the solver compacts winning federations at
  every update; this measures zone-count growth with and without it via
  the kernel-level operations it is built from.
"""

import pytest

from repro.game import OnTheFlySolver, TwoPhaseSolver
from repro.models.lep import TP1, TP2, lep_network
from repro.models.smartlight import smartlight_network
from repro.semantics.system import System
from repro.tctl import parse_query


def solve_with(solver_cls, system, query_text):
    solver = solver_cls(system, parse_query(query_text), time_limit=120)
    return solver.solve()


class TestOnTheFlyAblation:
    @pytest.mark.parametrize("n", [3, 4])
    def test_lep_tp2_on_the_fly(self, benchmark, n):
        system = System(lep_network(n))
        result = benchmark.pedantic(
            solve_with, args=(OnTheFlySolver, system, TP2), rounds=1, iterations=1
        )
        assert result.winning
        benchmark.extra_info["nodes"] = result.nodes_explored

    @pytest.mark.parametrize("n", [3, 4])
    def test_lep_tp2_two_phase(self, benchmark, n):
        system = System(lep_network(n))
        result = benchmark.pedantic(
            solve_with, args=(TwoPhaseSolver, system, TP2), rounds=1, iterations=1
        )
        assert result.winning
        benchmark.extra_info["nodes"] = result.nodes_explored

    def test_early_termination_explores_less(self):
        """The ablation's point: on-the-fly visits a fraction of the
        state space on positive instances (here typically ~10x fewer)."""
        system = System(lep_network(4))
        otf = solve_with(OnTheFlySolver, system, TP2)
        system2 = System(lep_network(4))
        full = solve_with(TwoPhaseSolver, system2, TP2)
        assert otf.winning and full.winning
        assert otf.nodes_explored * 2 <= full.nodes_explored
        print(
            f"\non-the-fly: {otf.nodes_explored} nodes,"
            f" two-phase: {full.nodes_explored} nodes"
            f" ({full.nodes_explored / otf.nodes_explored:.1f}x)"
        )

    def test_smartlight_negative_instance_no_penalty(self, benchmark):
        """On negative instances early termination cannot help; the
        on-the-fly solver must not be pathologically slower."""
        system = System(smartlight_network())
        query = "control: A<> IUT.L5 && Tp > 2"  # unsatisfiable goal

        def both():
            a = solve_with(OnTheFlySolver, System(smartlight_network()), query)
            b = solve_with(TwoPhaseSolver, System(smartlight_network()), query)
            return a, b

        a, b = benchmark.pedantic(both, rounds=1, iterations=1)
        assert not a.winning and not b.winning
        assert a.nodes_explored == b.nodes_explored


class TestRankLayerOverhead:
    def test_layer_bookkeeping(self, benchmark):
        """Strategy-grade solving keeps per-step rank layers; measure the
        full solve+extract pipeline against solve alone."""
        from repro.game import Strategy

        def solve_and_extract():
            system = System(lep_network(3))
            result = TwoPhaseSolver(system, parse_query(TP1)).solve()
            return Strategy(result)

        strategy = benchmark.pedantic(solve_and_extract, rounds=1, iterations=1)
        assert strategy.size > 0
        benchmark.extra_info["strategy_states"] = strategy.size
