"""Ext-D — DBM / federation kernel micro-benchmarks.

The zone kernel dominates solver runtime (the repro band notes "weak DBM
libs" as the main Python risk), so its primitives are benchmarked
directly: closure, intersection, up/down, subtraction, inclusion, and the
Predt operator they compose into.
"""

import random

import pytest

from repro.dbm import DBM, Federation, le
from repro.game.predt import predt


def random_zone(rng, dim=5, constraints=6):
    zone = DBM.universal(dim)
    for _ in range(constraints):
        i = rng.randrange(dim)
        j = rng.randrange(dim)
        if i == j:
            continue
        value = rng.randint(-6, 14)
        strict = rng.random() < 0.5
        zone = zone.tighten(i, j, (value << 1) | (0 if strict else 1))
        if zone.is_empty():
            return random_zone(rng, dim, constraints)
    return zone


@pytest.fixture(scope="module")
def zone_pool():
    rng = random.Random(2008)
    return [random_zone(rng) for _ in range(64)]


@pytest.fixture(scope="module")
def federation_pool(zone_pool):
    rng = random.Random(443)
    feds = []
    for _ in range(16):
        zones = rng.sample(zone_pool, 3)
        feds.append(Federation(5, zones))
    return feds


def test_bench_from_constraints(benchmark):
    constraints = [(1, 0, le(9)), (0, 1, le(-2)), (2, 1, le(4)), (3, 0, le(20))]
    result = benchmark(DBM.from_constraints, 5, constraints)
    assert not result.is_empty()


def test_bench_intersection(benchmark, zone_pool):
    def run():
        acc = 0
        for a, b in zip(zone_pool, zone_pool[1:]):
            if not a.intersect(b).is_empty():
                acc += 1
        return acc

    assert benchmark(run) >= 0


def test_bench_up_down(benchmark, zone_pool):
    def run():
        for z in zone_pool:
            z.up()
            z.down()

    benchmark(run)


def test_bench_reset(benchmark, zone_pool):
    def run():
        for z in zone_pool:
            z.reset([1, 2])

    benchmark(run)


def test_bench_inclusion(benchmark, zone_pool):
    def run():
        hits = 0
        for a in zone_pool[:16]:
            for b in zone_pool[:16]:
                if a.includes(b):
                    hits += 1
        return hits

    assert benchmark(run) >= 16  # reflexive hits at least


def test_bench_subtraction(benchmark, zone_pool):
    from repro.dbm import subtract_zone

    def run():
        pieces = 0
        for a, b in zip(zone_pool[:24], zone_pool[1:25]):
            pieces += len(subtract_zone(a, b))
        return pieces

    assert benchmark(run) >= 0


def test_bench_federation_subtract(benchmark, federation_pool):
    def run():
        total = 0
        for f1, f2 in zip(federation_pool, federation_pool[1:]):
            total += len(f1.subtract(f2))
        return total

    assert benchmark(run) >= 0


def test_bench_federation_includes(benchmark, federation_pool):
    def run():
        hits = 0
        for f1 in federation_pool[:8]:
            for f2 in federation_pool[:8]:
                if f1.includes(f2):
                    hits += 1
        return hits

    assert benchmark(run) >= 8


def test_bench_predt(benchmark, federation_pool):
    def run():
        total = 0
        for goal, bad in zip(federation_pool[:8], federation_pool[1:9]):
            total += len(predt(goal, bad))
        return total

    assert benchmark(run) >= 0


def test_bench_sample(benchmark, zone_pool):
    def run():
        for z in zone_pool:
            z.sample()

    benchmark(run)
