"""Ext-D — DBM / federation kernel micro-benchmarks.

The zone kernel dominates solver runtime (the repro band notes "weak DBM
libs" as the main Python risk), so its primitives are benchmarked
directly: closure, intersection, up/down, subtraction, inclusion, and the
Predt operator they compose into.
"""

import random

import pytest

from repro import faults
from repro.dbm import DBM, Federation, le
from repro.dbm import backends as kernel_backends
from repro.dbm import stack as sk
from repro.game.predt import predt
from repro.util import counters


def random_zone(rng, dim=5, constraints=6):
    zone = DBM.universal(dim)
    for _ in range(constraints):
        i = rng.randrange(dim)
        j = rng.randrange(dim)
        if i == j:
            continue
        value = rng.randint(-6, 14)
        strict = rng.random() < 0.5
        zone = zone.tighten(i, j, (value << 1) | (0 if strict else 1))
        if zone.is_empty():
            return random_zone(rng, dim, constraints)
    return zone


@pytest.fixture(scope="module")
def zone_pool():
    rng = random.Random(2008)
    return [random_zone(rng) for _ in range(64)]


@pytest.fixture(scope="module")
def federation_pool(zone_pool):
    rng = random.Random(443)
    feds = []
    for _ in range(16):
        zones = rng.sample(zone_pool, 3)
        feds.append(Federation(5, zones))
    return feds


def test_bench_from_constraints(benchmark):
    constraints = [(1, 0, le(9)), (0, 1, le(-2)), (2, 1, le(4)), (3, 0, le(20))]
    result = benchmark(DBM.from_constraints, 5, constraints)
    assert not result.is_empty()


def test_bench_intersection(benchmark, zone_pool):
    def run():
        acc = 0
        for a, b in zip(zone_pool, zone_pool[1:]):
            if not a.intersect(b).is_empty():
                acc += 1
        return acc

    assert benchmark(run) >= 0


def test_bench_up_down(benchmark, zone_pool):
    def run():
        for z in zone_pool:
            z.up()
            z.down()

    benchmark(run)


def test_bench_reset(benchmark, zone_pool):
    def run():
        for z in zone_pool:
            z.reset([1, 2])

    benchmark(run)


def test_bench_inclusion(benchmark, zone_pool):
    def run():
        hits = 0
        for a in zone_pool[:16]:
            for b in zone_pool[:16]:
                if a.includes(b):
                    hits += 1
        return hits

    assert benchmark(run) >= 16  # reflexive hits at least


def test_bench_subtraction(benchmark, zone_pool):
    from repro.dbm import subtract_zone

    def run():
        pieces = 0
        for a, b in zip(zone_pool[:24], zone_pool[1:25]):
            pieces += len(subtract_zone(a, b))
        return pieces

    assert benchmark(run) >= 0


def test_bench_federation_subtract(benchmark, federation_pool):
    def run():
        total = 0
        for f1, f2 in zip(federation_pool, federation_pool[1:]):
            total += len(f1.subtract(f2))
        return total

    assert benchmark(run) >= 0


def test_bench_federation_includes(benchmark, federation_pool):
    def run():
        hits = 0
        for f1 in federation_pool[:8]:
            for f2 in federation_pool[:8]:
                if f1.includes(f2):
                    hits += 1
        return hits

    assert benchmark(run) >= 8


def test_bench_predt(benchmark, federation_pool):
    def run():
        total = 0
        for goal, bad in zip(federation_pool[:8], federation_pool[1:9]):
            total += len(predt(goal, bad))
        return total

    assert benchmark(run) >= 0


def test_bench_sample(benchmark, zone_pool):
    def run():
        for z in zone_pool:
            z.sample()

    benchmark(run)


# ----------------------------------------------------------------------
# Stacked-kernel microbenches, per active backend
# ----------------------------------------------------------------------
#
# These exercise the raw :mod:`repro.dbm.stack` entry points that the
# pluggable kernel backends (``REPRO_KERNEL_BACKEND``) implement, at the
# stack sizes that bracket real workloads: k=4 (just past the dispatch
# threshold), k=32 (typical estimate closure), k=256 (stress).  The
# active backend name and the ``dbm.backend_*`` dispatch counters land
# in ``extra_info`` so saved JSONs are comparable across backends.

KERNEL_KS = [4, 32, 256]


def _record_backend(benchmark):
    benchmark.extra_info["kernel_backend"] = kernel_backends.active().name
    for name, value in sorted(counters.export()["counts"].items()):
        if name.startswith("dbm.backend_"):
            benchmark.extra_info[name] = value


@pytest.fixture(scope="module")
def kernel_stacks():
    """Per k: (canonical stack, de-canonicalised raw copy) of dim-5 zones."""
    rng = random.Random(90)
    out = {}
    for k in KERNEL_KS:
        zones = []
        while len(zones) < k:
            zone = random_zone(rng)
            if not zone.is_empty():
                zones.append(zone)
        stack = sk.stack_of(zones)
        raw = stack.copy()
        for _ in range(k):  # random tightenings give close() real work
            x = rng.randrange(k)
            i = rng.randrange(5)
            j = rng.randrange(5)
            if i != j:
                raw[x, i, j] = (rng.randint(-4, 10) << 1) | 1
        out[k] = (stack, raw)
    return out


@pytest.mark.parametrize("k", KERNEL_KS, ids=[f"k{k}" for k in KERNEL_KS])
def test_bench_kernel_close(benchmark, kernel_stacks, k):
    _, raw = kernel_stacks[k]

    def run():
        return sk.close(raw.copy())

    keep = benchmark(run)
    assert keep.shape == (k,)
    _record_backend(benchmark)


@pytest.mark.parametrize("k", KERNEL_KS, ids=[f"k{k}" for k in KERNEL_KS])
def test_bench_kernel_subsume_frontier(benchmark, kernel_stacks, k):
    stack, _ = kernel_stacks[k]
    seen = stack[::2].copy()

    def run():
        return sk.subsume_frontier(stack.copy(), seen)

    keep_new, drop_seen = benchmark(run)
    assert keep_new.shape == (k,)
    assert drop_seen.shape == (seen.shape[0],)
    _record_backend(benchmark)


# ----------------------------------------------------------------------
# Fault-probe controls
# ----------------------------------------------------------------------
#
# The chaos fabric (repro.faults) plants probes on hot paths — one per
# guarded kernel call, one per server frame.  These paired controls
# price the probe itself: ``disarmed`` is the default no-plan path (a
# module-global load plus an ``is None`` test), ``armed_idle`` arms a
# plan whose only rule matches no benchmarked site, so the per-site
# match cache is exercised without a fault ever firing.  The mode lands
# in ``extra_info`` and ``bench_delta.py`` compares each pair, warning
# when the armed-idle overhead exceeds the noise threshold.

FAULT_MODES = ["disarmed", "armed_idle"]
IDLE_PLAN = "bench.never.fires:*"


def test_bench_fault_probe_disarmed(benchmark):
    """The bare disarmed probe, 1024 back-to-back calls: the price every
    guarded kernel call / server frame pays when no plan is armed.  Not
    paired with an armed mode — a bare-probe microbench would amplify
    the (still nanosecond-scale) armed match path far past the noise
    threshold; the real-work controls below carry that comparison."""
    with faults.injected(None):

        def run():
            fired = 0
            for _ in range(1024):
                if faults.should_fire("dbm.cext.compute"):
                    fired += 1
            return fired

        assert benchmark(run) == 0


@pytest.mark.parametrize("mode", FAULT_MODES)
def test_bench_kernel_close_fault_control(benchmark, kernel_stacks, mode):
    """Real guarded-kernel work (close at k=32) under each probe mode."""
    _, raw = kernel_stacks[32]
    with faults.injected(IDLE_PLAN if mode == "armed_idle" else None):
        keep = benchmark(lambda: sk.close(raw.copy()))
    assert keep.shape == (32,)
    benchmark.extra_info["faults_mode"] = mode
    _record_backend(benchmark)


@pytest.mark.parametrize("k", KERNEL_KS, ids=[f"k{k}" for k in KERNEL_KS])
def test_bench_kernel_hidden_post_step(benchmark, kernel_stacks, k):
    stack, _ = kernel_stacks[k]
    guard = [(1, 0, le(12)), (0, 2, le(-1))]
    resets = [2]
    shifts = [(3, 1)]
    invariant = [(1, 0, le(30))]

    def run():
        return sk.hidden_post_step(
            stack.copy(), guard, resets, shifts, invariant, delay=True
        )

    keep = benchmark(run)
    assert keep.shape == (k,)
    _record_backend(benchmark)
