"""Scaling benchmarks for the repro.gen subsystem.

Three questions, each a capacity planning input for CI fuzz budgets:

* how fast is pure instance *generation* (must be negligible next to
  solving, or the fuzzer wastes its budget);
* how does *solving* scale with the generated model size (locations for
  the ``random`` family, stages for ``chain`` — stages add clocks, the
  dimension the DBM kernel is most sensitive to);
* what does one full differential *check bundle* cost per instance (the
  unit price of a CI smoke run).
"""

import pytest

from repro.util import counters
from repro.game import TwoPhaseSolver
from repro.gen import GenConfig, generate_instance
from repro.gen.differential import DiffConfig, run_instance_checks
from repro.semantics.system import System
from repro.tctl import parse_query


def test_bench_generation_throughput(benchmark):
    def run():
        hashes = []
        for seed in range(20):
            hashes.append(generate_instance(seed).structural_hash())
        return len(set(hashes))

    assert benchmark(run) >= 19


@pytest.mark.parametrize("locations", [4, 6, 9])
def test_bench_solve_random_by_locations(benchmark, locations):
    config = GenConfig().scaled(max_locations=locations)
    instances = [generate_instance(seed, "random", config) for seed in range(6)]
    queries = [parse_query(instance.query) for instance in instances]

    def run():
        counters.reset()  # per-round: extra_info reflects one round's ops
        verdicts = 0
        for instance, query in zip(instances, queries):
            result = TwoPhaseSolver(System(instance.arena), query).solve()
            verdicts += result.winning
        return verdicts

    assert benchmark(run) >= 0
    snap = counters.snapshot()
    for key in ("dbm.closures", "stack.closures", "federation.zones"):
        if key in snap:
            benchmark.extra_info[key] = snap[key]


@pytest.mark.parametrize("stages", [2, 3, 4])
def test_bench_solve_chain_by_stages(benchmark, stages):
    config = GenConfig().scaled(max_automata=stages)
    instances = []
    for seed in range(40):
        instance = generate_instance(seed, "chain", config)
        if len(instance.spec.automata) == stages:
            instances.append(instance)
        if len(instances) == 4:
            break
    queries = [parse_query(instance.query) for instance in instances]

    def run():
        verdicts = 0
        for instance, query in zip(instances, queries):
            result = TwoPhaseSolver(System(instance.arena), query).solve()
            verdicts += result.winning
        return verdicts

    assert benchmark(run) >= 0


def test_bench_differential_bundle(benchmark):
    instances = [generate_instance(seed) for seed in range(4)]
    cfg = DiffConfig(sim_runs=1, sim_steps=20, conf_steps=15)

    def run():
        ok = 0
        for instance in instances:
            report = run_instance_checks(instance, cfg)
            ok += report.ok
        return ok

    assert benchmark(run) == len(instances)
