"""Ext-A — fault-detection capability of strategy-based tests.

The paper's future-work item 3 asks how effective winning-strategy tests
are at detecting faults.  This benchmark builds a pool of Smart Light
mutants, runs the ``control: A<> IUT.Bright`` strategy test against each
under several output policies, and reports the detection (kill) rate.

The qualitative expectations asserted:

* every *on-purpose-path* tioco violation is detected under some policy;
* no conforming implementation (including refinements) is ever flagged —
  test soundness in aggregate;
* off-path faults may survive (that is the price of *targeted* testing).

The ``test_bench_warm_*`` half measures what mutation campaigns spend
most of their time on: re-synthesizing the *same* spec over and over
(every mutant is tested against the unchanged arena strategy; every
campaign re-run starts from scratch).  With the win-set cache of
:mod:`repro.game.warm` the repeat solves collapse to a cache lookup;
``REPRO_WARM_OFF=1`` records the pre-PR cold path on identical code
(the knob the committed ``BENCH_pre_pr8`` baseline used).  The
execution benchmarks above double as untouched controls for that pair.
"""

import os
from dataclasses import dataclass
from typing import List, Optional

import pytest

from repro.game import Strategy, solve_reachability_game, warm_solve
from repro.game.warm import WinSetCache
from repro.models.lep import TP1, lep_network
from repro.models.smartlight import smartlight_network, smartlight_plant
from repro.semantics.system import System
from repro.tctl import parse_query
from repro.util import counters
from repro.testing import (
    EagerPolicy,
    LazyPolicy,
    QuiescentPolicy,
    RandomPolicy,
    SimulatedImplementation,
    execute_test,
)
from repro.testing.mutants import (
    Mutant,
    drop_edge,
    retarget_edge,
    shift_guard_constant,
    swap_output_channel,
    widen_invariant,
)
from repro.testing.trace import FAIL, PASS


def mutant_pool() -> List[Mutant]:
    plant = smartlight_plant

    return [
        Mutant(
            "wrong-output-L1",
            swap_output_channel(plant(), "bright", automaton="IUT",
                                source="L1", sync="dim!"),
            "L1 answers bright! instead of dim!",
            expected_caught=True,
        ),
        Mutant(
            "wrong-output-L6",
            swap_output_channel(plant(), "dim", automaton="IUT",
                                source="L6", sync="bright!"),
            "L6 answers dim! instead of bright!",
            expected_caught=True,
        ),
        Mutant(
            "late-L6",
            widen_invariant(plant(), "IUT", "L6", +2),
            "L6 may answer 2 time units late",
            expected_caught=True,
        ),
        Mutant(
            "missing-bright-L6",
            drop_edge(plant(), automaton="IUT", source="L6", sync="bright!"),
            "L6 never answers",
            expected_caught=True,
        ),
        Mutant(
            "late-L2",
            widen_invariant(plant(), "IUT", "L2", +2),
            "L2 may answer late (off the strategy's path)",
            expected_caught=False,
        ),
        Mutant(
            "early-L1",
            widen_invariant(plant(), "IUT", "L1", -1),
            "L1 answers faster: a tioco refinement, conforming",
            expected_caught=False,
        ),
        Mutant(
            "idle-threshold-off-by-one",
            shift_guard_constant(plant(), -1, automaton="IUT",
                                 source="Off", target="L5"),
            "reactivation threshold off by one (boundary-only fault)",
            expected_caught=False,
        ),
        Mutant(
            "retarget-bright-to-off",
            retarget_edge(plant(), "Off", automaton="IUT", source="L6",
                          sync="bright!"),
            "bright! emitted but light actually turns off (post-goal)",
            expected_caught=False,
        ),
    ]


POLICIES = [
    ("eager", EagerPolicy),
    ("lazy", LazyPolicy),
    ("quiescent", QuiescentPolicy),
    ("random0", lambda: RandomPolicy(0)),
    ("random1", lambda: RandomPolicy(1)),
]


@pytest.fixture(scope="module")
def strategy():
    system = System(smartlight_network())
    result = solve_reachability_game(
        system, parse_query("control: A<> IUT.Bright"), on_the_fly=False
    )
    return Strategy(result)


@pytest.fixture(scope="module")
def spec_plant():
    return System(smartlight_plant())


def kill_rate(strategy, spec_plant, mutants) -> dict:
    outcomes = {}
    for mutant in mutants:
        caught = False
        for _, policy_factory in POLICIES:
            imp = SimulatedImplementation(System(mutant.network), policy_factory())
            run = execute_test(strategy, spec_plant, imp)
            if run.verdict == FAIL:
                caught = True
                break
        outcomes[mutant.name] = caught
    return outcomes


def test_mutation_detection_report(strategy, spec_plant):
    mutants = mutant_pool()
    outcomes = kill_rate(strategy, spec_plant, mutants)
    for mutant in mutants:
        caught = outcomes[mutant.name]
        if mutant.expected_caught is True:
            assert caught, f"{mutant.name} should be caught ({mutant.description})"
        if mutant.expected_caught is False:
            assert not caught, (
                f"{mutant.name} unexpectedly caught — either the mutant is"
                f" on-path after all or the executor produced a false alarm"
            )
    killed = sum(outcomes.values())
    print(f"\nmutation score: {killed}/{len(mutants)} "
          f"({100.0 * killed / len(mutants):.0f}% of pool, "
          f"100% of on-path faults)")


def test_mutation_detection_speed(benchmark, strategy, spec_plant):
    """Time the full pool × policies sweep (the Ext-A experiment)."""
    mutants = mutant_pool()
    outcomes = benchmark.pedantic(
        kill_rate, args=(strategy, spec_plant, mutants), rounds=3, iterations=1
    )
    assert sum(outcomes.values()) >= 4


@pytest.mark.parametrize("policy_name,policy_factory", POLICIES)
def test_single_execution_speed(benchmark, strategy, spec_plant,
                                policy_name, policy_factory):
    """Latency of one conforming test execution (Algorithm 3.1)."""

    def run():
        imp = SimulatedImplementation(
            System(smartlight_plant()), policy_factory()
        )
        return execute_test(strategy, spec_plant, imp)

    run_result = benchmark(run)
    assert run_result.verdict == PASS


# ---------------------------------------------------------------------------
# Warm-start synthesis: the campaign-dominating cost under the cache
# ---------------------------------------------------------------------------

def _warm_specs():
    """The spec pool a campaign keeps re-solving: models + generated."""
    from repro.gen.networks import generate_instance

    specs = [
        ("smartlight", System(smartlight_network()),
         parse_query("control: A<> IUT.Bright")),
        ("lep2", System(lep_network(2)), parse_query(TP1)),
        ("lep3", System(lep_network(3)), parse_query(TP1)),
    ]
    for family, seed in (("clientserver", 7), ("ring", 7), ("chain", 7)):
        instance = generate_instance(seed, family)
        specs.append((f"{family}{seed}", System(instance.arena),
                      parse_query(instance.query)))
    return specs


@pytest.fixture(scope="module")
def warm_pool(tmp_path_factory):
    """A shared, pre-populated win-set cache plus the spec pool.

    Populating here mirrors a campaign's first pass; the benchmarks then
    measure the steady state (every later mutant/policy/session pays
    this price per spec).  Under ``REPRO_WARM_OFF=1`` the populate is a
    plain cold solve and every benchmark round re-solves cold — exactly
    the pre-cache behaviour, on identical code.
    """
    cache = WinSetCache(str(tmp_path_factory.mktemp("warm-cache")))
    specs = _warm_specs()
    for _, system, query in specs:
        warm_solve(system, query, cache=cache)
    return cache, specs


def _attach_warm_counters(benchmark):
    snap = counters.snapshot()
    for key in sorted(snap):
        if key.startswith("solver.warm_"):
            benchmark.extra_info[key] = snap[key]


@pytest.mark.parametrize(
    "spec_name",
    ["smartlight", "lep2", "lep3", "clientserver7", "ring7", "chain7"],
)
def test_bench_warm_spec_synthesis(benchmark, warm_pool, spec_name):
    """Repeat synthesis of one spec (the per-mutant fixed cost)."""
    cache, specs = warm_pool
    system, query = next(
        (s, q) for name, s, q in specs if name == spec_name
    )

    result = benchmark(lambda: warm_solve(system, query, cache=cache))
    assert result.steps >= 0
    _attach_warm_counters(benchmark)


def test_bench_warm_campaign_sweep(benchmark, warm_pool):
    """One campaign pass over the whole spec pool (re-run steady state)."""
    cache, specs = warm_pool

    def run():
        solved = 0
        for _, system, query in specs:
            warm_solve(system, query, cache=cache)
            solved += 1
        return solved

    assert benchmark(run) == len(specs)
    _attach_warm_counters(benchmark)


def test_warm_cross_process_restore(warm_pool):
    """A fresh cache object over the shared directory restores from disk.

    Models a new worker process joining a machine-wide cache: the memo
    is empty, so the disk-restore path (graph exploration + win-set
    install) runs — no cold re-solve.  Kept as a plain correctness
    check, not a benchmark: the restore is explore-bound (~2x, within
    this runner's noise band), so timing it would only add noise to the
    committed before/after pair.
    """
    cache, specs = warm_pool
    if os.environ.get("REPRO_WARM_OFF"):
        pytest.skip("warm cache disabled via REPRO_WARM_OFF")
    name, system, query = specs[0]
    baseline = warm_solve(system, query, cache=cache)
    fresh = WinSetCache(cache.directory)
    restored = warm_solve(system, query, cache=fresh)
    assert restored.winning == baseline.winning
    assert restored.steps == baseline.steps
