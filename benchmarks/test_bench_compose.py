"""Benchmarks of the partial-composition subsystem.

Tracks the cost the new subsystem adds per PR (wired into the CI
bench-smoke job, so ``bench_delta.py`` reports regressions):

* partial-move enumeration vs the flat closed product over the reachable
  states of generated chain/ring plants — the overhead of partition
  lookups and hidden/solo classification on the shared move tables;
* a full estimated-monitor conformance session on composed plants — the
  unit price the differential harness pays now that multi-automaton
  families run the tioco/rtioco oracle.
"""

from fractions import Fraction

import pytest

from repro.gen import generate_instance
from repro.graph.explorer import SimulationGraph
from repro.semantics.system import CLOSED, PARTIAL, System
from repro.testing import EagerPolicy, SimulatedImplementation, TiocoMonitor


def _reachable_states(network, max_nodes=600):
    system = System(network)
    graph = SimulationGraph(system, max_nodes=max_nodes)
    graph.explore_all()
    return system, [(node.sym.locs, node.sym.vars) for node in graph.nodes]


def _fresh_systems(family, seeds):
    """(system, states) pairs over arenas; caches are cold per instance."""
    pairs = []
    for seed in seeds:
        instance = generate_instance(seed, family)
        pairs.append(_reachable_states(instance.arena))
    return pairs


@pytest.mark.parametrize("family", ["chain", "ring"])
@pytest.mark.parametrize("mode", [CLOSED, PARTIAL])
def test_bench_move_enumeration(benchmark, family, mode):
    pairs = _fresh_systems(family, range(6))

    def run():
        total = 0
        for system, states in pairs:
            # Bypass the memo: enumeration cost, not cache-hit cost.
            for locs, vars in states:
                total += len(system._enumerate_moves(locs, vars, mode))
        return total

    assert benchmark(run) > 0
    benchmark.extra_info["states"] = sum(len(s) for _, s in pairs)


@pytest.mark.parametrize("family", ["chain", "ring", "clientserver"])
def test_bench_estimated_conformance_session(benchmark, family):
    instances = [generate_instance(seed, family) for seed in range(3)]

    def run():
        steps = 0
        for instance in instances:
            system = System(instance.plant)
            imp = SimulatedImplementation(system, EagerPolicy())
            monitor = TiocoMonitor(System(instance.plant))
            inputs = monitor.enabled_labels("input")
            if inputs and imp.give_input(inputs[0]):
                assert monitor.observe(inputs[0], "input")
            for _ in range(12):
                scheduled = imp.next_output()
                if scheduled is None:
                    delay = Fraction(1)
                    if not monitor.max_quiescence().allows(delay):
                        break
                    imp.advance(delay)
                    assert monitor.advance(delay)
                    steps += 1
                    continue
                label = imp.advance(scheduled.delay)
                assert monitor.advance(scheduled.delay), monitor.violation
                if label is not None:
                    assert monitor.observe(label, "output"), monitor.violation
                steps += 1
        return steps

    assert benchmark(run) > 0
