"""Benchmarks of the asyncio test server (PR 7).

What the server fabric is for: many concurrent sessions on one loop,
sharing one synthesized strategy.  Measured over TCP loopback with the
virtual clock (client-owned time), so numbers are protocol + session
machinery, not sleeps:

* **throughput** — complete hello→verdict smartlight sessions per
  second at several concurrency levels, including the acceptance
  target of 200+ concurrent sessions under the global state budget
  (``sessions_per_sec`` extra_info);
* **observe latency** — p50/p99 wall time from the client answering a
  ``wait`` to the server's next frame, measured mid-session under
  concurrent load (``p99_observe_ms`` extra_info);
* **in-process floor** — the same session driven by ``TestExecutor``,
  pricing the wire + loop overhead against the sans-IO core.
"""

import asyncio
import time

import pytest

from repro.models.smartlight import smartlight_plant
from repro.semantics.system import System
from repro.server import IUTClient, ServerConfig, TestServer
from repro.testing import (
    EagerPolicy,
    RandomPolicy,
    SimulatedImplementation,
    TestExecutor,
)

SPEC = {"model": "smartlight"}


def make_imp(i=0):
    policy = EagerPolicy() if i % 2 == 0 else RandomPolicy(i)
    return SimulatedImplementation(System(smartlight_plant()), policy)


def run_wave(concurrency, sessions_per_conn=1, state_budget=100_000):
    """Run ``concurrency`` clients at once; returns (elapsed, frames)."""

    async def go():
        server = TestServer(
            ServerConfig(max_sessions=4 * concurrency, state_budget=state_budget)
        )
        await server.start()
        try:
            host, port = server.address
            # Pre-warm the shared bundle so synthesis is not measured.
            async with await IUTClient.connect(host, port) as client:
                await client.run_session(make_imp(), SPEC)

            async def one(i):
                async with await IUTClient.connect(host, port) as client:
                    out = []
                    for s in range(sessions_per_conn):
                        out.append(
                            await client.run_session(make_imp(i + s), SPEC)
                        )
                    return out

            start = time.perf_counter()
            waves = await asyncio.gather(
                *(one(i) for i in range(concurrency))
            )
            elapsed = time.perf_counter() - start
            frames = [f for wave in waves for f in wave]
            return elapsed, frames, server.stats()
        finally:
            await server.close()

    return asyncio.run(go())


@pytest.mark.parametrize("concurrency", [10, 50, 200])
def test_bench_server_sessions(benchmark, concurrency):
    """Sustained concurrent sessions over loopback (the acceptance case
    is 200 concurrent sessions under the global state budget)."""

    def run():
        elapsed, frames, stats = run_wave(
            concurrency, state_budget=max(1000, concurrency * 8)
        )
        assert len(frames) == concurrency
        assert all(f["type"] == "verdict" for f in frames)
        assert all(f["verdict"] == "pass" for f in frames)
        assert stats["bundles"] == 1
        return elapsed, stats

    elapsed, stats = benchmark(run)
    benchmark.extra_info["concurrent_sessions"] = concurrency
    benchmark.extra_info["sessions_per_sec"] = round(concurrency / elapsed, 1)
    benchmark.extra_info["peak_sessions"] = stats["peak_sessions"]
    benchmark.extra_info["peak_states"] = stats["peak_states"]


@pytest.mark.parametrize("mode", ["disarmed", "armed_idle"])
def test_bench_server_sessions_fault_control(benchmark, mode):
    """Fault-probe control: the per-frame server probes priced against
    an armed-but-idle plan (no site ever fires).  bench_delta.py pairs
    the two modes and warns if the armed overhead exceeds noise."""
    from repro import faults

    spec = "bench.never.fires:*" if mode == "armed_idle" else None

    def run():
        with faults.injected(spec):
            elapsed, frames, stats = run_wave(10)
        assert len(frames) == 10
        assert all(f["verdict"] == "pass" for f in frames)
        return elapsed

    elapsed = benchmark(run)
    benchmark.extra_info["faults_mode"] = mode
    benchmark.extra_info["sessions_per_sec"] = round(10 / elapsed, 1)


def test_bench_server_observe_latency(benchmark):
    """p50/p99 observe latency: answered wait -> next server frame,
    sampled mid-session while 20 background sessions churn."""

    async def measure():
        server = TestServer(ServerConfig())
        await server.start()
        try:
            host, port = server.address
            async with await IUTClient.connect(host, port) as client:
                await client.run_session(make_imp(), SPEC)  # warm bundle

            stop = asyncio.Event()

            async def churn(i):
                while not stop.is_set():
                    async with await IUTClient.connect(host, port) as c:
                        await c.run_session(make_imp(i), SPEC)

            churners = [asyncio.create_task(churn(i)) for i in range(20)]
            samples = []

            class TimingClient(IUTClient):
                async def _read(self):
                    t0 = time.perf_counter()
                    frame = await super()._read()
                    samples.append(time.perf_counter() - t0)
                    return frame

            reader, writer = await asyncio.open_connection(host, port)
            client = TimingClient(reader, writer)
            for s in range(100):
                await client.run_session(make_imp(s), SPEC)
            await client.close()
            stop.set()
            for task in churners:
                task.cancel()
            await asyncio.gather(*churners, return_exceptions=True)
            return samples
        finally:
            await server.close()

    def run():
        return asyncio.run(measure())

    samples = benchmark.pedantic(run, rounds=1, iterations=1)
    samples.sort()
    p50 = samples[len(samples) // 2]
    p99 = samples[int(len(samples) * 0.99) - 1]
    benchmark.extra_info["observe_samples"] = len(samples)
    benchmark.extra_info["p50_observe_ms"] = round(p50 * 1000, 3)
    benchmark.extra_info["p99_observe_ms"] = round(p99 * 1000, 3)


def test_bench_inprocess_floor(benchmark):
    """The sans-IO core alone: what one session costs without the wire."""
    from repro.server.registry import SpecResolver

    bundle = SpecResolver().resolve(SPEC)

    def run():
        ex = TestExecutor(bundle.strategy, bundle.plant, make_imp())
        return ex.run()

    run_out = benchmark(run)
    assert run_out.verdict == "pass"
