"""Shared harness for the paper's Table 1 (LEP strategy generation).

The paper reports, for test purposes TP1/TP2/TP3 and n = 3..8 LEP nodes,
the time (s) and memory (MB) of winning-strategy generation with
UPPAAL-TIGA, with "/" marking out-of-memory cells.  This module
regenerates that table with our solver, marking cells that exceed a
time/node budget with "/" in the same way.

Used both by ``benchmarks/test_bench_table1_lep.py`` (pytest-benchmark
timings per cell) and ``examples/lep_case_study.py`` (full table print).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph import ExplorationLimit
from repro.game import TwoPhaseSolver, OnTheFlySolver
from repro.models.lep import TEST_PURPOSES, lep_network
from repro.semantics.system import System
from repro.tctl import parse_query
from repro.util import Measurement, format_table, measure

#: The paper's Table 1 (DATE 2008), for shape comparison in reports.
PAPER_TIME = {
    "TP1": {3: 0.03, 4: 0.14, 5: 0.7, 6: 3.1, 7: 11.1, 8: 33.5},
    "TP2": {3: 0.81, 4: 2.13, 5: 8.4, 6: 67.1, 7: 452.0, 8: None},
    "TP3": {3: 0.89, 4: 2.79, 5: 25.9, 6: 73.2, 7: 453.8, 8: None},
}
PAPER_MEMORY = {
    "TP1": {3: 0.1, 4: 4, 5: 9, 6: 28, 7: 85, 8: 242},
    "TP2": {3: 11.2, 4: 33, 5: 88, 6: 462, 7: 2977, 8: None},
    "TP3": {3: 11.9, 4: 40, 5: 289, 6: 578, 7: 3015, 8: None},
}


@dataclass
class Cell:
    tp: str
    n: int
    measurement: Measurement

    @property
    def winning(self) -> Optional[bool]:
        result = self.measurement.result
        return None if result is None else result.winning

    @property
    def nodes(self) -> Optional[int]:
        result = self.measurement.result
        return None if result is None else result.nodes_explored


def solve_cell(
    tp: str,
    n: int,
    *,
    on_the_fly: bool = True,
    time_limit: Optional[float] = 60.0,
    max_nodes: Optional[int] = None,
    track_memory: bool = True,
) -> Cell:
    """Generate the winning strategy for one (TP, n) cell."""
    query = parse_query(TEST_PURPOSES[tp])
    system = System(lep_network(n))

    def run():
        solver_cls = OnTheFlySolver if on_the_fly else TwoPhaseSolver
        solver = solver_cls(
            system, query, time_limit=time_limit, max_nodes=max_nodes
        )
        return solver.solve()

    measurement = measure(
        run, track_memory=track_memory, swallow=(ExplorationLimit, MemoryError)
    )
    return Cell(tp, n, measurement)


def generate_table(
    sizes: List[int],
    *,
    on_the_fly: bool = True,
    time_limit: Optional[float] = 60.0,
    max_nodes: Optional[int] = None,
    track_memory: bool = True,
) -> Dict[str, Dict[int, Cell]]:
    cells: Dict[str, Dict[int, Cell]] = {}
    for tp in TEST_PURPOSES:
        cells[tp] = {}
        for n in sizes:
            cells[tp][n] = solve_cell(
                tp,
                n,
                on_the_fly=on_the_fly,
                time_limit=time_limit,
                max_nodes=max_nodes,
                track_memory=track_memory,
            )
    return cells


def render_table(cells: Dict[str, Dict[int, Cell]], title: str) -> str:
    sizes = sorted(next(iter(cells.values())).keys())
    rows = []
    for tp in ("TP1", "TP2", "TP3"):
        time_cells = [cells[tp][n].measurement.cell() for n in sizes]
        rows.append((f"{tp} time(s)", time_cells))
    for tp in ("TP1", "TP2", "TP3"):
        mem_cells = [cells[tp][n].measurement.memory_cell() for n in sizes]
        rows.append((f"{tp} mem(MB)", mem_cells))
    return format_table(title, [f"n={n}" for n in sizes], rows)


def render_paper_table() -> str:
    sizes = [3, 4, 5, 6, 7, 8]
    rows = []
    for tp in ("TP1", "TP2", "TP3"):
        rows.append(
            (
                f"{tp} time(s)",
                [
                    "/" if PAPER_TIME[tp][n] is None else str(PAPER_TIME[tp][n])
                    for n in sizes
                ],
            )
        )
    for tp in ("TP1", "TP2", "TP3"):
        rows.append(
            (
                f"{tp} mem(MB)",
                [
                    "/" if PAPER_MEMORY[tp][n] is None else str(PAPER_MEMORY[tp][n])
                    for n in sizes
                ],
            )
        )
    return format_table(
        "Paper Table 1 (UPPAAL-TIGA, 2.4GHz dual-core, 4GB)",
        [f"n={n}" for n in sizes],
        rows,
    )


def shape_checks(cells: Dict[str, Dict[int, Cell]]) -> List[str]:
    """The qualitative claims the reproduction must satisfy."""
    failures = []
    sizes = sorted(next(iter(cells.values())).keys())
    # 1. Every solved cell reports a winning game (paper: all TPs true).
    for tp, row in cells.items():
        for n, cell in row.items():
            if cell.winning is False:
                failures.append(f"{tp} n={n}: purpose unexpectedly not winning")
    # 2. TP2/TP3 are markedly harder than TP1 at the same n.
    for n in sizes:
        tp1 = cells["TP1"][n]
        for tp in ("TP2", "TP3"):
            other = cells[tp][n]
            if tp1.nodes and other.nodes and other.nodes < tp1.nodes:
                failures.append(f"{tp} n={n}: explored fewer nodes than TP1")
    # 3. Work grows with n for TP2 (super-linear state-space growth).
    tp2 = [cells["TP2"][n] for n in sizes]
    nodes = [c.nodes for c in tp2 if c.nodes is not None]
    if len(nodes) >= 3 and not all(a < b for a, b in zip(nodes, nodes[1:])):
        failures.append("TP2: node counts not monotonically increasing in n")
    return failures
