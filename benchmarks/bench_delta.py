"""Compare two pytest-benchmark JSON files and emit a markdown delta.

Used by the CI bench-smoke job: the previous successful run's
``BENCH_<sha>.json`` is downloaded and compared against the current
one, and the speedup/regression table lands in the job summary.

Fail-soft by design: exit code is always 0 (a missing baseline or a
noisy runner must not break CI); regressions beyond the threshold are
surfaced as a loud warning line instead.

Usage::

    python benchmarks/bench_delta.py PREV.json CURRENT.json [--threshold 0.2]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict


def load_medians(path: str) -> Dict[str, float]:
    with open(path) as handle:
        data = json.load(handle)
    return {b["name"]: b["stats"]["median"] for b in data.get("benchmarks", [])}


def load_extra_info(path: str) -> Dict[str, dict]:
    with open(path) as handle:
        data = json.load(handle)
    return {
        b["name"]: b.get("extra_info") or {}
        for b in data.get("benchmarks", [])
    }


def _no_baseline_table(cur: Dict[str, float], reason: str) -> None:
    """Explicit current-only table when there is nothing to compare to.

    A first run on a branch, an expired artifact, or an empty baseline
    file all land here; rendering the current medians (instead of one
    silent "skipping" line) keeps the job summary useful and makes the
    missing baseline impossible to miss.
    """
    print("## Benchmark delta: no baseline")
    print()
    print(f"{reason} — current run only, no comparison.")
    print()
    if not cur:
        print("(current run contains no benchmarks either)")
        return
    print("| benchmark | current (ms) | baseline |")
    print("|---|---:|---|")
    for name in sorted(cur):
        print(f"| `{name}` | {cur[name] * 1000:.2f} | _none_ |")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous", help="baseline benchmark JSON")
    parser.add_argument("current", help="current benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="per-benchmark slowdown fraction that triggers a warning",
    )
    args = parser.parse_args(argv)

    try:
        cur = load_medians(args.current)
    except (OSError, ValueError, KeyError) as exc:
        print(f"bench-delta: could not load current run ({exc}); skipping")
        return 0
    try:
        prev = load_medians(args.previous)
    except (OSError, ValueError, KeyError) as exc:
        _no_baseline_table(cur, f"baseline unreadable ({exc})")
        return 0

    shared = sorted(set(prev) & set(cur))
    if not shared:
        reason = (
            "baseline file contains no benchmarks"
            if not prev
            else "no overlapping benchmarks with the baseline"
        )
        _no_baseline_table(cur, reason)
        return 0

    rows = []
    ratios = []
    regressions = []
    for name in shared:
        before, after = prev[name], cur[name]
        if before <= 0 or after <= 0:
            continue
        speedup = before / after
        ratios.append(speedup)
        rows.append((name, before, after, speedup))
        if after > before * (1 + args.threshold):
            regressions.append((name, speedup))

    ratios.sort()
    median = ratios[len(ratios) // 2] if ratios else 1.0

    print("## Benchmark delta vs previous run")
    print()
    print(f"{len(rows)} shared benchmarks, median speedup **{median:.2f}x** ")
    print()
    print("| benchmark | before (ms) | after (ms) | speedup |")
    print("|---|---:|---:|---:|")
    for name, before, after, speedup in sorted(rows, key=lambda r: r[3]):
        marker = " ⚠️" if after > before * (1 + args.threshold) else ""
        print(
            f"| `{name}` | {before * 1000:.2f} | {after * 1000:.2f} |"
            f" {speedup:.2f}x{marker} |"
        )
    print()
    if regressions:
        worst = min(regressions, key=lambda r: r[1])
        print(
            f"**WARNING**: {len(regressions)} benchmark(s) regressed more than"
            f" {args.threshold:.0%} (worst: `{worst[0]}` at {worst[1]:.2f}x)."
            f" Fail-soft: not failing the job; investigate before merging."
        )
    else:
        print("No regressions beyond the threshold.")

    # Win-set cache effectiveness, when the run recorded it (the warm
    # benchmarks attach the solver.warm_* counters as extra_info).
    try:
        extras = load_extra_info(args.current)
    except (OSError, ValueError, KeyError):
        extras = {}
    warm_rows = [
        (name, {k: v for k, v in sorted(info.items())
                if k.startswith("solver.warm_")})
        for name, info in sorted(extras.items())
    ]
    warm_rows = [(name, info) for name, info in warm_rows if info]
    if warm_rows:
        print()
        print("### Warm-cache counters (current run)")
        print()
        print("| benchmark | counters |")
        print("|---|---|")
        for name, info in warm_rows:
            cells = ", ".join(
                f"{key.split('solver.', 1)[1]}={value}"
                for key, value in info.items()
            )
            print(f"| `{name}` | {cells} |")

    # Kernel-backend dispatch, when the run recorded it (the stacked
    # kernel microbenches attach the active backend name plus the
    # dbm.backend_* counters as extra_info).
    backend_rows = []
    for name, info in sorted(extras.items()):
        cells = {
            k: v
            for k, v in sorted(info.items())
            if k == "kernel_backend" or k.startswith("dbm.backend_")
        }
        if cells:
            backend_rows.append((name, cells))
    if backend_rows:
        print()
        print("### Kernel backend (current run)")
        print()
        print("| benchmark | backend | dispatch counters |")
        print("|---|---|---|")
        for name, info in backend_rows:
            backend = info.pop("kernel_backend", "?")
            cells = ", ".join(
                f"{key.split('dbm.', 1)[1]}={value}"
                for key, value in info.items()
            )
            print(f"| `{name}` | {backend} | {cells or '—'} |")

    # Fault-probe overhead, when the run recorded it (the chaos-control
    # benchmarks tag themselves with a faults_mode extra_info).  Each
    # armed_idle/disarmed pair shares a name modulo the mode token;
    # armed-but-never-firing probes are supposed to cost nothing, so a
    # pair whose ratio exceeds the regression threshold gets the same
    # loud fail-soft warning as a timing regression.
    pairs: Dict[str, Dict[str, str]] = {}
    for name, info in sorted(extras.items()):
        mode = info.get("faults_mode")
        if mode in ("disarmed", "armed_idle"):
            pairs.setdefault(name.replace(mode, "*"), {})[mode] = name
    probe_rows = []
    for base, modes in sorted(pairs.items()):
        if not {"disarmed", "armed_idle"} <= set(modes):
            continue
        disarmed = cur.get(modes["disarmed"], 0.0)
        armed = cur.get(modes["armed_idle"], 0.0)
        if disarmed > 0 and armed > 0:
            probe_rows.append((base, disarmed, armed, armed / disarmed))
    if probe_rows:
        print()
        print("### Fault-probe overhead (armed-idle vs disarmed, current run)")
        print()
        print("| benchmark | disarmed (ms) | armed idle (ms) | overhead |")
        print("|---|---:|---:|---:|")
        for base, disarmed, armed, ratio in probe_rows:
            marker = " ⚠️" if ratio > 1 + args.threshold else ""
            print(
                f"| `{base}` | {disarmed * 1000:.3f} | {armed * 1000:.3f} |"
                f" {ratio:.2f}x{marker} |"
            )
        print()
        noisy = [r for r in probe_rows if r[3] > 1 + args.threshold]
        if noisy:
            worst = max(noisy, key=lambda r: r[3])
            print(
                f"**WARNING**: armed-idle fault probes exceed the"
                f" {args.threshold:.0%} noise threshold on {len(noisy)}"
                f" pair(s) (worst: `{worst[0]}` at {worst[3]:.2f}x)."
                f" Disarmed sites must stay ~free; investigate the probe."
            )
        else:
            print("Armed-idle fault probes are within noise of the"
                  " disarmed path.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
