from setuptools import find_packages, setup

setup(
    name="repro-timed-game-testing",
    version="1.2.0",
    description=(
        "Game-theoretic real-time system testing: timed I/O game automata,"
        " a DBM/federation kernel, winning-strategy synthesis, tioco/rtioco"
        " conformance execution, and a random-model differential-testing"
        " subsystem (repro.gen)."
    ),
    long_description=(
        "A from-scratch reproduction of A. David, K. G. Larsen, S. Li,"
        " B. Nielsen, 'A Game-Theoretic Approach to Real-Time System"
        " Testing' (DATE 2008), grown into a library with solvers,"
        " conformance monitors, mutation operators, and a seeded fuzzing"
        " harness. See README.md for a quickstart."
    ),
    long_description_content_type="text/plain",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[
        "numpy>=1.20",
    ],
    extras_require={
        "test": [
            "pytest>=7",
            "hypothesis>=6",
            "pytest-benchmark>=4",
        ],
        # Optional JIT zone-kernel backend (REPRO_KERNEL_BACKEND=numba);
        # absence degrades to the numpy reference, never an error.
        "numba": [
            "numba>=0.57",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro-gen-fuzz=repro.gen.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: Software Development :: Testing",
    ],
)
