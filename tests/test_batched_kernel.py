"""Differential tests: batched federation kernels vs the per-zone path.

The federation layer dispatches between two implementations of every
timed/set operation: the legacy per-zone DBM path (small federations)
and the stacked numpy kernels of :mod:`repro.dbm.stack` (three or more
member zones).  These tests drive both through the same inputs and
assert extensional equality — exact set equality via subtraction, plus
membership spot checks on sampled rational points — including the
empty/universal/zero/diagonal edge cases, and a seeded bulk run over
more than 500 fuzzed federations.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro.dbm import DBM, Federation, le
from repro.dbm import backends as backends_mod
from repro.dbm import stack as sk
from repro.dbm.backends.numba_backend import python_kernels
from repro.dbm.federation import _reduce_pairwise
from repro.gen.zones import random_federation, random_point, random_zone
from tests.zone_strategies import (
    DIM,
    big_federations,
    diagonal_zones,
    federations,
    zones,
)

#: Every kernel backend loadable here, plus the numba loop bodies run as
#: pure Python (so the JIT logic is exercised even without numba).
BACKENDS = backends_mod.available_backends() + ["numba-py"]


def backend_instance(name):
    if name == "numba-py":
        return python_kernels()
    return backends_mod.resolve(name)


def legacy_map(fed, fn):
    """The reference result: the per-zone DBM op applied member-wise."""
    return Federation(fed.dim, [fn(z) for z in fed.zones])


def assert_same_set(batched, reference, points, label):
    __tracebackhint__ = True
    assert batched.equals(reference), f"{label}: sets differ"
    for p in points:
        assert batched.contains(p) == reference.contains(p), (
            f"{label}: membership differs at {p}"
        )


def sample_points(rng, dim, feds, count=4):
    points = [random_point(rng, dim) for _ in range(count)]
    for fed in feds:
        p = fed.sample_random(rng) if fed else None
        if p is not None:
            points.append(list(p))
    return points


#: Every batched Federation op, paired with its per-zone reference map.
OPS = [
    ("up", lambda f: f.up(), lambda z: z.up()),
    ("down", lambda f: f.down(), lambda z: z.down()),
    ("reset[1]", lambda f: f.reset([1]), lambda z: z.reset([1])),
    ("reset[1,2]", lambda f: f.reset([1, 2]), lambda z: z.reset([1, 2])),
    ("free[1]", lambda f: f.free([1]), lambda z: z.free([1])),
    ("reset_pred[2]", lambda f: f.reset_pred([2]), lambda z: z.reset_pred([2])),
    (
        "assign[(1,3)]",
        lambda f: f.assign_clocks([(1, 3)]),
        lambda z: z.assign_clocks([(1, 3)]),
    ),
    (
        "assign_pred[(2,1)]",
        lambda f: f.assign_pred([(2, 1)]),
        lambda z: z.assign_pred([(2, 1)]),
    ),
    (
        "constrained",
        lambda f: f.constrained([(1, 0, le(5)), (0, 2, le(-1))]),
        lambda z: z.constrained([(1, 0, le(5)), (0, 2, le(-1))]),
    ),
    (
        "extrapolate",
        lambda f: f.extrapolate([0, 3, 3, 3]),
        lambda z: z.extrapolate([0, 3, 3, 3]),
    ),
]


def check_all_ops(fed, rng):
    points = sample_points(rng, fed.dim, [fed])
    for label, batched_op, zone_op in OPS:
        assert_same_set(
            batched_op(fed), legacy_map(fed, zone_op), points, label
        )


# ----------------------------------------------------------------------
# Hypothesis property tests (reuse the shared zone strategies)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend_name", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(big_federations())
def test_batched_ops_match_legacy_on_big_federations(backend_name, fed):
    with backends_mod.use_backend(backend_instance(backend_name)):
        check_all_ops(fed, random.Random(0))


@settings(max_examples=40, deadline=None)
@given(federations())
def test_batched_ops_match_legacy_on_small_federations(fed):
    check_all_ops(fed, random.Random(1))


@settings(max_examples=40, deadline=None)
@given(big_federations(), zones())
def test_batched_zone_intersection_and_subtraction(fed, zone):
    rng = random.Random(2)
    points = sample_points(rng, fed.dim, [fed, Federation.from_zone(zone)])
    assert_same_set(
        fed.intersect_zone(zone),
        legacy_map(fed, lambda z: z.intersect(zone)),
        points,
        "intersect_zone",
    )
    sub = fed.subtract_dbm(zone)
    for p in points:
        assert sub.contains(p) == (fed.contains(p) and not zone.contains(p))


@settings(max_examples=30, deadline=None)
@given(big_federations(), big_federations())
def test_batched_pairwise_intersect(f, g):
    rng = random.Random(3)
    points = sample_points(rng, f.dim, [f, g])
    inter = f.intersect(g)
    for p in points:
        assert inter.contains(p) == (f.contains(p) and g.contains(p))
    # Reference: per-pair DBM intersections, no batching.
    reference = Federation(
        f.dim, [a.intersect(b) for a in f.zones for b in g.zones]
    )
    assert inter.equals(reference)


@settings(max_examples=30, deadline=None)
@given(big_federations(), big_federations())
def test_includes_prefilter_agrees_with_subtraction(f, g):
    assert f.includes(g) == g.subtract(f).is_empty()
    assert g.includes(f) == f.subtract(g).is_empty()
    assert f.equals(g) == (f.includes(g) and g.includes(f))


@settings(max_examples=40, deadline=None)
@given(big_federations())
def test_compact_preserves_semantics(fed):
    compacted = fed.compact()
    assert compacted.equals(fed)
    assert len(compacted) <= len(fed)


@settings(max_examples=40, deadline=None)
@given(big_federations())
def test_batched_reduce_matches_pairwise_reduce(fed):
    zones_list = list(fed.zones)
    if not zones_list:
        return
    batched = sk.reduce_indices(sk.stack_of(zones_list))
    reference = _reduce_pairwise(zones_list)
    assert [zones_list[i].hash_key() for i in batched] == [
        z.hash_key() for z in reference
    ]


@settings(max_examples=40, deadline=None)
@given(diagonal_zones(), diagonal_zones(), diagonal_zones())
def test_stack_kernels_exact_on_diagonal_zones(a, b, c):
    members = [z for z in (a, b, c) if not z.is_empty()]
    if len(members) < 2:
        return
    stack = sk.stack_of(members)
    # inclusion_matrix / disjoint_mask are exact per pair of canonical zones
    inc = sk.inclusion_matrix(stack, stack)
    for x, zx in enumerate(members):
        for y, zy in enumerate(members):
            assert bool(inc[x, y]) == zx.includes(zy)
    for x, zx in enumerate(members):
        disj = sk.disjoint_mask(stack, zx.m)
        for y, zy in enumerate(members):
            assert bool(disj[y]) == (not zy.intersects(zx))


# ----------------------------------------------------------------------
# Edge cases
# ----------------------------------------------------------------------


def test_empty_federation_ops():
    fed = Federation.empty(DIM)
    for label, batched_op, _ in OPS:
        assert batched_op(fed).is_empty(), label
    assert fed.intersect(Federation.universal(DIM)).is_empty()
    assert fed.subtract_dbm(DBM.universal(DIM)).is_empty()
    assert Federation.universal(DIM).includes(fed)
    assert not fed.includes(Federation.universal(DIM))


def test_universal_and_zero_edge_cases():
    uni = Federation.universal(DIM)
    zero = Federation.from_zone(DBM.zero(DIM))
    assert uni.up().equals(uni)
    assert uni.down().equals(uni)
    assert zero.up().down().includes(zero)
    assert uni.includes(zero)
    assert not zero.includes(uni)
    # A universal member makes every sibling redundant in one reduction.
    fed = Federation(DIM, [DBM.zero(DIM), DBM.universal(DIM), DBM.zero(DIM)])
    assert len(fed) == 1
    assert fed.equals(uni)


def test_duplicate_zones_reduce_to_one():
    z = DBM.from_constraints(DIM, [(1, 0, le(4))])
    fed = Federation(DIM, [z, z, z, z])
    assert len(fed) == 1


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_stack_close_matches_per_zone_close(backend_name):
    rng = random.Random(99)
    raw = []
    for _ in range(8):
        z = random_zone(rng, DIM)
        if z.is_empty():
            continue
        m = z.m.copy()
        m[1, 0] = le(rng.randint(-3, 6))  # possibly inconsistent tightening
        raw.append(m)
    assert raw
    # References computed under the default backend, before switching.
    references = [DBM._from_raw(m.copy()) for m in raw]
    with backends_mod.use_backend(backend_instance(backend_name)):
        stack = np.stack([m.copy() for m in raw])
        keep = sk.close(stack)
    for idx, reference in enumerate(references):
        assert bool(keep[idx]) == (not reference.is_empty())
        if keep[idx]:
            assert np.array_equal(stack[idx], reference.m)


# ----------------------------------------------------------------------
# Seeded bulk differential: > 500 fuzzed federations through every op
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_bulk_fuzzed_federations_across_backends(backend_name):
    """Fuzzed federations through every batched op, per kernel backend."""
    rng = random.Random(0xBA7C4E)
    with backends_mod.use_backend(backend_instance(backend_name)):
        for trial in range(40):
            fed = random_federation(rng, DIM, max_zones=6)
            check_all_ops(fed, rng)


@pytest.mark.parametrize("chunk", range(5))
def test_bulk_fuzzed_federations_batched_vs_legacy(chunk):
    """>= 500 fuzzed federations (100 per chunk) through every batched op."""
    rng = random.Random(0xBA7C4 + chunk)
    for trial in range(100):
        fed = random_federation(rng, DIM, max_zones=6)
        check_all_ops(fed, rng)
        other = random_federation(rng, DIM, max_zones=4)
        zone = random_zone(rng, DIM)
        points = sample_points(rng, DIM, [fed, other])
        inter = fed.intersect(other)
        sub = fed.subtract(other)
        for p in points:
            assert inter.contains(p) == (fed.contains(p) and other.contains(p))
            assert sub.contains(p) == (fed.contains(p) and not other.contains(p))
        assert fed.includes(other) == other.subtract(fed).is_empty()
        assert fed.compact().equals(fed)
        assert_same_set(
            fed.intersect_zone(zone),
            legacy_map(fed, lambda z: z.intersect(zone)),
            points,
            f"trial {trial}: intersect_zone",
        )
