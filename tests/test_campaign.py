"""Tests for test campaigns (repro.testing.campaign)."""

import pytest

from repro.models.smartlight import smartlight_network, smartlight_plant
from repro.semantics.system import System
from repro.testing import (
    EagerPolicy,
    LazyPolicy,
    SimulatedImplementation,
)
from repro.testing.campaign import CampaignReport
from repro.testing.campaign import TestCampaign as Campaign
from repro.testing.mutants import swap_output_channel
from repro.testing.trace import FAIL, PASS


PURPOSES = [
    "control: A<> IUT.Bright",
    "control: A<> IUT.Dim",
    "control: A<> IUT.Off",
]


@pytest.fixture(scope="module")
def campaign():
    camp = Campaign(
        System(smartlight_network()), System(smartlight_plant()), PURPOSES
    )
    camp.synthesize_all()
    return camp


class TestSynthesis:
    def test_all_purposes_winning(self, campaign):
        flags = campaign.synthesize_all()
        assert all(flags.values())

    def test_strategies_cached(self, campaign):
        first = campaign.strategy_for(campaign.queries[0])
        second = campaign.strategy_for(campaign.queries[0])
        assert first is second

    def test_cooperative_fallback(self):
        # "Bright while Tp impossible" has no winning strategy; the
        # campaign falls back to a cooperative one instead of giving up.
        camp = Campaign(
            System(smartlight_network()),
            System(smartlight_plant()),
            ["control: A<> IUT.L5 && Tp > 2"],
        )
        strategy = camp.strategy_for(camp.queries[0])
        from repro.game import CooperativeStrategy

        assert isinstance(strategy, CooperativeStrategy)

    def test_cooperative_disabled(self):
        camp = Campaign(
            System(smartlight_network()),
            System(smartlight_plant()),
            ["control: A<> IUT.L5 && Tp > 2"],
            allow_cooperative=False,
        )
        assert camp.strategy_for(camp.queries[0]) is None


class TestExecution:
    def test_conforming_implementation(self, campaign):
        report = campaign.run(
            lambda: SimulatedImplementation(
                System(smartlight_plant()), LazyPolicy()
            )
        )
        assert all(o.verdict == PASS for o in report.outcomes)
        assert report.conformant is None  # passing cannot *prove* tioco
        assert not report.failed_purposes
        assert "no violation found" in report.summary()

    def test_faulty_implementation_flagged(self, campaign):
        mutant = swap_output_channel(
            smartlight_plant(), "bright", automaton="IUT", source="L1",
            sync="dim!",
        )
        report = campaign.run(
            lambda: SimulatedImplementation(System(mutant), EagerPolicy())
        )
        assert report.conformant is False
        assert report.failed_purposes
        assert "NON-CONFORMANT" in report.summary()
        assert "failing trace" in report.summary()

    def test_repetitions(self, campaign):
        report = campaign.run(
            lambda: SimulatedImplementation(
                System(smartlight_plant()), EagerPolicy()
            ),
            repetitions=3,
        )
        assert all(len(o.runs) == 3 for o in report.outcomes)

    def test_report_mentions_strategy_mode(self, campaign):
        report = campaign.run(
            lambda: SimulatedImplementation(
                System(smartlight_plant()), EagerPolicy()
            )
        )
        assert "winning strategy" in report.summary()
