"""Tests for the TA model layer and builders (repro.ta)."""

import pytest

from repro.ta import NetworkBuilder, ModelError
from repro.ta.model import INPUT, INTERNAL, OUTPUT


def tiny_builder():
    net = NetworkBuilder("tiny")
    net.constant("K", 3)
    net.clock("x")
    net.input_channel("press")
    net.output_channel("beep")
    a = net.automaton("M")
    a.location("s0", initial=True)
    a.location("s1", invariant="x <= K")
    a.edge("s0", "s1", guard="x >= 1", sync="press?", assign="x := 0")
    a.edge("s1", "s0", sync="beep!")
    return net


class TestBuilder:
    def test_build_succeeds(self):
        net = tiny_builder().build()
        assert net.dim == 2
        assert net.initial_locations() == (0,)

    def test_channel_kinds(self):
        net = tiny_builder().build()
        assert net.channels["press"].kind == INPUT
        assert net.channels["press"].controllable
        assert net.channels["beep"].kind == OUTPUT
        assert not net.channels["beep"].controllable

    def test_edge_controllability_from_channel(self):
        net = tiny_builder().build()
        edges = net.automaton("M").edges
        assert edges[0].controllable  # press?
        assert not edges[1].controllable  # beep!

    def test_duplicate_location_rejected(self):
        net = NetworkBuilder("dup")
        a = net.automaton("A")
        a.location("s", initial=True)
        with pytest.raises(ModelError):
            a.location("s")

    def test_two_initials_rejected(self):
        net = NetworkBuilder("dup")
        a = net.automaton("A")
        a.location("s", initial=True)
        with pytest.raises(ModelError):
            a.location("t", initial=True)

    def test_unknown_location_in_edge(self):
        net = NetworkBuilder("bad")
        a = net.automaton("A")
        a.location("s", initial=True)
        with pytest.raises(ModelError):
            a.edge("s", "nowhere")

    def test_no_initial_rejected_at_build(self):
        net = NetworkBuilder("noinit")
        net.automaton("A").location("s")
        with pytest.raises(ModelError):
            net.build()

    def test_undeclared_channel_rejected(self):
        net = NetworkBuilder("chan")
        a = net.automaton("A")
        a.location("s", initial=True)
        a.edge("s", "s", sync="ghost!")
        with pytest.raises(ModelError):
            net.build()

    def test_bad_sync_string(self):
        net = NetworkBuilder("sync")
        a = net.automaton("A")
        a.location("s", initial=True)
        with pytest.raises(ModelError):
            a.edge("s", "s", sync="nodirection")

    def test_duplicate_automaton_rejected(self):
        net = NetworkBuilder("two")
        net.automaton("A").location("s", initial=True)
        net.automaton("A").location("s", initial=True)
        with pytest.raises(ModelError):
            net.build()


class TestInvariantShapes:
    def test_lower_bound_invariant_rejected(self):
        net = NetworkBuilder("inv")
        net.clock("x")
        a = net.automaton("A")
        a.location("s", invariant="x >= 3", initial=True)
        with pytest.raises(ModelError):
            net.build()

    def test_diagonal_invariant_rejected(self):
        net = NetworkBuilder("inv")
        net.clock("x", "y")
        a = net.automaton("A")
        a.location("s", invariant="x - y <= 3", initial=True)
        with pytest.raises(ModelError):
            net.build()

    def test_upper_bound_invariant_ok(self):
        net = NetworkBuilder("inv")
        net.clock("x")
        a = net.automaton("A")
        a.location("s", invariant="x <= 3 && x < 7", initial=True)
        assert net.build() is not None


class TestClockAssignments:
    def test_reset_to_zero(self):
        net = tiny_builder().build()
        edge = net.automaton("M").edges[0]
        assert edge.clock_resets == ((1, 0),)

    def test_reset_to_constant(self):
        net = NetworkBuilder("rc")
        net.clock("x")
        a = net.automaton("A")
        a.location("s", initial=True)
        a.edge("s", "s", assign="x := 5")
        built = net.build()
        assert built.automaton("A").edges[0].clock_resets == ((1, 5),)

    def test_reset_to_expression_rejected(self):
        net = NetworkBuilder("rx")
        net.clock("x")
        net.int_var("n")
        a = net.automaton("A")
        a.location("s", initial=True)
        a.edge("s", "s", assign="x := n")
        with pytest.raises(ModelError):
            net.build()

    def test_negative_reset_rejected(self):
        net = NetworkBuilder("rn")
        net.clock("x")
        a = net.automaton("A")
        a.location("s", initial=True)
        a.edge("s", "s", assign="x := -1")
        with pytest.raises(ModelError):
            net.build()

    def test_int_assigns_separated(self):
        net = NetworkBuilder("mix")
        net.clock("x")
        net.int_var("n", 0, 9)
        a = net.automaton("A")
        a.location("s", initial=True)
        a.edge("s", "s", assign="x := 0, n := n + 1")
        built = net.build()
        edge = built.automaton("A").edges[0]
        assert edge.clock_resets == ((1, 0),)
        assert len(edge.int_assigns) == 1


class TestMaxConstants:
    def test_covers_guards_and_invariants(self):
        net = tiny_builder().build()
        consts = net.max_constants()
        assert consts[1] >= 3  # invariant x <= K with K = 3

    def test_diagonal_detection(self):
        net = NetworkBuilder("diag")
        net.clock("x", "y")
        a = net.automaton("A")
        a.location("s", initial=True)
        a.edge("s", "s", guard="x - y <= 1")
        built = net.build()
        assert built.has_diagonal_constraints()

    def test_no_diagonals_in_tiny(self):
        assert not tiny_builder().build().has_diagonal_constraints()

    def test_location_names(self):
        net = tiny_builder().build()
        assert net.location_names((1,)) == ["M.s1"]

    def test_channel_names_filter(self):
        net = tiny_builder().build()
        assert net.channel_names("input") == ["press"]
        assert net.channel_names("output") == ["beep"]
