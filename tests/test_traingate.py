"""Tests for the train-gate case study (safety games in anger)."""

import pytest

from repro.game import solve_reachability_game, solve_safety_game
from repro.game.cooperative import solve_cooperative
from repro.graph import check_reachable
from repro.models.traingate import (
    crossing_purpose,
    exclusion_purpose,
    traingate_network,
)
from repro.semantics.system import System
from repro.tctl import GoalPredicate, parse_query


@pytest.fixture(scope="module")
def gate2():
    return System(traingate_network(2))


class TestModel:
    def test_purpose_strings(self):
        assert exclusion_purpose(2) == "control: A[] !(Train0.Cross && Train1.Cross)"
        assert crossing_purpose(1) == "control: A<> Train1.Cross"

    def test_three_train_purpose_has_all_pairs(self):
        text = exclusion_purpose(3)
        assert text.count("!(") == 3

    def test_min_size(self):
        with pytest.raises(ValueError):
            traingate_network(0)

    def test_crossing_reachable_plainly(self, gate2):
        goal = GoalPredicate(gate2, parse_query("E<> Train0.Cross").predicate)
        assert check_reachable(gate2, goal.federation)

    def test_collision_reachable_without_control(self, gate2):
        """An unmanaged gate CAN produce a collision — the hazard the
        controller must prevent exists in the arena."""
        goal = GoalPredicate(
            gate2, parse_query("E<> Train0.Cross && Train1.Cross").predicate
        )
        assert check_reachable(gate2, goal.federation)


class TestGames:
    def test_exclusion_safety_winning(self, gate2):
        res = solve_safety_game(gate2, parse_query(exclusion_purpose(2)),
                                time_limit=120)
        assert res.winning

    def test_crossing_not_forceable(self, gate2):
        """The tester cannot force an uncontrollable train to approach:
        the reachability purpose has no winning strategy."""
        res = solve_reachability_game(
            gate2, parse_query(crossing_purpose(0)), time_limit=120
        )
        assert not res.winning

    def test_crossing_cooperatively_reachable(self, gate2):
        coop = solve_cooperative(gate2, parse_query(crossing_purpose(0)),
                                 time_limit=120)
        assert coop.goal_reachable

    def test_single_train_exclusion_trivial(self):
        sys_ = System(traingate_network(1))
        # With one train the exclusion conjunction is empty -> use a
        # simple always-true invariant instead.
        res = solve_safety_game(sys_, parse_query("control: A[] x0 >= 0"))
        assert res.winning

    def test_safe_sets_nonempty_everywhere_relevant(self, gate2):
        res = solve_safety_game(gate2, parse_query(exclusion_purpose(2)),
                                time_limit=120)
        init = res.graph.initial
        start = gate2.initial_concrete()
        assert res.safe_of(init).contains(start.clocks)
