"""Tests for goal-predicate evaluation (repro.tctl.goals)."""

from fractions import Fraction

import pytest

from repro.dbm import Federation
from repro.semantics.state import SymbolicState
from repro.semantics.system import System
from repro.ta import NetworkBuilder
from repro.tctl import GoalPredicate, parse_query
from repro.tctl.goals import normalize_process_fields


def goal_model():
    net = NetworkBuilder("goals")
    net.clock("x", "y")
    net.int_var("v", 0, 5, init=2)
    net.int_array("arr", 3, 0, 1, init=[1, 0, 1])
    net.range_type("Idx", 0, 2)
    a = net.automaton("A")
    a.location("s0", initial=True)
    a.location("s1")
    a.edge("s0", "s1", controllable=False)
    return net.build()


@pytest.fixture()
def sys_():
    return System(goal_model())


@pytest.fixture()
def init(sys_):
    return sys_.initial_symbolic()


def fed_of(sys_, init, text):
    goal = GoalPredicate(sys_, parse_query("E<> " + text).predicate)
    return goal.federation(init)


class TestDiscreteAtoms:
    def test_true_variable_atom_gives_whole_zone(self, sys_, init):
        fed = fed_of(sys_, init, "v == 2")
        assert fed.equals(Federation.from_zone(init.zone))

    def test_false_variable_atom_gives_empty(self, sys_, init):
        assert fed_of(sys_, init, "v == 3").is_empty()

    def test_location_atom(self, sys_, init):
        assert not fed_of(sys_, init, "A.s0").is_empty()
        assert fed_of(sys_, init, "A.s1").is_empty()

    def test_negated_location(self, sys_, init):
        assert fed_of(sys_, init, "!A.s1").equals(
            Federation.from_zone(init.zone)
        )

    def test_array_and_quantifier(self, sys_, init):
        assert not fed_of(sys_, init, "exists (i : Idx) (arr[i] == 0)").is_empty()
        assert fed_of(sys_, init, "forall (i : Idx) (arr[i] == 1)").is_empty()

    def test_negated_quantifier(self, sys_, init):
        # !forall == exists-not.
        fed = fed_of(sys_, init, "!(forall (i : Idx) (arr[i] == 1))")
        assert fed.equals(Federation.from_zone(init.zone))


class TestClockAtoms:
    def test_upper_bound(self, sys_, init):
        fed = fed_of(sys_, init, "x <= 3")
        assert fed.contains([0, Fraction(2), Fraction(2)])
        assert not fed.contains([0, Fraction(4), Fraction(4)])

    def test_conjunction_with_discrete(self, sys_, init):
        fed = fed_of(sys_, init, "v == 2 && x >= 1")
        assert fed.contains([0, Fraction(1), Fraction(1)])
        assert not fed.contains([0, Fraction(0), Fraction(0)])

    def test_disjunction_of_clocks(self, sys_, init):
        fed = fed_of(sys_, init, "x < 1 || x > 5")
        assert fed.contains([0, Fraction(1, 2), Fraction(1, 2)])
        assert fed.contains([0, Fraction(6), Fraction(6)])
        assert not fed.contains([0, Fraction(3), Fraction(3)])

    def test_negated_equality_splits(self, sys_, init):
        fed = fed_of(sys_, init, "!(x == 2)")
        assert fed.contains([0, Fraction(1), Fraction(1)])
        assert fed.contains([0, Fraction(3), Fraction(3)])
        assert not fed.contains([0, Fraction(2), Fraction(2)])

    def test_diagonal_goal(self, sys_, init):
        # Along the initial diagonal x == y this is empty.
        fed = fed_of(sys_, init, "x - y >= 1")
        assert fed.is_empty()

    def test_imply_with_clock(self, sys_, init):
        fed = fed_of(sys_, init, "v == 2 imply x >= 1")
        assert not fed.contains([0, Fraction(0), Fraction(0)])
        assert fed.contains([0, Fraction(1), Fraction(1)])

    def test_arrow_imply_synonym(self, sys_, init):
        a = fed_of(sys_, init, "v == 2 -> x >= 1")
        b = fed_of(sys_, init, "v == 2 imply x >= 1")
        assert a.equals(b)

    def test_quantified_clock_bound(self, sys_, init):
        # x >= i for every i in [0, 2] collapses to x >= 2.
        fed = fed_of(sys_, init, "forall (i : Idx) (x >= i)")
        assert fed.contains([0, Fraction(2), Fraction(2)])
        assert not fed.contains([0, Fraction(1), Fraction(1)])


class TestNormalization:
    def test_process_variable_rewritten(self, sys_):
        expr = parse_query("E<> A.v == 2").predicate
        normalized = normalize_process_fields(expr, sys_)
        assert "A.v" not in str(normalized)
        assert "v" in str(normalized)

    def test_location_test_untouched(self, sys_):
        expr = parse_query("E<> A.s0").predicate
        normalized = normalize_process_fields(expr, sys_)
        assert str(normalized) == "A.s0"

    def test_holds_discretely(self, sys_, init):
        goal = GoalPredicate(sys_, parse_query("E<> v == 2").predicate)
        assert goal.holds_discretely(init)

    def test_clock_atoms_collected(self, sys_):
        goal = GoalPredicate(
            sys_, parse_query("E<> x <= 7 && v == 1 && y > 3").predicate
        )
        atoms = goal.clock_atoms()
        assert len(atoms) == 2
