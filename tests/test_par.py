"""Tests of the repro.par worker pool and the sharded campaigns.

The determinism contract is the point: a sharded run must be
*indistinguishable* from the serial one in everything the campaign
reports — statuses, per-family counts, failing seeds, shrunk
reproducers — for any ``--jobs`` value, with only wall clock and
profiling counters allowed to vary.  These tests pin that contract at
three levels: the pool primitive, the differential fuzz campaign (CLI
end to end, 50 instances at jobs 1/2/4), and the mutation-detection
campaign.
"""

import json

import pytest

from repro.gen.cli import VOLATILE_REPORT_KEYS, main as cli_main
from repro.models.smartlight import smartlight_network, smartlight_plant
from repro.par import auto_jobs, parse_jobs, resolve_jobs, starmap, steal_map
from repro.testing import MutantSpec, MutationCampaign
from repro.util import counters


# ----------------------------------------------------------------------
# Pool primitives
# ----------------------------------------------------------------------


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"boom {x}")


def count_and_square(x):
    counters.inc("par.test_ops")
    counters.observe("par.test_sizes", x)
    return x * x


class TestStarmap:
    def test_serial_matches_parallel_in_order(self):
        tasks = [(i,) for i in range(23)]
        serial = starmap(square, tasks, jobs=1)
        parallel = starmap(square, tasks, jobs=3)
        assert serial == parallel == [i * i for i in range(23)]

    def test_single_task_stays_in_process(self):
        assert starmap(square, [(7,)], jobs=8) == [49]

    def test_on_result_fires_once_per_task(self):
        seen = []
        starmap(square, [(i,) for i in range(10)], jobs=2, on_result=seen.append)
        assert sorted(seen) == [i * i for i in range(10)]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            starmap(boom, [(1,), (2,)], jobs=2)

    def test_counters_survive_the_pool(self):
        counters.reset()
        starmap(count_and_square, [(i,) for i in range(12)], jobs=3)
        exported = counters.export()
        assert exported["counts"]["par.test_ops"] == 12
        count, total, peak = exported["stats"]["par.test_sizes"]
        assert (count, total, peak) == (12, sum(range(12)), 11)

    def test_counters_identical_to_serial(self):
        counters.reset()
        starmap(count_and_square, [(i,) for i in range(12)], jobs=1)
        serial = counters.export()
        counters.reset()
        starmap(count_and_square, [(i,) for i in range(12)], jobs=4)
        assert counters.export() == serial


class TestStealMap:
    """Work-stealing dispatch must keep the starmap determinism contract."""

    def test_serial_matches_parallel_in_order(self):
        tasks = [(i,) for i in range(23)]
        serial = steal_map(square, tasks, jobs=1)
        stolen = steal_map(square, tasks, jobs=3)
        assert serial == stolen == [i * i for i in range(23)]

    def test_matches_chunked_starmap(self):
        tasks = [(i,) for i in range(17)]
        assert steal_map(square, tasks, jobs=4) == starmap(square, tasks, jobs=4)

    def test_on_result_receives_indexed_pairs(self):
        seen = []
        steal_map(
            square,
            [(i,) for i in range(10)],
            jobs=2,
            on_result=lambda index, result: seen.append((index, result)),
        )
        assert sorted(seen) == [(i, i * i) for i in range(10)]

    def test_on_result_indexed_in_serial_mode_too(self):
        seen = []
        steal_map(
            square,
            [(i,) for i in range(5)],
            jobs=1,
            on_result=lambda index, result: seen.append((index, result)),
        )
        assert seen == [(i, i * i) for i in range(5)]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            steal_map(boom, [(1,), (2,)], jobs=2)

    def test_counters_identical_to_serial(self):
        counters.reset()
        steal_map(count_and_square, [(i,) for i in range(12)], jobs=1)
        serial = counters.export()
        counters.reset()
        steal_map(count_and_square, [(i,) for i in range(12)], jobs=4)
        assert counters.export() == serial
        assert serial["counts"]["par.test_ops"] == 12


class TestJobsParsing:
    def test_auto_is_at_least_one(self):
        assert auto_jobs() >= 1

    def test_parse(self):
        assert parse_jobs("4") == 4
        assert parse_jobs("auto") == auto_jobs()
        assert parse_jobs(" AUTO ") == auto_jobs()
        with pytest.raises(ValueError):
            parse_jobs("0")
        with pytest.raises(ValueError):
            parse_jobs("many")

    def test_resolve_clamps_to_work(self):
        assert resolve_jobs(8, 3) == 3
        assert resolve_jobs(2, 100) == 2
        assert resolve_jobs(4, 0) == 1


# ----------------------------------------------------------------------
# Sharded differential campaigns: the byte-identical report contract
# ----------------------------------------------------------------------


def stable_payload(path):
    payload = json.loads(path.read_text())
    for key in VOLATILE_REPORT_KEYS:
        assert key in payload
        del payload[key]
    return payload


class TestCampaignDeterminism:
    def test_report_identical_for_jobs_1_2_4(self, tmp_path):
        """A 50-instance campaign report is bitwise-stable across --jobs.

        Same seeds, same statuses, same family counts, stable ordering —
        everything except the declared-volatile keys (elapsed time, the
        jobs value itself, profiling counters)."""
        payloads = []
        for jobs in (1, 2, 4):
            report = tmp_path / f"report-{jobs}.json"
            code = cli_main(
                [
                    "--count", "50",
                    "--seed", "1000",
                    "--zone-trials", "10",
                    "--no-fixpoint",
                    "--jobs", str(jobs),
                    "--report-json", str(report),
                ]
            )
            assert code == 0
            payloads.append(stable_payload(report))
        assert payloads[0] == payloads[1] == payloads[2]
        # And the stable part is *bytewise* stable, not just tree-equal.
        blobs = {json.dumps(p, sort_keys=True) for p in payloads}
        assert len(blobs) == 1

    def test_check_subset_reports_are_jobs_stable(self, tmp_path):
        """A different seed window and check subset is jobs-stable too —
        including the failures block (seeds, shrunk reproducers), should a
        genuine disagreement ever be caught in this window."""
        blobs = []
        for jobs in (1, 3):
            report = tmp_path / f"window-{jobs}.json"
            code = cli_main(
                [
                    "--count", "30",
                    "--seed", "777000",
                    "--zone-trials", "0",
                    "--no-fixpoint",
                    "--checks", "estimate,conformance",
                    "--jobs", str(jobs),
                    "--report-json", str(report),
                ]
            )
            assert code in (0, 1)
            blobs.append(json.dumps(stable_payload(report), sort_keys=True))
        assert blobs[0] == blobs[1]


# ----------------------------------------------------------------------
# Sharded mutation-detection campaigns
# ----------------------------------------------------------------------

SMARTLIGHT_MUTANTS = [
    MutantSpec.make(
        "wrong-output-L1", "swap_output_channel", new_channel="bright",
        automaton="IUT", source="L1", sync="dim!", expected_caught=True,
    ),
    MutantSpec.make(
        "late-L6", "widen_invariant", automaton="IUT", location="L6",
        delta=2, expected_caught=True,
    ),
    MutantSpec.make(
        "missing-bright-L6", "drop_edge", automaton="IUT", source="L6",
        sync="bright!", expected_caught=True,
    ),
    MutantSpec.make(
        "early-L1", "widen_invariant", automaton="IUT", location="L1",
        delta=-1, expected_caught=False,
    ),
]


@pytest.fixture(scope="module")
def smartlight_campaign():
    return MutationCampaign(
        smartlight_network, smartlight_plant, ["control: A<> IUT.Bright"]
    )


class TestMutationCampaign:
    def test_detection_matches_expectations(self, smartlight_campaign):
        report = smartlight_campaign.run(SMARTLIGHT_MUTANTS, jobs=1)
        assert report.surprises == []
        assert report.killed == 3
        assert "mutation score: 3/4" in report.summary()

    def test_sharded_run_is_identical(self, smartlight_campaign):
        serial = smartlight_campaign.run(SMARTLIGHT_MUTANTS, jobs=1)
        sharded = smartlight_campaign.run(SMARTLIGHT_MUTANTS, jobs=2)
        assert serial.outcomes == sharded.outcomes

    def test_mutant_specs_are_picklable(self):
        import pickle

        for spec in SMARTLIGHT_MUTANTS:
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec
            mutant = clone.build(smartlight_plant())
            assert mutant.network._prepared
