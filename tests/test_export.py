"""Tests for strategy serialization (repro.game.export) — future work 2."""

import json

import pytest

from repro.game import (
    PackedStrategy,
    Strategy,
    StrategyFormatError,
    TwoPhaseSolver,
    Verdictish,
    strategy_from_dict,
    strategy_to_dict,
)
from repro.game.export import (
    dbm_from_list,
    dbm_to_list,
    federation_from_obj,
    federation_to_obj,
    load_strategy,
    model_fingerprint,
    save_strategy,
)
from repro.models.smartlight import smartlight_network, smartlight_plant
from repro.semantics.system import System
from repro.tctl import parse_query
from repro.testing import LazyPolicy, RandomPolicy, SimulatedImplementation, execute_test
from repro.testing.trace import PASS

from tests.zone_strategies import box


@pytest.fixture(scope="module")
def strategy():
    arena = System(smartlight_network())
    result = TwoPhaseSolver(arena, parse_query("control: A<> IUT.Bright")).solve()
    return Strategy(result)


class TestZoneCodec:
    def test_dbm_round_trip(self):
        zone = box(3, [(1, 5), (2, 4)])
        assert dbm_from_list(3, dbm_to_list(zone)).equals(zone)

    def test_dbm_wrong_size(self):
        with pytest.raises(StrategyFormatError):
            dbm_from_list(3, [0, 1, 2])

    def test_federation_round_trip(self):
        from repro.dbm import Federation

        fed = Federation(3, [box(3, [(0, 1), (0, 9)]), box(3, [(4, 6), (0, 9)])])
        restored = federation_from_obj(3, federation_to_obj(fed))
        assert restored.equals(fed)

    def test_federation_compacted_on_save(self):
        from repro.dbm import Federation

        fed = Federation(3, [box(3, [(0, 4), (0, 9)]), box(3, [(4, 8), (0, 9)]),
                             box(3, [(2, 6), (0, 9)])])
        obj = federation_to_obj(fed)
        assert len(obj) == 2  # the middle zone is covered by the others


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        a = model_fingerprint(System(smartlight_network()))
        b = model_fingerprint(System(smartlight_network()))
        assert a == b

    def test_differs_for_mutants(self):
        from repro.testing.mutants import widen_invariant

        original = model_fingerprint(System(smartlight_plant()))
        mutated = model_fingerprint(
            System(widen_invariant(smartlight_plant(), "IUT", "L1", 1))
        )
        assert original != mutated


class TestRoundTrip:
    def test_json_serializable(self, strategy):
        blob = json.dumps(strategy_to_dict(strategy))
        assert len(blob) > 100

    def test_packed_matches_original_decisions(self, strategy):
        from fractions import Fraction

        system = System(smartlight_network())
        packed = strategy_from_dict(system, strategy_to_dict(strategy))
        assert packed.size == strategy.size
        probes = [
            system.initial_concrete(),
            system.initial_concrete().delayed(Fraction(1)),
            system.initial_concrete().delayed(Fraction(25)),
        ]
        for state in probes:
            original = strategy.decide(state)
            restored = packed.decide(state)
            assert original.kind == restored.kind
            assert original.delay == restored.delay
            if original.kind == Verdictish.FIRE:
                assert original.move.label == restored.move.label

    def test_packed_strategy_executes(self, strategy):
        packed = strategy_from_dict(
            System(smartlight_network()), strategy_to_dict(strategy)
        )
        for policy in (LazyPolicy(), RandomPolicy(3)):
            imp = SimulatedImplementation(System(smartlight_plant()), policy)
            run = execute_test(packed, System(smartlight_plant()), imp)
            assert run.verdict == PASS, str(run)

    def test_file_round_trip(self, strategy, tmp_path):
        path = tmp_path / "bright.strategy.json"
        save_strategy(strategy, path)
        packed = load_strategy(System(smartlight_network()), path)
        assert isinstance(packed, PackedStrategy)
        assert packed.size == strategy.size


class TestValidation:
    def test_rejects_wrong_model(self, strategy):
        data = strategy_to_dict(strategy)
        with pytest.raises(StrategyFormatError):
            strategy_from_dict(System(smartlight_plant()), data)

    def test_rejects_tampered_fingerprint(self, strategy):
        data = strategy_to_dict(strategy)
        data["fingerprint"] = "0" * 16
        with pytest.raises(StrategyFormatError):
            strategy_from_dict(System(smartlight_network()), data)

    def test_rejects_unknown_format(self, strategy):
        data = strategy_to_dict(strategy)
        data["format"] = 99
        with pytest.raises(StrategyFormatError):
            strategy_from_dict(System(smartlight_network()), data)
