"""Tests for the mutation framework (repro.testing.mutants)."""

import pytest

from repro.models.smartlight import smartlight_plant
from repro.semantics.system import System
from repro.testing.mutants import (
    MutationError,
    add_spurious_edge,
    clone_network,
    drop_edge,
    find_edges,
    retarget_edge,
    shift_guard_constant,
    swap_output_channel,
    widen_invariant,
)


class TestClone:
    def test_clone_is_independent(self):
        original = smartlight_plant()
        clone = clone_network(original)
        clone.automaton("IUT").edges.pop()
        assert len(original.automaton("IUT").edges) != len(
            clone.automaton("IUT").edges
        )

    def test_clone_preserves_structure(self):
        original = smartlight_plant()
        clone = clone_network(original).prepare()
        assert len(clone.automaton("IUT").edges) == len(
            original.automaton("IUT").edges
        )
        assert clone.initial_locations() == original.initial_locations()

    def test_clone_renames(self):
        clone = clone_network(smartlight_plant(), "-x")
        assert clone.name.endswith("-x")


class TestSelectors:
    def test_find_by_sync(self):
        edges = find_edges(smartlight_plant(), sync="dim!")
        assert len(edges) == 2  # L1 -> Dim and L5 -> Dim

    def test_find_by_source_and_sync(self):
        edges = find_edges(smartlight_plant(), source="L5", sync="bright!")
        assert len(edges) == 1

    def test_find_by_target(self):
        edges = find_edges(smartlight_plant(), target="Bright")
        assert len(edges) == 3  # from L5, L2, L6

    def test_no_match_raises_in_operators(self):
        with pytest.raises(MutationError):
            drop_edge(smartlight_plant(), source="Nowhere")


class TestOperators:
    def test_shift_guard(self):
        mutant = shift_guard_constant(
            smartlight_plant(), -1, automaton="IUT", source="Off", target="L5"
        )
        aut, pos = find_edges(mutant, source="Off", target="L5")[0]
        guard_text = str(aut.edges[pos].guard)
        assert "Tidle - 1" in guard_text

    def test_shift_guard_requires_guard(self):
        with pytest.raises(MutationError):
            shift_guard_constant(
                smartlight_plant(), 1, automaton="IUT", source="Bright"
            )

    def test_widen_invariant(self):
        mutant = widen_invariant(smartlight_plant(), "IUT", "L1", 2)
        loc = mutant.automaton("IUT").locations["L1"]
        assert "4" in str(loc.invariant)

    def test_widen_invariant_requires_invariant(self):
        with pytest.raises(MutationError):
            widen_invariant(smartlight_plant(), "IUT", "Off", 2)

    def test_retarget(self):
        mutant = retarget_edge(
            smartlight_plant(), "Off", automaton="IUT", source="L2", sync="bright!"
        )
        aut, pos = find_edges(mutant, source="L2", sync="bright!")[0]
        assert aut.edges[pos].target == "Off"

    def test_retarget_unknown_location(self):
        with pytest.raises(MutationError):
            retarget_edge(
                smartlight_plant(), "Nowhere", automaton="IUT", source="L2"
            )

    def test_swap_output(self):
        mutant = swap_output_channel(
            smartlight_plant(), "off", automaton="IUT", source="L1", sync="dim!"
        )
        aut, pos = find_edges(mutant, source="L1", target="Dim")[0]
        assert aut.edges[pos].sync == ("off", "!")

    def test_swap_unknown_channel(self):
        with pytest.raises(MutationError):
            swap_output_channel(
                smartlight_plant(), "nosuch", automaton="IUT", source="L1"
            )

    def test_drop_edge(self):
        original_count = len(smartlight_plant().automaton("IUT").edges)
        mutant = drop_edge(
            smartlight_plant(), automaton="IUT", source="L2", sync="bright!"
        )
        assert len(mutant.automaton("IUT").edges) == original_count - 1

    def test_add_spurious_edge(self):
        mutant = add_spurious_edge(
            smartlight_plant(),
            "IUT",
            "Off",
            "Bright",
            guard="x >= 1",
            sync="bright!",
        )
        assert find_edges(mutant, source="Off", target="Bright")

    def test_mutants_are_runnable(self):
        """Every operator yields a loadable, executable network."""
        mutants = [
            shift_guard_constant(
                smartlight_plant(), 1, automaton="IUT", source="Off", target="L5"
            ),
            widen_invariant(smartlight_plant(), "IUT", "L1", 1),
            retarget_edge(
                smartlight_plant(), "Dim", automaton="IUT", source="L2",
                sync="bright!",
            ),
            swap_output_channel(
                smartlight_plant(), "dim", automaton="IUT", source="L2",
                sync="bright!",
            ),
            drop_edge(smartlight_plant(), automaton="IUT", source="L3", sync="off!"),
            add_spurious_edge(
                smartlight_plant(), "IUT", "Dim", "Bright", sync="bright!"
            ),
        ]
        for mutant in mutants:
            sys_ = System(mutant)
            init = sys_.initial_symbolic()
            assert init is not None
