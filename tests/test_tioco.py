"""Tests for the tioco conformance monitor (repro.testing.tioco)."""

from fractions import Fraction

import pytest

from repro.models.lep import lep_plant
from repro.models.smartlight import smartlight_plant
from repro.semantics.system import System
from repro.testing import Quiescence, TiocoMonitor


@pytest.fixture()
def monitor():
    return TiocoMonitor(System(smartlight_plant()))


class TestQuiescence:
    def test_unbounded(self):
        q = Quiescence(None, False)
        assert q.allows(Fraction(10**6))

    def test_bounded_inclusive(self):
        q = Quiescence(Fraction(2), False)
        assert q.allows(Fraction(2))
        assert not q.allows(Fraction(5, 2))

    def test_bounded_strict(self):
        q = Quiescence(Fraction(2), True)
        assert q.allows(Fraction(3, 2))
        assert not q.allows(Fraction(2))


class TestMonitorBasics:
    def test_initial_quiescence_unbounded(self, monitor):
        # In Off the light may stay silent forever.
        assert monitor.max_quiescence().bound is None

    def test_no_outputs_allowed_in_off(self, monitor):
        assert monitor.allowed_outputs() == []

    def test_input_accepted(self, monitor):
        assert monitor.observe("touch", "input")
        assert monitor.ok

    def test_advance_then_input(self, monitor):
        assert monitor.advance(Fraction(25))
        assert monitor.observe("touch", "input")
        # Long idle: reactivation pending in L5 — both outputs possible.
        assert set(monitor.allowed_outputs()) == {"bright", "dim"}

    def test_quick_touch_only_dim(self, monitor):
        assert monitor.advance(Fraction(5))
        assert monitor.observe("touch", "input")
        assert monitor.allowed_outputs() == ["dim"]

    def test_quiescence_bounded_in_transient(self, monitor):
        monitor.advance(Fraction(5))
        monitor.observe("touch", "input")
        q = monitor.max_quiescence()
        assert q.bound == 2 and not q.strict

    def test_wrong_output_fails(self, monitor):
        monitor.advance(Fraction(5))
        monitor.observe("touch", "input")  # -> L1, only dim! allowed
        assert not monitor.observe("bright", "output")
        assert not monitor.ok
        assert "bright" in monitor.violation

    def test_too_long_quiescence_fails(self, monitor):
        monitor.advance(Fraction(5))
        monitor.observe("touch", "input")  # L1: output forced by Tp <= 2
        assert not monitor.advance(Fraction(3))
        assert not monitor.ok
        assert "quiescent" in monitor.violation

    def test_exact_boundary_quiescence_ok(self, monitor):
        monitor.advance(Fraction(5))
        monitor.observe("touch", "input")
        assert monitor.advance(Fraction(2))
        assert monitor.observe("dim", "output")

    def test_correct_run_passes(self, monitor):
        assert monitor.advance(Fraction(1))
        assert monitor.observe("touch", "input")
        assert monitor.advance(Fraction(1))
        assert monitor.observe("dim", "output")
        assert monitor.advance(Fraction(1))
        assert monitor.observe("touch", "input")
        assert monitor.advance(Fraction(2))
        assert monitor.observe("bright", "output")
        assert monitor.ok

    def test_reset(self, monitor):
        monitor.advance(Fraction(5))
        monitor.observe("touch", "input")
        monitor.observe("bright", "output")
        assert not monitor.ok
        monitor.reset()
        assert monitor.ok
        assert monitor.max_quiescence().bound is None

    def test_failed_monitor_stays_failed(self, monitor):
        monitor.advance(Fraction(5))
        monitor.observe("touch", "input")
        monitor.observe("bright", "output")
        assert not monitor.advance(Fraction(1))
        assert not monitor.observe("dim", "output")


class TestMonitorWithCommittedSpec:
    def test_settles_internal_processing(self):
        monitor = TiocoMonitor(System(lep_plant(3)))
        # Deliver a useful message: the spec passes through committed rcv.
        monitor.spec.decls  # touch the system to ensure it's built
        # Set msgAddr via the recv input: in the plant-only model the
        # variable is assigned by the buffer, which is outside the open
        # system; simulate by pre-setting the variable.
        state = monitor.state
        decls = monitor.spec.decls
        msg_slot = decls.int_vars["msgAddr"].slot
        vars_with_msg = list(state.vars)
        vars_with_msg[msg_slot] = 1
        from repro.semantics.state import ConcreteState

        monitor.state = ConcreteState(state.locs, tuple(vars_with_msg), state.clocks)
        assert monitor.observe("recv", "input")
        # After settling, the IUT is in forward (msgAddr 1 < best 3).
        iut = monitor.spec.network.automaton("IUT")
        assert monitor.state.locs[0] == iut.location_index("forward")
        assert monitor.ok


class TestMonitorOnComposedPlant:
    """A two-automaton plant: the monitor must track the hidden-hop set.

    Stage A forwards a hidden token within 2 time units of ``go``; stage
    B emits ``fin`` between 1 and 3 time units after the (unobservable)
    hop.  ``s0 After sigma`` is a set of states, tracked symbolically.
    """

    @staticmethod
    def plant():
        from repro.ta.builder import NetworkBuilder

        net = NetworkBuilder("chain2")
        net.clock("c0", "c1")
        net.input_channel("go")
        net.output_channel("h", "fin")
        net.interface("go", "fin")
        a = net.automaton("A")
        a.location("Idle", initial=True)
        a.location("Busy", "c0 <= 2")
        a.location("Done")
        a.edge("Idle", "Busy", sync="go?", assign="c0 := 0")
        a.edge("Busy", "Done", sync="h!")
        a.edge("Busy", "Busy", sync="go?")
        a.edge("Done", "Done", sync="go?")
        b = net.automaton("B")
        b.location("Wait", initial=True)
        b.location("Hold", "c1 <= 3")
        b.location("End")
        b.edge("Wait", "Hold", sync="h?", assign="c1 := 0")
        b.edge("Hold", "End", sync="fin!", guard="c1 >= 1")
        return net.build()

    @pytest.fixture()
    def composed(self):
        return TiocoMonitor(System(self.plant()))

    def test_auto_selects_estimated_tracking(self, composed):
        assert composed.estimated
        assert composed.mode == "partial"

    def test_hidden_hop_is_not_an_observable_output(self, composed):
        composed.observe("go", "input")
        assert composed.allowed_outputs() == []  # h is internalised
        assert composed.enabled_labels("input") == ["go"]

    def test_quiescence_spans_both_stage_windows(self, composed):
        composed.observe("go", "input")
        q = composed.max_quiescence()
        assert q.bound == Fraction(5) and not q.strict

    def test_conforming_session_passes(self, composed):
        assert composed.observe("go", "input")
        assert composed.advance(Fraction(2))
        assert composed.allowed_outputs() == ["fin"]
        assert composed.observe("fin", "output")
        assert composed.ok

    def test_output_before_any_hop_could_enable_it_fails(self, composed):
        composed.observe("go", "input")
        composed.advance(Fraction(1, 2))
        assert not composed.observe("fin", "output")
        assert not composed.ok
        assert "fin" in composed.violation

    def test_overlong_silence_fails(self, composed):
        composed.observe("go", "input")
        assert not composed.advance(Fraction(6))
        assert not composed.ok
        assert "quiescent" in composed.violation

    def test_reset_recovers(self, composed):
        composed.observe("go", "input")
        composed.advance(Fraction(6))
        assert not composed.ok
        composed.reset()
        assert composed.ok
        assert composed.max_quiescence().bound is None

    def test_session_against_simulated_implementation(self):
        from repro.testing import EagerPolicy, SimulatedImplementation

        system = System(self.plant())
        imp = SimulatedImplementation(system, EagerPolicy())
        monitor = TiocoMonitor(System(self.plant()))
        assert imp.mode == "partial"
        assert imp.give_input("go")
        assert monitor.observe("go", "input")
        for _ in range(8):
            scheduled = imp.next_output()
            if scheduled is None:
                break
            label = imp.advance(scheduled.delay)
            assert monitor.advance(scheduled.delay)
            if label is not None:
                assert monitor.observe(label, "output"), monitor.violation
        assert monitor.ok
        # The eager run emitted fin; the spec allows nothing further.
        assert monitor.allowed_outputs() == []
