"""Tests of the repro.gen subsystem: generation, determinism, differential
checks, and shrinking.

The determinism tests are the CI contract of the fuzzer: any failure it
ever reports must be reproducible from the printed seed alone, which
requires same seed ⇒ byte-identical network (stable structural hash) and
same seed ⇒ same solver verdict.
"""

import random

import pytest

from repro.game import OnTheFlySolver, TwoPhaseSolver
from repro.gen import (
    FAMILIES,
    GenConfig,
    check_zone_algebra,
    generate_batch,
    generate_instance,
    run_campaign,
    run_instance_checks,
    shrink_instance,
)
from repro.gen.differential import (
    CHECKS,
    FAIL,
    OK,
    CheckResult,
    DiffConfig,
)
from repro.gen.networks import COMPLEMENT, IGNORE
from repro.semantics.system import System
from repro.ta.validate import check_urgent_escapes, validate_plant
from repro.tctl import parse_query

ALL_FAMILIES = sorted(FAMILIES)


# ----------------------------------------------------------------------
# Structural validity of every family
# ----------------------------------------------------------------------


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_families_build_prepared_networks(family):
    for seed in range(8):
        instance = generate_instance(seed, family)
        arena = instance.arena
        plant = instance.plant
        assert arena._prepared and plant._prepared
        assert arena.automaton("ENV") is not None
        # The arena's closed semantics must have a legal initial state.
        System(arena).initial_symbolic()
        # The query must parse as a reachability game.
        assert parse_query(instance.query).is_game


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_env_never_steals_hidden_channels(family):
    for seed in range(8):
        spec = generate_instance(seed, family).spec
        env_edges = [
            edge
            for aut in (generate_instance(seed, family).arena.automata)
            if aut.name == "ENV"
            for edge in aut.edges
        ]
        received = {e.sync[0] for e in env_edges if e.sync and e.sync[1] == "?"}
        assert not received & set(spec.env_hidden)


def test_random_family_plants_satisfy_test_hypotheses():
    """§2.2: single-automaton plants are deterministic and input-enabled."""
    for seed in range(12):
        instance = generate_instance(seed, "random")
        report = validate_plant(System(instance.plant), max_nodes=4000)
        assert report.ok, f"seed {seed}: {report}"


def test_invariant_locations_have_liveness_escape():
    """Every invariant location keeps an unconditional boundary escape."""
    for seed in range(12):
        spec = generate_instance(seed, "random").spec
        (aut,) = spec.automata
        for loc in aut.locations:
            if loc.invariant is None:
                continue
            escapes = [
                e
                for e in aut.edges
                if e.source == loc.name
                and e.role not in (COMPLEMENT, IGNORE)
                and not e.clock_guard
                and not e.int_guard
                # A saturating assignment would eventually disable the
                # escape (range overflow refuses the move), so the
                # designated escape must carry none.
                and not e.assign
                and (e.sync is None or e.sync.endswith("!"))
            ]
            assert escapes, f"seed {seed}: {loc.name} can deadlock at boundary"


def test_urgent_random_family_marks_urgent_locations_with_escapes():
    """Most ``urgent_random`` plants carry urgent locations, and every
    urgent location keeps an unconditional output escape (no urgent
    timelock, per ``check_urgent_escapes``)."""
    with_urgent = 0
    for seed in range(20):
        instance = generate_instance(seed, "urgent_random")
        (aut,) = instance.spec.automata
        urgents = [loc for loc in aut.locations if loc.urgent]
        with_urgent += bool(urgents)
        for loc in urgents:
            assert loc.invariant is None  # urgency already freezes delay
            assert not loc.committed
            escapes = [
                e
                for e in aut.edges
                if e.source == loc.name
                and not e.clock_guard
                and not e.int_guard
                and not e.assign
                and e.sync
                and e.sync.endswith("!")
            ]
            assert escapes, f"seed {seed}: urgent {loc.name} can timelock"
        assert check_urgent_escapes(System(instance.plant)).ok
    assert with_urgent >= 16  # the family must actually exercise urgency


def test_urgent_random_family_plants_satisfy_test_hypotheses():
    for seed in range(12):
        instance = generate_instance(seed, "urgent_random")
        report = validate_plant(System(instance.plant), max_nodes=4000)
        assert report.ok, f"seed {seed}: {report}"


def test_broadcast_family_structure():
    """Publisher/subscriber shape: one broadcast channel, all receiving
    edges clock-guard-free (the model-layer broadcast restriction)."""
    relay_seen = False
    for seed in range(20):
        spec = generate_instance(seed, "broadcast").spec
        assert spec.broadcast_channels == ("cast",)
        receivers = [
            edge
            for aut in spec.automata
            for edge in aut.edges
            if edge.sync == "cast?"
        ]
        assert len(receivers) == len(spec.automata) - 1  # every subscriber
        assert all(not e.clock_guard for e in receivers)
        emitters = [
            edge
            for aut in spec.automata
            for edge in aut.edges
            if edge.sync == "cast!"
        ]
        assert len(emitters) == 1
        relay_seen |= any(
            loc.urgent for aut in spec.automata for loc in aut.locations
        )
        # Compiles to a closed arena with a legal initial state.
        System(generate_instance(seed, "broadcast").arena).initial_symbolic()
    assert relay_seen  # some publishers route through the urgent relay


def test_validate_plant_handles_broadcast_plants():
    """Broadcast receive halves are exempt from the determinism and
    input-enabledness obligations (a disabled receiver never blocks and
    parallel receivers are fan-out, not choice), so validation must
    return a clean report instead of crashing or flagging them."""
    for seed in range(8):
        instance = generate_instance(seed, "broadcast")
        report = validate_plant(System(instance.plant), max_nodes=4000)
        assert report.ok, f"seed {seed}: {report}"


def test_conformance_check_runs_on_urgent_plants():
    """The monitors must drive urgent single plants, not skip them."""
    ran = 0
    for seed in range(12):
        report = run_instance_checks(
            generate_instance(seed, "urgent_random"),
            DiffConfig(sim_runs=1, conf_steps=12),
            checks=("conformance",),
        )
        (result,) = report.results
        assert result.status != FAIL, result.detail
        ran += result.status == OK
    assert ran >= 10


def test_entry_resets_protect_invariants():
    for family in ALL_FAMILIES:
        for seed in range(6):
            spec = generate_instance(seed, family).spec
            for aut in spec.automata:
                inv = {
                    loc.name: loc.invariant[0]
                    for loc in aut.locations
                    if loc.invariant
                }
                for edge in aut.edges:
                    clock = inv.get(edge.target)
                    if clock is None or edge.source == edge.target:
                        continue
                    assert clock in edge.resets, (
                        f"{family} seed {seed}: edge {edge.source}->"
                        f"{edge.target} enters an invariant location without"
                        f" resetting {clock}"
                    )


# ----------------------------------------------------------------------
# Determinism regression: seed ⇒ identical artifact
# ----------------------------------------------------------------------

# Bumped for PR 4: generated networks now declare their interface
# partition, which is part of the canonical structural text.
GOLDEN_HASHES = {
    ("random", 0): "784ffe25a7c091cc2b6cd1dd682fe09d3d186669c24c9317fd8848fdf229e595",
    ("chain", 1): "bf5143513e4571d7bf7dee40f0d2b9c1dd210431e07292e8c549027c5fd794cd",
    ("ring", 2): "077e279fbca7899d412c301de4447cb540647508d3c1fc545ae42618e64d8a71",
    ("clientserver", 3): "b3e4ec7fadd4008a75bbaf36665e3c4f8d717abc13deeb644a8d6e86b66177e6",
    ("mutant", 4): "541279f1a67750e020be2a551c41603c9ed9b63c6d34b9d1ee253e1f0079cf20",
    ("broadcast", 5): "2b56436d31777ff5ef815168cd67cf1caf0f5390520c91d0d661692f2e379b1b",
    (
        "urgent_random",
        6,
    ): "9027c3dc4b95c9b9cce9bf5b074bb349b5783539b32317493722683f996f813c",
}


@pytest.mark.parametrize("family,seed", sorted(GOLDEN_HASHES))
def test_structural_hash_is_stable_across_processes(family, seed):
    """Golden hashes pin the seed ⇒ network mapping.

    An intentional generator change may update these constants — but then
    every previously printed reproducing seed changes meaning, so bump
    them consciously.
    """
    assert generate_instance(seed, family).structural_hash() == GOLDEN_HASHES[
        (family, seed)
    ]


def test_same_seed_same_network_and_spec():
    for family in ALL_FAMILIES:
        for seed in (0, 7, 23):
            a = generate_instance(seed, family)
            b = generate_instance(seed, family)
            assert a.spec == b.spec
            assert a.structural_hash() == b.structural_hash()
            assert a.arena.structural_text() == b.arena.structural_text()


def test_different_seeds_differ():
    hashes = {
        generate_instance(seed, "random").structural_hash() for seed in range(16)
    }
    assert len(hashes) >= 15  # collisions would make seeds ambiguous


def test_same_seed_same_verdict():
    for seed in range(6):
        instance = generate_instance(seed, "random")
        again = generate_instance(seed, "random")
        query = parse_query(instance.query)
        first = TwoPhaseSolver(System(instance.arena), query).solve()
        second = TwoPhaseSolver(System(again.arena), query).solve()
        third = OnTheFlySolver(System(again.arena), query).solve()
        assert first.winning == second.winning == third.winning


def test_generate_batch_round_robin():
    batch = generate_batch(6, seed=100, families=("chain", "ring"))
    assert [i.family for i in batch] == ["chain", "ring"] * 3
    assert [i.seed for i in batch] == [100, 101, 102, 103, 104, 105]
    # Batch membership is reproducible one instance at a time.
    solo = generate_instance(103, "ring")
    assert solo.structural_hash() == batch[3].structural_hash()


def test_config_scaling_changes_sizes():
    small = generate_instance(5, "random", GenConfig().scaled(max_locations=3))
    big = generate_instance(5, "random", GenConfig().scaled(max_locations=9))
    assert len(small.spec.automata[0].locations) <= 3
    # Same seed, different knobs: a different (but still deterministic) net.
    assert small.structural_hash() != big.structural_hash()


# ----------------------------------------------------------------------
# Differential checks
# ----------------------------------------------------------------------


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_differential_checks_pass_per_family(family):
    cfg = DiffConfig(sim_runs=1, sim_steps=20, conf_steps=15)
    for seed in range(10):
        report = run_instance_checks(generate_instance(seed, family), cfg)
        assert report.ok, (
            f"{family} seed {seed}: "
            + "; ".join(f"{r.name}: {r.detail}" for r in report.failures)
        )


def test_campaign_smoke():
    summary = run_campaign(
        count=10,
        seed=2024,
        diff_config=DiffConfig(sim_runs=1, sim_steps=15, conf_steps=10),
        zone_trials=5,
    )
    assert summary.ok, summary.format()
    counts = summary.counts()
    assert counts["solvers"][OK] == 10
    assert counts["semantics"][FAIL] == 0
    text = summary.format()
    assert "no disagreements" in text


@pytest.mark.parametrize(
    "family", ["random", "chain", "ring", "clientserver", "broadcast"]
)
def test_conformance_check_runs_on_every_family(family):
    """The oracle must actually run — never skip — on non-mutant plants.

    Multi-automaton families (chain/ring/clientserver/broadcast) go
    through the partial-composition semantics and the state-set monitors;
    the seed-era "multi-automaton plant" skip is gone.
    """
    for seed in range(8):
        report = run_instance_checks(
            generate_instance(seed, family),
            DiffConfig(sim_runs=1, conf_steps=12),
            checks=("conformance",),
        )
        (result,) = report.results
        assert result.status == OK, f"seed {seed}: {result.status} {result.detail}"


def test_zone_algebra_clean():
    for seed in range(4):
        assert check_zone_algebra(random.Random(seed), trials=12) == []


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------


def test_shrinker_minimizes_failing_instance():
    """With a synthetic size-triggered failure the shrinker must reach the
    smallest edge count that still fails, preserving seed and validity."""

    def fake_check(instance, cfg):
        edges = sum(len(a.edges) for a in instance.spec.automata)
        instance.arena  # must still build
        if edges >= 4:
            return CheckResult("fake", FAIL, f"{edges} edges")
        return CheckResult("fake", OK)

    CHECKS["fake"] = fake_check
    try:
        instance = generate_instance(3, "random")
        before = sum(len(a.edges) for a in instance.spec.automata)
        assert before > 4
        shrunk = shrink_instance(instance, "fake")
        after = sum(len(a.edges) for a in shrunk.spec.automata)
        assert after == 4
        assert shrunk.seed == instance.seed
        shrunk.arena.structural_hash()  # still a valid, buildable model
    finally:
        del CHECKS["fake"]


def test_shrinker_keeps_passing_instance_untouched():
    instance = generate_instance(1, "chain")
    shrunk = shrink_instance(instance, "solvers", DiffConfig(sim_runs=1))
    assert shrunk.spec == instance.spec


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_smoke(capsys):
    from repro.gen.cli import main

    code = main(
        ["--count", "6", "--seed", "0", "--zone-trials", "4", "--steps", "12"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "no disagreements found" in out


def test_cli_rejects_unknown_family():
    from repro.gen.cli import main

    with pytest.raises(SystemExit):
        main(["--families", "nosuch"])
