"""Unit and property tests for federations (repro.dbm.federation)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbm import DBM, Federation, le, lt, subtract_zone

from tests.zone_strategies import DIM, box, federations, points, zones




def interval(lo, hi, dim=2):
    return box(dim, [(lo, hi)] + [(0, 100)] * (dim - 2))


class TestSubtractZone:
    def test_middle_cut(self):
        pieces = subtract_zone(interval(0, 10), interval(3, 5))
        fed = Federation(2, pieces)
        assert fed.contains([0, Fraction(2)])
        assert fed.contains([0, Fraction(6)])
        assert not fed.contains([0, Fraction(4)])
        # Boundary points belong to the subtrahend.
        assert not fed.contains([0, Fraction(3)])
        assert not fed.contains([0, Fraction(5)])

    def test_disjoint_subtrahend(self):
        pieces = subtract_zone(interval(0, 2), interval(5, 9))
        assert len(pieces) == 1
        assert pieces[0].equals(interval(0, 2))

    def test_covering_subtrahend(self):
        assert subtract_zone(interval(3, 4), interval(0, 10)) == []

    def test_pieces_disjoint(self):
        pieces = subtract_zone(box(3, [(0, 10), (0, 10)]), box(3, [(2, 5), (3, 8)]))
        for i in range(len(pieces)):
            for j in range(i + 1, len(pieces)):
                assert pieces[i].intersect(pieces[j]).is_empty()

    @given(zones(), zones(), points())
    @settings(max_examples=300, deadline=None)
    def test_subtraction_semantics(self, a, b, p):
        fed = Federation(DIM, subtract_zone(a, b))
        assert fed.contains(p) == (a.contains(p) and not b.contains(p))


class TestSetOperations:
    def test_union_contains_both(self):
        f = Federation.from_zone(interval(0, 2)).union_zone(interval(5, 7))
        assert f.contains([0, Fraction(1)])
        assert f.contains([0, Fraction(6)])
        assert not f.contains([0, Fraction(3)])

    def test_union_subsumption_reduces(self):
        f = Federation(2, [interval(0, 10), interval(2, 3)])
        assert len(f) == 1

    def test_intersect(self):
        f1 = Federation(2, [interval(0, 4), interval(8, 12)])
        f2 = Federation(2, [interval(3, 9)])
        meet = f1.intersect(f2)
        assert meet.contains([0, Fraction(7, 2)])
        assert meet.contains([0, Fraction(17, 2)])
        assert not meet.contains([0, Fraction(6)])

    def test_subtract_federation(self):
        whole = Federation.from_zone(interval(0, 10))
        holes = Federation(2, [interval(2, 3), interval(6, 7)])
        rest = whole.subtract(holes)
        assert rest.contains([0, Fraction(1)])
        assert rest.contains([0, Fraction(5)])
        assert not rest.contains([0, Fraction(13, 2)])

    def test_complement_within(self):
        f = Federation.from_zone(interval(3, 5))
        comp = f.complement_within(DBM.universal(2))
        assert comp.contains([0, Fraction(2)])
        assert not comp.contains([0, Fraction(4)])

    @given(federations(), federations(), points())
    @settings(max_examples=250, deadline=None)
    def test_union_semantics(self, f1, f2, p):
        assert f1.union(f2).contains(p) == (f1.contains(p) or f2.contains(p))

    @given(federations(), federations(), points())
    @settings(max_examples=250, deadline=None)
    def test_intersection_semantics(self, f1, f2, p):
        assert f1.intersect(f2).contains(p) == (f1.contains(p) and f2.contains(p))

    @given(federations(), federations(), points())
    @settings(max_examples=250, deadline=None)
    def test_subtraction_semantics(self, f1, f2, p):
        assert f1.subtract(f2).contains(p) == (f1.contains(p) and not f2.contains(p))


class TestInclusion:
    def test_includes_exact_nonconvex(self):
        # [0,10] covers the union [0,4] ∪ [4,10] even across the seam.
        parts = Federation(2, [interval(0, 4), interval(4, 10)])
        whole = Federation.from_zone(interval(0, 10))
        assert whole.includes(parts)
        assert parts.includes(whole)
        assert parts.equals(whole)

    def test_not_includes_with_gap(self):
        parts = Federation(2, [interval(0, 3), interval(5, 10)])
        whole = Federation.from_zone(interval(0, 10))
        assert whole.includes(parts)
        assert not parts.includes(whole)

    @given(federations(), federations())
    @settings(max_examples=150, deadline=None)
    def test_inclusion_sound_on_samples(self, f1, f2):
        if f2.includes(f1):
            for zone in f1.zones:
                assert f2.contains(zone.sample())


class TestTimedOperators:
    def test_down_union(self):
        f = Federation(2, [interval(5, 6), interval(9, 10)])
        d = f.down()
        assert d.contains([0, Fraction(0)])
        assert d.contains([0, Fraction(8)])
        assert not d.contains([0, Fraction(11)])

    def test_up(self):
        f = Federation.from_zone(interval(2, 3))
        assert f.up().contains([0, Fraction(50)])

    def test_reset(self):
        f = Federation.from_zone(interval(5, 6)).reset([1])
        assert f.contains([0, Fraction(0)])
        assert not f.contains([0, Fraction(5)])


class TestCompact:
    def test_compact_merges_cover(self):
        f = Federation(2, [interval(0, 4), interval(4, 10), interval(0, 10)])
        compacted = f.compact()
        assert len(compacted) == 1
        assert compacted.equals(f)

    def test_compact_drops_seam_covered_zone(self):
        # [2,3] is covered by [0,4] alone, dropped by pairwise reduction;
        # [0,4] and [4,10] jointly cover [3,5] only via the union.
        f = Federation(2, [interval(0, 4), interval(4, 10), interval(3, 5)])
        compacted = f.compact()
        assert compacted.equals(f)
        assert len(compacted) == 2

    @given(federations())
    @settings(max_examples=100, deadline=None)
    def test_compact_preserves_set(self, f):
        assert f.compact().equals(f)


class TestMisc:
    def test_empty_federation(self):
        f = Federation.empty(2)
        assert f.is_empty()
        assert not f
        assert f.sample() is None

    def test_sample_in_federation(self):
        f = Federation(2, [interval(3, 4)])
        assert f.contains(f.sample())

    def test_hash_key_stable_under_order(self):
        f1 = Federation(2, [interval(0, 1), interval(5, 6)])
        f2 = Federation(2, [interval(5, 6), interval(0, 1)])
        assert f1.hash_key() == f2.hash_key()

    def test_to_string_empty(self):
        assert Federation.empty(2).to_string() == "false"

    def test_to_string_union(self):
        f = Federation(2, [interval(0, 1), interval(5, 6)])
        assert "||" in f.to_string(["0", "x"])
