"""The online test server: protocol, clocks, registry, and loopback runs.

The load-bearing property is *verdict parity*: the network server and
the in-process executor are two drivers over the same sans-IO session,
so a loopback run of a simulated implementation must produce exactly the
in-process verdict/reason/trace — for every generator family, including
the INCONCLUSIVE-on-EstimateLimit path.  On top of that: wire robustness
(malformed, truncated, oversized, out-of-order frames cost one session,
never the server), the global state budget with LRU eviction, and
per-session op-counter scoping.
"""

import asyncio
from fractions import Fraction

import pytest

from repro.gen.networks import DEFAULT_FAMILIES, generate_instance
from repro.semantics.system import System
from repro.server import (
    IUTClient,
    ServerConfig,
    TestServer,
    run_remote_test,
)
from repro.server.clocks import RealTimeClock, VirtualClock, make_clock
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_delay,
    encode_frame,
    parse_delay,
    updates_from_wire,
    updates_to_wire,
)
from repro.server.registry import SessionRegistry, SpecResolver
from repro.testing import (
    EagerPolicy,
    LazyPolicy,
    RandomPolicy,
    SessionConfig,
    SimulatedImplementation,
    execute_test,
)


def sync(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Protocol units
# ----------------------------------------------------------------------


class TestProtocol:
    def test_frame_roundtrip(self):
        frame = {"type": "wait", "deadline": "5/2", "session": 3}
        assert decode_frame(encode_frame(frame).rstrip(b"\n")) == frame

    def test_delay_roundtrip(self):
        for d in (Fraction(0), Fraction(7), Fraction(3, 2)):
            assert parse_delay(encode_delay(d)) == d

    def test_delay_rejects_junk(self):
        for bad in (1.5, None, "abc", "-1", "1/0", ["1"]):
            with pytest.raises(ProtocolError):
                parse_delay(bad)

    def test_decode_rejects_non_objects(self):
        for bad in (b"[1,2]", b'"x"', b"42", b"{}", b'{"type": 3}'):
            with pytest.raises(ProtocolError):
                decode_frame(bad)

    def test_decode_rejects_oversized(self):
        huge = encode_frame({"type": "x", "pad": "y" * MAX_FRAME_BYTES})
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(huge)

    def test_updates_roundtrip(self):
        updates = [("flag", None, 1), ("buf", 2, 7)]
        assert updates_from_wire(updates_to_wire(updates)) == updates
        assert updates_from_wire(None) == []

    def test_updates_reject_junk(self):
        for bad in ("x", [["a", 0]], [["a", "b", 1]], [[1, None, 2]]):
            with pytest.raises(ProtocolError):
                updates_from_wire(bad)


class TestClocks:
    def test_make_clock(self):
        assert isinstance(make_clock("virtual"), VirtualClock)
        assert isinstance(make_clock("realtime"), RealTimeClock)
        with pytest.raises(ValueError):
            make_clock("warped")

    def test_virtual_passthrough(self):
        async def recv():
            return {"type": "quiet", "delay": "1"}

        frame = sync(VirtualClock().observe(recv, Fraction(1)))
        assert frame == {"type": "quiet", "delay": "1"}

    def test_virtual_timeout_guard(self):
        async def never():
            await asyncio.sleep(30)

        clock = VirtualClock(observe_timeout=0.01)
        with pytest.raises(ProtocolError, match="no wait frame"):
            sync(clock.observe(never, Fraction(1)))

    def test_realtime_synthesizes_quiet(self):
        async def never():
            await asyncio.sleep(30)

        clock = RealTimeClock(timescale=0.01)
        frame = sync(clock.observe(never, Fraction(2)))
        assert frame == {"type": "quiet", "delay": "2"}

    def test_realtime_stamps_output(self):
        async def fast():
            return {"type": "output", "delay": "999", "label": "a"}

        clock = RealTimeClock(timescale=0.05, resolution=Fraction(1))
        frame = sync(clock.observe(fast, Fraction(10)))
        # The client's claimed delay is ignored; the stamp is measured
        # (instant here) and quantized to the resolution grid.
        assert frame["label"] == "a"
        assert parse_delay(frame["delay"]) == 0

    def test_quantize_clamps(self):
        clock = RealTimeClock(timescale=1.0, resolution=Fraction(1, 2))
        assert clock._quantize(0.77, Fraction(10)) == Fraction(1)
        assert clock._quantize(99.0, Fraction(3)) == Fraction(3)
        assert clock._quantize(-0.1, Fraction(3)) == Fraction(0)


# ----------------------------------------------------------------------
# Registry units
# ----------------------------------------------------------------------


class TestRegistry:
    def test_admit_release(self):
        reg = SessionRegistry(max_sessions=4, max_total_states=100)
        h = reg.admit(lambda reason: None)
        assert len(reg) == 1 and reg.total_states == 1
        reg.release(h)
        assert len(reg) == 0 and reg.total_states == 0
        assert reg.stats.finished == 1

    def test_session_cap_evicts_lru(self):
        evicted = []
        reg = SessionRegistry(max_sessions=2, max_total_states=100)
        a = reg.admit(lambda r: evicted.append(("a", r)))
        b = reg.admit(lambda r: evicted.append(("b", r)))
        reg.touch(a, 1)  # a is now more recent than b
        reg.admit(lambda r: evicted.append(("c", r)))
        assert [name for name, _ in evicted] == ["b"]
        assert "session cap" in evicted[0][1]
        assert b.evicted is not None

    def test_state_budget_evicts_lru(self):
        evicted = []
        reg = SessionRegistry(max_sessions=10, max_total_states=10)
        a = reg.admit(lambda r: evicted.append("a"))
        b = reg.admit(lambda r: evicted.append("b"))
        reg.touch(a, 4)
        reg.touch(b, 4)  # total 8, fits
        assert reg.total_states == 8
        reg.touch(b, 9)  # total 13 > 10: a (LRU) goes
        assert evicted == ["a"]
        assert reg.total_states == 9

    def test_offender_backpressured(self):
        evicted = []
        reg = SessionRegistry(max_sessions=10, max_total_states=10)
        a = reg.admit(lambda r: evicted.append(("a", r)))
        reg.touch(a, 50)  # alone over budget: the offender is cut
        assert [name for name, _ in evicted] == ["a"]
        assert "budget" in evicted[0][1]
        assert len(reg) == 0

    def test_touch_after_eviction_is_noop(self):
        reg = SessionRegistry(max_sessions=10, max_total_states=10)
        a = reg.admit(lambda r: None)
        reg.touch(a, 50)
        reg.touch(a, 3)  # already gone; must not resurrect
        assert len(reg) == 0 and reg.total_states == 0

    def test_resolver_caches(self):
        resolver = SpecResolver()
        b1 = resolver.resolve({"model": "smartlight"})
        b2 = resolver.resolve({"model": "smartlight"})
        assert b1 is b2
        assert len(resolver) == 1

    def test_resolver_rejects_junk(self):
        resolver = SpecResolver()
        for bad in (
            {"model": "nope"},
            {"family": "random"},
            {"seed": "x"},
            {},
            "smartlight",
        ):
            with pytest.raises(ProtocolError):
                resolver.resolve(bad)


# ----------------------------------------------------------------------
# Loopback harness
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def server_state():
    """One started server shared by the loopback tests.

    Each test talks to it over fresh connections; sharing the resolver
    across tests also exercises cross-session bundle reuse.
    """
    loop = asyncio.new_event_loop()
    server = TestServer(ServerConfig())
    loop.run_until_complete(server.start())
    yield loop, server
    loop.run_until_complete(server.close())
    loop.close()


def loopback(server_state, imp, spec, *, config=None, profile=False):
    loop, server = server_state
    host, port = server.address

    async def go():
        async with await IUTClient.connect(host, port) as client:
            return await client.run_session(
                imp, spec, config=config, profile=profile
            )

    return loop.run_until_complete(go())


def make_imp(instance, policy):
    return SimulatedImplementation(System(instance.plant), policy)


PARITY_SEEDS = (0, 1, 2)


class TestVerdictParity:
    @pytest.mark.parametrize("family", DEFAULT_FAMILIES)
    def test_family_parity(self, server_state, family):
        """Loopback verdict == in-process verdict, per family, fixed seeds."""
        _, server = server_state
        for seed in PARITY_SEEDS:
            spec = {"family": family, "seed": seed}
            instance = generate_instance(seed, family)
            bundle = server.resolver.resolve(spec)
            for policy in (EagerPolicy(), RandomPolicy(seed & 0xFFFF)):
                fresh = (
                    RandomPolicy(seed & 0xFFFF)
                    if isinstance(policy, RandomPolicy)
                    else EagerPolicy()
                )
                local = execute_test(
                    bundle.strategy, bundle.plant, make_imp(instance, policy)
                )
                frame = loopback(
                    server_state, make_imp(instance, fresh), spec
                )
                assert frame["type"] == "verdict", frame
                assert frame["verdict"] == local.verdict
                assert frame["reason"] == local.reason
                assert frame["iterations"] == local.iterations
                assert frame["trace"] == str(local.trace)

    def test_estimate_limit_parity(self, server_state):
        """A blown state-estimate budget is INCONCLUSIVE on both paths."""
        _, server = server_state
        spec = {"family": "chain", "seed": 0}
        instance = generate_instance(0, "chain")
        bundle = server.resolver.resolve(spec)
        tiny = SessionConfig(max_states=1)
        local = execute_test(
            bundle.strategy,
            bundle.plant,
            make_imp(instance, EagerPolicy()),
            config=tiny,
        )
        assert local.verdict == "inconclusive"
        assert "state-estimate budget" in local.reason
        frame = loopback(
            server_state, make_imp(instance, EagerPolicy()), spec, config=tiny
        )
        assert frame["verdict"] == local.verdict
        assert frame["reason"] == local.reason
        assert frame["iterations"] == local.iterations == 0

    def test_smartlight_all_policies(self, server_state):
        from repro.models.smartlight import smartlight_plant

        _, server = server_state
        spec = {"model": "smartlight"}
        bundle = server.resolver.resolve(spec)
        for policy_factory in (
            EagerPolicy,
            LazyPolicy,
            lambda: RandomPolicy(11),
        ):
            local = execute_test(
                bundle.strategy,
                bundle.plant,
                SimulatedImplementation(
                    System(smartlight_plant()), policy_factory()
                ),
            )
            frame = loopback(
                server_state,
                SimulatedImplementation(
                    System(smartlight_plant()), policy_factory()
                ),
                spec,
            )
            assert (frame["verdict"], frame["reason"], frame["trace"]) == (
                local.verdict,
                local.reason,
                str(local.trace),
            )

    def test_sequential_sessions_one_connection(self, server_state):
        from repro.models.smartlight import smartlight_plant

        loop, server = server_state
        host, port = server.address

        async def go():
            async with await IUTClient.connect(host, port) as client:
                out = []
                for policy in (EagerPolicy(), LazyPolicy()):
                    imp = SimulatedImplementation(
                        System(smartlight_plant()), policy
                    )
                    out.append(
                        await client.run_session(imp, {"model": "smartlight"})
                    )
                return out

        frames = loop.run_until_complete(go())
        assert [f["verdict"] for f in frames] == ["pass", "pass"]
        # Distinct sessions, not one recycled
        assert frames[0]["session"] != frames[1]["session"]


# ----------------------------------------------------------------------
# Wire robustness: one bad peer never hurts the server or its neighbours
# ----------------------------------------------------------------------


def raw_exchange(server_state, payloads):
    """Open a raw connection, ship raw bytes, return all reply lines."""
    loop, server = server_state
    host, port = server.address

    async def go():
        reader, writer = await asyncio.open_connection(host, port)
        for payload in payloads:
            writer.write(payload)
            await writer.drain()
        writer.write_eof()
        lines = []
        while True:
            line = await reader.readline()
            if not line:
                break
            lines.append(decode_frame(line.rstrip(b"\n")))
        writer.close()
        return lines

    return loop.run_until_complete(go())


class TestWireRobustness:
    def check_alive(self, server_state):
        from repro.models.smartlight import smartlight_plant

        imp = SimulatedImplementation(System(smartlight_plant()), EagerPolicy())
        frame = loopback(server_state, imp, {"model": "smartlight"})
        assert frame["verdict"] == "pass"

    def test_malformed_json(self, server_state):
        (reply,) = raw_exchange(server_state, [b"this is not json\n"])
        assert reply["type"] == "error"
        assert "malformed" in reply["message"]
        self.check_alive(server_state)

    def test_truncated_frame(self, server_state):
        (reply,) = raw_exchange(server_state, [b'{"type":"hel'])
        assert reply["type"] == "error"
        self.check_alive(server_state)

    def test_oversized_frame(self, server_state):
        blob = b'{"type":"hello","pad":"' + b"x" * (MAX_FRAME_BYTES + 64)
        (reply,) = raw_exchange(server_state, [blob + b'"}\n'])
        assert reply["type"] == "error"
        assert "exceeds" in reply["message"]
        self.check_alive(server_state)

    def test_out_of_order_frames(self, server_state):
        (reply,) = raw_exchange(
            server_state,
            [encode_frame({"type": "output", "delay": "1", "label": "x"})],
        )
        assert reply["type"] == "error"
        assert "hello" in reply["message"]
        self.check_alive(server_state)

    def test_wrong_answer_to_wait(self, server_state):
        replies = raw_exchange(
            server_state,
            [
                encode_frame(
                    {"type": "hello", "spec": {"model": "smartlight"}}
                ),
                encode_frame({"type": "input-result", "accepted": True}),
            ],
        )
        # ready, the first wait, then the protocol error
        assert replies[0]["type"] == "ready"
        assert replies[-1]["type"] == "error"
        self.check_alive(server_state)

    def test_delay_beyond_deadline(self, server_state):
        replies = raw_exchange(
            server_state,
            [
                encode_frame(
                    {"type": "hello", "spec": {"model": "smartlight"}}
                ),
                encode_frame({"type": "quiet", "delay": "99999"}),
            ],
        )
        assert replies[-1]["type"] == "error"
        assert "deadline" in replies[-1]["message"]
        self.check_alive(server_state)

    def test_bad_spec_is_session_local(self, server_state):
        (reply,) = raw_exchange(
            server_state,
            [encode_frame({"type": "hello", "spec": {"model": "nope"}})],
        )
        assert reply["type"] == "error"
        self.check_alive(server_state)

    def test_bad_peer_does_not_corrupt_neighbour(self, server_state):
        """A session poisoned mid-run leaves a concurrent one untouched."""
        from repro.models.smartlight import smartlight_plant

        loop, server = server_state
        host, port = server.address

        async def bad_peer():
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                encode_frame(
                    {"type": "hello", "spec": {"model": "smartlight"}}
                )
            )
            await reader.readline()  # ready
            await reader.readline()  # first server frame
            writer.write(b"garbage mid-session\n")
            line = await reader.readline()
            writer.close()
            return decode_frame(line.rstrip(b"\n"))

        async def good_peer():
            imp = SimulatedImplementation(
                System(smartlight_plant()), LazyPolicy()
            )
            async with await IUTClient.connect(host, port) as client:
                return await client.run_session(imp, {"model": "smartlight"})

        async def both():
            return await asyncio.gather(bad_peer(), good_peer())

        bad, good = loop.run_until_complete(both())
        assert bad["type"] == "error"
        assert good["verdict"] == "pass"


# ----------------------------------------------------------------------
# Budget, eviction, concurrency, counter scoping
# ----------------------------------------------------------------------


def hold_session(host, port):
    """Open a session and park it on its first wait (never answer)."""

    async def go():
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            encode_frame({"type": "hello", "spec": {"model": "smartlight"}})
        )
        await reader.readline()  # ready
        await reader.readline()  # first wait
        return reader, writer

    return go


class TestAdmissionControl:
    def test_lru_eviction_over_the_wire(self):
        async def go():
            server = TestServer(
                ServerConfig(max_sessions=2, state_budget=1000)
            )
            await server.start()
            try:
                host, port = server.address
                r1, w1 = await hold_session(host, port)()
                r2, w2 = await hold_session(host, port)()
                # Third session: the first (LRU) one must be evicted.
                r3, w3 = await hold_session(host, port)()
                line = await asyncio.wait_for(r1.readline(), timeout=5)
                frame = decode_frame(line.rstrip(b"\n"))
                for w in (w1, w2, w3):
                    w.close()
                return frame, server.registry.stats.evicted
            finally:
                await server.close()

        frame, evicted = sync(go())
        assert frame["type"] == "verdict"
        assert frame["verdict"] == "inconclusive"
        assert frame.get("evicted") is True
        assert evicted == 1

    def test_state_budget_eviction_over_the_wire(self):
        async def go():
            # chain instances track symbolic estimates; a budget of 3
            # total states forces the older session out as the newer one
            # grows.
            server = TestServer(ServerConfig(state_budget=3))
            await server.start()
            try:
                host, port = server.address
                r1, w1 = await hold_session(host, port)()

                from repro.gen.networks import generate_instance

                instance = generate_instance(0, "chain")
                imp = make_imp(instance, EagerPolicy())
                async with await IUTClient.connect(host, port) as client:
                    frame = await client.run_session(
                        imp, {"family": "chain", "seed": 0}
                    )
                line = await asyncio.wait_for(r1.readline(), timeout=5)
                held = decode_frame(line.rstrip(b"\n"))
                w1.close()
                return held, frame, server.registry.stats.evicted
            finally:
                await server.close()

        held, frame, evicted = sync(go())
        # Either the parked session was evicted (chain grew past the
        # budget) or the runner itself got backpressured — but somebody
        # was, and the server stayed up.
        assert evicted >= 1
        assert held["type"] == "verdict" or frame.get("evicted")

    def test_fifty_concurrent_sessions(self):
        from repro.models.smartlight import smartlight_plant

        async def go():
            server = TestServer(ServerConfig())
            await server.start()
            try:
                host, port = server.address

                async def one(i):
                    imp = SimulatedImplementation(
                        System(smartlight_plant()), RandomPolicy(i)
                    )
                    async with await IUTClient.connect(host, port) as client:
                        return await client.run_session(
                            imp, {"model": "smartlight"}
                        )

                frames = await asyncio.gather(*(one(i) for i in range(50)))
                return frames, server.stats()
            finally:
                await server.close()

        frames, stats = sync(go())
        assert len(frames) == 50
        assert all(f["type"] == "verdict" for f in frames)
        assert all(f["verdict"] == "pass" for f in frames)
        assert stats["started"] == 50
        assert stats["finished"] == 50
        assert stats["bundles"] == 1  # one shared strategy, 50 sessions

    def test_profile_counter_scoping(self):
        """Per-session profiles capture that session's symbolic ops."""

        async def go():
            server = TestServer(ServerConfig())
            await server.start()
            try:
                host, port = server.address
                instance = generate_instance(0, "chain")

                async def one():
                    imp = make_imp(instance, EagerPolicy())
                    async with await IUTClient.connect(host, port) as client:
                        return await client.run_session(
                            imp,
                            {"family": "chain", "seed": 0},
                            profile=True,
                        )

                return await asyncio.gather(one(), one())
            finally:
                await server.close()

        frames = sync(go())
        for frame in frames:
            assert frame["type"] == "verdict"
            profile = frame["profile"]
            # chain plants run under the symbolic estimate: DBM/zone ops
            # must have been charged to this session's own profile.
            assert profile, "estimated-monitor session produced no ops"
            assert all(v > 0 for v in profile.values())
        # Two sessions over the same spec do identical work: equal
        # profiles prove no cross-session leakage under interleaving.
        assert frames[0]["profile"] == frames[1]["profile"]


class TestRunRemoteTest:
    def test_sync_wrapper(self):
        from repro.models.smartlight import smartlight_plant

        async def serve():
            server = TestServer(ServerConfig())
            await server.start()
            return server

        loop = asyncio.new_event_loop()
        server = loop.run_until_complete(serve())
        try:
            host, port = server.address

            def run_client():
                imp = SimulatedImplementation(
                    System(smartlight_plant()), EagerPolicy()
                )
                return run_remote_test(
                    (host, port), imp, {"model": "smartlight"}
                )

            import threading

            out = {}
            t = threading.Thread(
                target=lambda: out.update(frame=run_client())
            )
            t.start()
            deadline = loop.time() + 10
            while t.is_alive() and loop.time() < deadline:
                loop.run_until_complete(asyncio.sleep(0.01))
            t.join(timeout=1)
            assert out["frame"]["verdict"] == "pass"
        finally:
            loop.run_until_complete(server.close())
            loop.close()
