"""Urgent-location semantics: delay freeze, no priority, monitor settling.

The defined rules under test (see ``repro.semantics.system``):

* urgent locations freeze delay exactly like committed ones (``d = 0`` is
  the only legal delay) — in the concrete, symbolic, and game semantics;
* unlike committed locations they grant **no** move priority;
* the tioco/rtioco monitors settle urgent states as follows: internal
  moves without an observable competitor resolve silently; an urgent
  state offering an observable output at the frozen instant is *settled*
  (quiescence bound 0) and resolves through ``observe`` — an urgent
  location with only sync edges no longer strands the monitor.
"""

from fractions import Fraction

import pytest

from repro.semantics.system import System
from repro.ta.builder import NetworkBuilder
from repro.ta.validate import check_input_enabledness, check_urgent_escapes
from repro.tctl import parse_query
from repro.game import OnTheFlySolver, TwoPhaseSolver
from repro.testing import (
    RelativizedMonitor,
    SimulatedImplementation,
    TiocoMonitor,
)


def sync_only_plant(*, urgent=True, internal_escape=False):
    """``Idle --kick?--> U --beep!--> Done`` with U optionally urgent.

    ``internal_escape`` replaces the beep edge by an internal one (the
    committed-style processing shape).
    """
    net = NetworkBuilder("plant")
    net.clock("x")
    net.input_channel("kick")
    net.output_channel("beep")
    p = net.automaton("P")
    p.location("Idle", initial=True)
    p.location("U", urgent=urgent)
    p.location("Done")
    p.edge("Idle", "U", sync="kick?", assign="x := 0")
    p.edge("U", "Done", sync=None if internal_escape else "beep!")
    for loc in ("U", "Done"):
        p.edge(loc, loc, sync="kick?")
    return net.build()


def composed():
    net = NetworkBuilder("arena")
    net.clock("x")
    net.input_channel("kick")
    net.output_channel("beep")
    p = net.automaton("P")
    p.location("Idle", initial=True)
    p.location("U", urgent=True)
    p.location("Done")
    p.edge("Idle", "U", sync="kick?", assign="x := 0")
    p.edge("U", "Done", sync="beep!")
    for loc in ("U", "Done"):
        p.edge(loc, loc, sync="kick?")
    env = net.automaton("ENV")
    env.location("e", initial=True)
    env.edge("e", "e", sync="kick!")
    env.edge("e", "e", sync="beep?")
    return net.build()


# ----------------------------------------------------------------------
# Core semantics: delay freeze without priority
# ----------------------------------------------------------------------


def test_urgent_blocks_delay_in_all_semantics():
    system = System(sync_only_plant())
    state = system.initial_concrete()
    (kick,) = [
        m
        for m, _ in system.enabled_now(state, open_system=True, directions=("input",))
        if m.label == "kick" and m.edges[0][1].target == "U"
    ]
    state = system.fire(state, kick)
    assert not system.can_delay(state.locs)
    assert system.has_urgent(state.locs)
    assert not system.has_committed(state.locs)
    assert system.max_delay(state) == (Fraction(0), False)
    assert system.delay_ok(state, Fraction(0))
    assert not system.delay_ok(state, Fraction(1, 2))
    # Symbolically: delay closure is the identity on urgent states.
    sym = system.initial_symbolic()
    post = system.post(sym, kick)
    closed = system.delay_closure(post)
    assert closed.zone.to_string() == post.zone.to_string()


def test_urgent_grants_no_move_priority():
    def arena(flag):
        net = NetworkBuilder("prio")
        net.output_channel("o1", "o2")
        a = net.automaton("A")
        a.location("a0", initial=True, **flag)
        a.location("a1")
        a.edge("a0", "a1", sync="o1!")
        b = net.automaton("B")
        b.location("b0", initial=True)
        b.location("b1")
        b.edge("b0", "b1", sync="o2!")
        env = net.automaton("ENV")
        env.location("e", initial=True)
        env.edge("e", "e", sync="o1?")
        env.edge("e", "e", sync="o2?")
        return System(net.build())

    urgent_sys = arena({"urgent": True})
    state = urgent_sys.initial_concrete()
    labels = sorted(
        m.label for m in urgent_sys.moves_from(state.locs, state.vars)
    )
    assert labels == ["o1", "o2"]  # urgent: every enabled move stays enabled

    committed_sys = arena({"committed": True})
    state = committed_sys.initial_concrete()
    labels = sorted(
        m.label for m in committed_sys.moves_from(state.locs, state.vars)
    )
    assert labels == ["o1"]  # committed: only the committed automaton moves


# ----------------------------------------------------------------------
# Monitors: the ROADMAP stranding case
# ----------------------------------------------------------------------


def test_tioco_monitor_not_stranded_by_sync_only_urgent_location():
    monitor = TiocoMonitor(System(sync_only_plant()))
    assert monitor.observe("kick", "input")
    # Settled *at* the urgent location, with the output still observable.
    assert monitor.spec.has_urgent(monitor.state.locs)
    quiescence = monitor.max_quiescence()
    assert quiescence.bound == 0 and not quiescence.strict
    assert monitor.allowed_outputs() == ["beep"]
    assert monitor.advance(Fraction(0))
    assert monitor.observe("beep", "output")
    assert monitor.ok


def test_tioco_monitor_rejects_quiescence_in_urgent_state():
    monitor = TiocoMonitor(System(sync_only_plant()))
    assert monitor.observe("kick", "input")
    assert not monitor.advance(Fraction(1))
    assert "forces an action" in monitor.violation


def test_tioco_monitor_settles_internal_urgent_processing():
    monitor = TiocoMonitor(System(sync_only_plant(internal_escape=True)))
    assert monitor.observe("kick", "input")
    # The internal move has no observable competitor: settled through it.
    assert not monitor.spec.has_urgent(monitor.state.locs)
    assert monitor.max_quiescence().bound is None
    assert monitor.ok


def test_rtioco_monitor_not_stranded_by_urgent_location():
    system = System(composed())
    monitor = RelativizedMonitor(system)
    (kick,) = [
        m
        for m, _ in system.enabled_now(monitor.state, directions=("input",))
        if m.edges[0][1].target == "U" or m.edges[1][1].target == "U"
    ]
    assert monitor.observe_move(kick)
    assert system.has_urgent(monitor.state.locs)
    assert monitor.max_quiescence().bound == 0
    assert monitor.allowed_outputs() == ["beep"]
    assert not monitor.advance(Fraction(2))  # quiescence impossible
    monitor.reset()
    assert monitor.observe_move(kick)
    assert monitor.observe_output("beep")
    assert monitor.ok


def test_simulated_implementation_fires_immediately_when_urgent():
    imp = SimulatedImplementation(System(sync_only_plant()))
    assert imp.give_input("kick")
    scheduled = imp.next_output()
    assert scheduled is not None
    assert scheduled.delay == 0
    assert imp.advance(Fraction(0)) == "beep"


# ----------------------------------------------------------------------
# Game solving: urgency forces the opponent
# ----------------------------------------------------------------------


@pytest.mark.parametrize("urgent,expected", [(True, True), (False, False)])
def test_urgent_location_forces_plant_output(urgent, expected):
    """Without an invariant the plant may stay quiescent forever in U, so
    the reachability game is lost; making U urgent freezes delay and
    forces the (only) uncontrollable move — the controller wins."""
    net = NetworkBuilder("force")
    net.input_channel("kick")
    net.output_channel("beep")
    p = net.automaton("P")
    p.location("Idle", initial=True)
    p.location("U", urgent=urgent)
    p.location("Goal")
    p.edge("Idle", "U", sync="kick?")
    p.edge("U", "Goal", sync="beep!")
    env = net.automaton("ENV")
    env.location("e", initial=True)
    env.edge("e", "e", sync="kick!")
    env.edge("e", "e", sync="beep?")
    query = parse_query("control: A<> P.Goal")
    two = TwoPhaseSolver(System(net.build()), query).solve()
    otf = OnTheFlySolver(System(net.build()), query).solve()
    assert two.winning == otf.winning == expected


# ----------------------------------------------------------------------
# Pre-flight validation
# ----------------------------------------------------------------------


@pytest.mark.parametrize("guard", ["x >= 3", "v == 1"])
def test_check_urgent_escapes_flags_timelock(guard):
    """Clock-guarded AND integer-guarded escapes both count as blockable:
    an urgent location whose only edge is conditionally enabled can
    freeze time forever (e.g. ``v == 1`` when v is 0)."""
    net = NetworkBuilder("timelock")
    net.clock("x")
    net.int_var("v", 0, 1, 0)
    net.output_channel("late")
    p = net.automaton("P")
    p.location("U", initial=True, urgent=True)
    p.location("Done")
    p.edge("U", "Done", sync="late!", guard=guard)
    report = check_urgent_escapes(System(net.build()))
    assert not report.ok
    assert report.issues[0].kind == "urgent-timelock"


def test_check_urgent_escapes_accepts_unguarded_edge():
    report = check_urgent_escapes(System(sync_only_plant()))
    assert report.ok


def test_input_refusal_at_urgent_location_is_detected():
    """Urgent states are observable waiting points under the settling
    rule, so the static input-enabledness check must cover them: a plant
    refusing an input at an urgent location is flagged (the monitors
    would punish it at runtime)."""
    net = NetworkBuilder("refusal")
    net.input_channel("kick")
    net.output_channel("beep")
    p = net.automaton("P")
    p.location("Idle", initial=True)
    p.location("U", urgent=True)
    p.location("Done")
    p.edge("Idle", "U", sync="kick?")
    p.edge("U", "Done", sync="beep!")  # no kick? edge at U
    p.edge("Done", "Done", sync="kick?")
    report = check_input_enabledness(System(net.build()))
    assert not report.ok
    assert any(issue.kind == "input-refusal" for issue in report.issues)
    # The input-enabled variant used everywhere else passes.
    assert check_input_enabledness(System(sync_only_plant())).ok
