"""Warm-start solving: win-set serialization, cache, and mutant repair.

The serialization property here is the load-bearing one: the on-disk
cache stores federations in minimal-constraint form, and a single lossy
round-trip would silently corrupt every restored fixpoint.  The cache
tests pin the counter protocol (hit/miss/store/mismatch) the benchmarks
and the ``warmstart`` differential check rely on.
"""

import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbm import DBM, le
from repro.game import TwoPhaseSolver, warm_solve, warm_solve_mutant
from repro.game.warm import (
    WinSetCache,
    effective_caps,
    federation_from_obj,
    federation_to_obj,
    joint_caps,
    minimal_constraints,
    resolve_cache,
    zone_from_obj,
    zone_to_obj,
)
from repro.gen.networks import generate_instance
from repro.models.smartlight import smartlight_network, smartlight_plant
from repro.semantics.system import System
from repro.tctl import parse_query
from repro.testing.mutants import MutantSpec
from repro.util import counters

from tests.zone_strategies import DIM, big_federations, diagonal_zones, zones

QUERY = "control: A<> IUT.Bright"


def _counts():
    return {
        k: v for k, v in counters.snapshot().items()
        if k.startswith("solver.warm_")
    }


def _win_map(result):
    return {
        (node.sym.locs, node.sym.vars, node.sym.zone.hash_key()):
            entry.win.hash_key()
        for node in result.graph.nodes
        for entry in [result.wins.get(node.id)]
        if entry is not None and not entry.win.is_empty()
    }


# ---------------------------------------------------------------------------
# Minimal-constraint serialization
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(zones())
def test_zone_roundtrip_exact(zone):
    if zone.is_empty():
        return
    obj = zone_to_obj(zone)
    assert zone_from_obj(zone.dim, obj).hash_key() == zone.hash_key()


@settings(max_examples=100, deadline=None)
@given(diagonal_zones())
def test_diagonal_zone_roundtrip_exact(zone):
    if zone.is_empty():
        return
    obj = zone_to_obj(zone)
    assert zone_from_obj(zone.dim, obj).hash_key() == zone.hash_key()


@settings(max_examples=100, deadline=None)
@given(zones())
def test_minimal_constraints_no_larger_than_nontrivial(zone):
    if zone.is_empty():
        return
    assert len(minimal_constraints(zone)) <= len(zone.nontrivial_constraints())


@settings(max_examples=100, deadline=None)
@given(big_federations())
def test_federation_roundtrip_exact(fed):
    obj = federation_to_obj(fed)
    back = federation_from_obj(fed.dim, obj)
    assert back.hash_key() == fed.hash_key()
    # JSON round-trip too: the disk format is json.dump(obj).
    import json

    again = federation_from_obj(fed.dim, json.loads(json.dumps(obj)))
    assert again.hash_key() == fed.hash_key()


def test_all_clocks_equal_zone_roundtrips():
    """The zero-cycle collapse regression: x1 = x2 = x3 (all equal)."""
    zone = DBM.universal(DIM)
    for i in range(1, DIM - 1):
        zone = zone.tighten(i, i + 1, le(0)).tighten(i + 1, i, le(0))
    assert not zone.is_empty()
    obj = zone_to_obj(zone)
    assert zone_from_obj(DIM, obj).hash_key() == zone.hash_key()


# ---------------------------------------------------------------------------
# Cache hit/miss counter protocol
# ---------------------------------------------------------------------------


def test_cache_miss_then_memo_hit_then_restore_hit(tmp_path):
    counters.reset()
    cache = WinSetCache(str(tmp_path / "warm"))
    system = System(smartlight_network())

    cold = warm_solve(system, QUERY, cache=cache)
    after_miss = _counts()
    assert after_miss.get("solver.warm_misses") == 1
    assert after_miss.get("solver.warm_stores") == 1
    assert not after_miss.get("solver.warm_hits")

    memo = warm_solve(system, QUERY, cache=cache)
    after_memo = _counts()
    assert memo is cold  # the installed-result memo returns the object
    assert after_memo.get("solver.warm_hits") == 1
    assert after_memo.get("solver.warm_result_hits") == 1

    cache.forget_results()
    restored = warm_solve(system, QUERY, cache=cache)
    after_restore = _counts()
    assert restored is not cold
    assert after_restore.get("solver.warm_hits") == 2
    assert after_restore.get("solver.warm_result_hits") == 1  # unchanged
    assert after_restore.get("solver.warm_misses") == 1  # unchanged
    assert restored.winning == cold.winning
    assert _win_map(restored) == _win_map(cold)


def test_cross_process_restore_via_fresh_cache_object(tmp_path):
    counters.reset()
    directory = str(tmp_path / "warm")
    system = System(smartlight_network())
    cold = warm_solve(system, QUERY, cache=WinSetCache(directory))

    fresh = WinSetCache(directory)  # simulates a new worker process
    restored = warm_solve(system, QUERY, cache=fresh)
    assert _counts().get("solver.warm_hits") == 1
    assert restored.winning == cold.winning
    assert _win_map(restored) == _win_map(cold)


def test_memory_only_cache_needs_no_directory():
    cache = WinSetCache()
    system = System(smartlight_network())
    first = warm_solve(system, QUERY, cache=cache)
    assert warm_solve(system, QUERY, cache=cache) is first
    assert len(cache) == 1


def test_warm_off_env_forces_cold(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_WARM_OFF", "1")
    counters.reset()
    cache = WinSetCache(str(tmp_path / "warm"))
    system = System(smartlight_network())
    result = warm_solve(system, QUERY, cache=cache)
    assert result.winning
    assert not _counts()  # no warm counters: pure cold path
    assert len(cache) == 0


def test_resolve_cache_accepts_path_object_and_none(tmp_path):
    assert resolve_cache(None) is None
    cache = WinSetCache()
    assert resolve_cache(cache) is cache
    built = resolve_cache(str(tmp_path / "dir"))
    assert isinstance(built, WinSetCache)
    assert built.directory == str(tmp_path / "dir")


def test_corrupt_disk_entry_falls_back_to_cold(tmp_path):
    counters.reset()
    directory = str(tmp_path / "warm")
    system = System(smartlight_network())
    cache = WinSetCache(directory)
    warm_solve(system, QUERY, cache=cache)
    caps = effective_caps(system, parse_query(QUERY))
    key = WinSetCache.key_for(system.network, parse_query(QUERY), caps)
    path = cache._path(key)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"format": 999}')

    fresh = WinSetCache(directory)
    result = warm_solve(system, QUERY, cache=fresh)
    assert result.winning
    assert _counts().get("solver.warm_mismatches") == 1


# ---------------------------------------------------------------------------
# Warm ≡ cold
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("family,seed", [("clientserver", 7), ("ring", 3)])
def test_warm_equals_cold_on_generated(family, seed, tmp_path):
    instance = generate_instance(seed, family)
    system = System(instance.arena)
    query = parse_query(instance.query)
    cold = TwoPhaseSolver(system, query).solve()
    cache = WinSetCache(str(tmp_path / "warm"))
    warm_solve(System(instance.arena), query, cache=cache)  # populate
    cache.forget_results()
    warm = warm_solve(System(instance.arena), query, cache=cache)
    assert warm.winning == cold.winning
    assert _win_map(warm) == _win_map(cold)


# ---------------------------------------------------------------------------
# Mutant fixpoint repair
# ---------------------------------------------------------------------------

MUTANTS = [
    MutantSpec.make(
        "late-L6", "widen_invariant", "L6 two units late", True,
        automaton="IUT", location="L6", delta=2,
    ),
    MutantSpec.make(
        "threshold-off", "shift_guard_constant", "threshold off by one",
        False, automaton="IUT", source="Off", target="L5", delta=-1,
    ),
    MutantSpec.make(
        "drop-bright", "drop_edge", "L6 never answers", True,
        automaton="IUT", source="L6", sync="bright!",
    ),
]


@pytest.mark.parametrize("spec", MUTANTS, ids=lambda s: s.name)
def test_mutant_repair_equals_cold_at_joint_caps(spec, tmp_path):
    base_net = smartlight_plant()
    mutant_net = spec.build(base_net).network
    footprint = spec.footprint(base_net)
    assert footprint, "smartlight mutants must report a footprint"
    caps = joint_caps(base_net, mutant_net)
    assert caps is not None

    cache = WinSetCache(str(tmp_path / "warm"))
    repaired = warm_solve_mutant(
        System(base_net), System(mutant_net), QUERY, footprint, cache=cache
    )
    cold = TwoPhaseSolver(
        System(mutant_net), parse_query(QUERY), extra_max_consts=caps
    ).solve()
    assert repaired.winning == cold.winning
    assert _win_map(repaired) == _win_map(cold)


def test_mutant_repair_without_footprint_is_cold(tmp_path):
    counters.reset()
    base_net = smartlight_plant()
    spec = MUTANTS[0]
    mutant_net = spec.build(base_net).network
    cache = WinSetCache(str(tmp_path / "warm"))
    result = warm_solve_mutant(
        System(base_net), System(mutant_net), QUERY, None, cache=cache
    )
    assert _counts().get("solver.warm_mutant_cold") == 1
    cold = TwoPhaseSolver(System(mutant_net), parse_query(QUERY)).solve()
    assert result.winning == cold.winning


def test_mutant_repeat_encounter_is_a_cache_hit(tmp_path):
    counters.reset()
    base_net = smartlight_plant()
    spec = MUTANTS[0]
    mutant_net = spec.build(base_net).network
    footprint = spec.footprint(base_net)
    cache = WinSetCache(str(tmp_path / "warm"))
    first = warm_solve_mutant(
        System(base_net), System(mutant_net), QUERY, footprint, cache=cache
    )
    again = warm_solve_mutant(
        System(base_net), System(mutant_net), QUERY, footprint, cache=cache
    )
    assert again is first
    assert _counts().get("solver.warm_result_hits") == 1


# ---------------------------------------------------------------------------
# Footprint contract
# ---------------------------------------------------------------------------


def test_footprints_name_real_locations():
    net = smartlight_plant()
    by_name = {a.name: a for a in net.automata}
    for spec in MUTANTS:
        footprint = spec.footprint(net)
        assert footprint is not None
        for automaton, locations in footprint.items():
            assert automaton in by_name
            assert locations <= set(by_name[automaton].locations)


def test_footprint_of_inapplicable_mutant_is_none():
    spec = MutantSpec.make(
        "ghost", "drop_edge", "no such edge", False,
        automaton="IUT", source="NoSuchLoc", sync="bright!",
    )
    assert spec.footprint(smartlight_plant()) is None


# ---------------------------------------------------------------------------
# SpecResolver in-flight dedupe
# ---------------------------------------------------------------------------


def test_spec_resolver_dedupes_concurrent_builds():
    from repro.server.registry import SpecResolver

    counters.reset()
    resolver = SpecResolver()
    barrier = threading.Barrier(8)
    bundles = []

    def worker():
        barrier.wait()
        bundles.append(resolver.resolve({"model": "smartlight"}))

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(bundles) == 8
    assert all(b is bundles[0] for b in bundles)
    snap = counters.snapshot()
    assert snap.get("server.bundle_builds") == 1
    assert (
        snap.get("server.bundle_waits", 0) + snap.get("server.bundle_hits", 0)
        == 7
    )


def test_spec_resolver_failed_build_is_retried():
    from repro.server.protocol import ProtocolError
    from repro.server.registry import SpecResolver

    resolver = SpecResolver()
    with pytest.raises(ProtocolError):
        resolver.resolve({"model": "no-such-model"})
    # Not cached: a second attempt fails afresh rather than returning a
    # poisoned bundle (and a later valid spec still resolves).
    with pytest.raises(ProtocolError):
        resolver.resolve({"model": "no-such-model"})
    assert resolver.resolve({"model": "smartlight"}).winning


# ---------------------------------------------------------------------------
# CLI default wiring
# ---------------------------------------------------------------------------


def test_cli_warm_cache_defaults():
    from repro.gen.cli import _warm_cache_dir, build_parser

    parser = build_parser()
    plain = parser.parse_args([])
    assert _warm_cache_dir(plain) is None

    with_corpus = parser.parse_args(["--corpus", "c"])
    assert _warm_cache_dir(with_corpus) == os.path.join("c", "warm-cache")

    no_mutations = parser.parse_args(["--corpus", "c", "--mutations", "0"])
    assert _warm_cache_dir(no_mutations) is None

    explicit = parser.parse_args(["--warm-cache", "elsewhere"])
    assert _warm_cache_dir(explicit) == "elsewhere"

    disabled = parser.parse_args(["--corpus", "c", "--no-warm-cache"])
    assert _warm_cache_dir(disabled) is None
