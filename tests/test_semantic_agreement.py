"""Symbolic and concrete semantics must agree.

Random concrete runs of the Smart Light and LEP systems are mirrored
symbolically: after any concrete run, the reached valuation must lie in
the zone of the corresponding symbolic path, and enabledness of moves
must match between ``enabled_interval`` (concrete) and nonempty ``post``
(symbolic).  This pins the two halves of `repro.semantics` — and
therefore the solver and the executor — to each other.
"""

import random
from fractions import Fraction

import pytest

from repro.models.lep import lep_network
from repro.models.smartlight import smartlight_network
from repro.semantics.state import SymbolicState
from repro.semantics.system import System


def random_run(system, seed, steps=12):
    """A random concrete run; returns [(state, move-or-delay), ...]."""
    rng = random.Random(seed)
    state = system.initial_concrete()
    history = [state]
    for _ in range(steps):
        moves = system.moves_from(state.locs, state.vars)
        enabled = []
        for move in moves:
            interval = system.enabled_interval(state, move)
            if interval is not None:
                enabled.append((move, interval))
        act = enabled and rng.random() < 0.7
        if act:
            move, interval = rng.choice(enabled)
            at = interval.pick()
            nxt = system.fire(state.delayed(at), move)
            if nxt is None:
                continue
            state = nxt
        else:
            bound, strict = system.max_delay(state)
            d = Fraction(rng.randint(1, 4), 2)
            if bound is not None and d > bound:
                d = bound
            state = state.delayed(d)
        history.append(state)
    return history


MODELS = [
    ("smartlight", smartlight_network),
    ("lep3", lambda: lep_network(3)),
]


@pytest.mark.parametrize("name,factory", MODELS)
@pytest.mark.parametrize("seed", range(6))
def test_concrete_runs_stay_in_reachable_zones(name, factory, seed):
    """Every concrete state reached lies inside some simulation-graph
    node's zone for its discrete state."""
    from repro.graph import SimulationGraph

    system = System(factory())
    graph = SimulationGraph(system)
    graph.explore_all()
    by_key = {}
    for node in graph.nodes:
        by_key.setdefault(node.key, []).append(node)
    for state in random_run(system, seed):
        candidates = by_key.get(state.key, [])
        assert any(
            node.zone.contains(state.clocks) for node in candidates
        ), f"{name}: concrete state escaped all zones at {state.locs}"


@pytest.mark.parametrize("name,factory", MODELS)
@pytest.mark.parametrize("seed", range(6))
def test_enabledness_matches_symbolic_post(name, factory, seed):
    """If a move fires concretely, the symbolic post from a zone
    containing the state is nonempty — and vice versa for zero-delay."""
    system = System(factory())
    for state in random_run(system, seed, steps=8):
        sym = SymbolicState(
            state.locs, state.vars, _point_zone(system, state)
        )
        for move in system.moves_from(state.locs, state.vars):
            interval = system.enabled_interval(state, move)
            fires_now = interval is not None and interval.contains(Fraction(0))
            post = system.post(sym, move)
            assert fires_now == (post is not None), (
                f"{name}: concrete/symbolic enabledness mismatch on"
                f" {move.label} at {state}"
            )


def _point_zone(system, state):
    """The singleton zone {clocks} — valuations are half-integers, so we
    use the doubled-constants trick: constrain x_i - x_j both ways with
    the exact rational difference if integral, else bracket by strict
    bounds half a unit apart (sound for enabledness because all model
    constants are integers)."""
    from repro.dbm import DBM

    dim = system.dim
    zone = DBM.universal(dim)
    for i in range(1, dim):
        vi = state.clocks[i]
        if vi.denominator == 1:
            zone = zone.constrained(
                [(i, 0, (vi.numerator << 1) | 1), (0, i, ((-vi.numerator) << 1) | 1)]
            )
        else:  # strictly between adjacent integers
            lo = vi.numerator // vi.denominator
            zone = zone.constrained(
                [(i, 0, (lo + 1) << 1), (0, i, (-lo) << 1)]
            )
    for i in range(1, dim):
        for j in range(1, dim):
            if i == j:
                continue
            diff = state.clocks[i] - state.clocks[j]
            if diff.denominator == 1:
                zone = zone.tighten(i, j, (diff.numerator << 1) | 1)
            else:
                hi = diff.numerator // diff.denominator + 1
                zone = zone.tighten(i, j, hi << 1)
    assert zone.contains(state.clocks)
    return zone
