"""Randomized checks of the paper's Theorems 10 and 11.

* **Soundness (Thm 10)**: if a test run fails, the implementation does
  not tioco-conform.  Contrapositive check: conforming implementations
  (the spec under arbitrary output policies and arbitrary sub-windows)
  never produce a fail verdict.
* **Partial completeness (Thm 11)**: an implementation that violates
  tioco *on the behaviour the purpose steers into* yields a failing run.
  We check it on a family of purpose-relevant mutants.

Conforming-but-restricted implementations deserve care: tioco allows the
IMP's behaviour to be a *subset* of the spec's (fewer outputs, narrower
timing), so we also test implementations whose windows are narrowed.
"""

from fractions import Fraction

import pytest

from repro.game import Strategy, solve_reachability_game
from repro.models.smartlight import smartlight_network, smartlight_plant
from repro.semantics.system import System
from repro.tctl import parse_query
from repro.testing import (
    EagerPolicy,
    LazyPolicy,
    QuiescentPolicy,
    RandomPolicy,
    SimulatedImplementation,
    execute_test,
)
from repro.testing.mutants import (
    shift_guard_constant,
    swap_output_channel,
    widen_invariant,
)
from repro.testing.trace import FAIL, PASS


@pytest.fixture(scope="module")
def bright_strategy():
    composed = System(smartlight_network())
    res = solve_reachability_game(
        composed, parse_query("control: A<> IUT.Bright"), on_the_fly=False
    )
    return Strategy(res)


@pytest.fixture(scope="module")
def spec_plant():
    return System(smartlight_plant())


class TestSoundness:
    """No conforming implementation may ever fail (Thm 10)."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_conforming_runs_never_fail(
        self, bright_strategy, spec_plant, seed
    ):
        imp = SimulatedImplementation(
            System(smartlight_plant()), RandomPolicy(seed)
        )
        run = execute_test(bright_strategy, spec_plant, imp)
        assert run.verdict == PASS, f"soundness violated: {run}"

    def test_narrowed_timing_still_conforms(self, bright_strategy, spec_plant):
        """An IMP that answers strictly faster than required is a tioco
        refinement (its traces are a subset) and must pass."""
        narrowed = widen_invariant(smartlight_plant(), "IUT", "L1", -1)
        for policy in (EagerPolicy(), LazyPolicy()):
            imp = SimulatedImplementation(System(narrowed), policy)
            run = execute_test(bright_strategy, spec_plant, imp)
            assert run.verdict == PASS, str(run)

    def test_output_subset_conforms(self, bright_strategy, spec_plant):
        """An IMP that always picks dim! in L5 (dropping the bright!
        option) still conforms — output choice belongs to the plant."""
        from repro.testing.mutants import drop_edge

        restricted = drop_edge(
            smartlight_plant(), automaton="IUT", source="L5", sync="bright!"
        )
        imp = SimulatedImplementation(System(restricted), EagerPolicy())
        run = execute_test(bright_strategy, spec_plant, imp)
        assert run.verdict == PASS, str(run)


class TestPartialCompleteness:
    """Purpose-relevant tioco violations are exposed (Thm 11)."""

    def test_wrong_output_on_path_caught(self, bright_strategy, spec_plant):
        mutant = swap_output_channel(
            smartlight_plant(), "off", automaton="IUT", source="L1", sync="dim!"
        )
        imp = SimulatedImplementation(System(mutant), EagerPolicy())
        run = execute_test(bright_strategy, spec_plant, imp)
        assert run.verdict == FAIL

    def test_late_output_on_path_caught(self, bright_strategy, spec_plant):
        mutant = widen_invariant(smartlight_plant(), "IUT", "L6", +3)
        imp = SimulatedImplementation(System(mutant), LazyPolicy())
        run = execute_test(bright_strategy, spec_plant, imp)
        assert run.verdict == FAIL

    def test_early_touch_acceptance_matters(self, bright_strategy, spec_plant):
        """A mutant that misclassifies the idle threshold produces the
        L5-outputs in a state the spec would call L1: caught only when
        the strategy exercises the boundary; the quick strategy does not,
        so we check with a purpose that does."""
        composed = System(smartlight_network())
        res = solve_reachability_game(
            composed,
            parse_query("control: A<> IUT.Bright && x >= 0"),
            on_the_fly=False,
        )
        strategy = Strategy(res)
        mutant = shift_guard_constant(
            smartlight_plant(), -15, automaton="IUT", source="Off", target="L1"
        )
        # Guard Off->L1 becomes x < Tidle - 15 = x < 5; the mutant refuses
        # ... no: with both guards shifted the input is refused between
        # 5 and 20 only if Off->L5's guard is shifted too; here only L1's
        # is, so the mutant refuses touch in [5, 20): input-enabledness
        # violation caught at execution time.
        mutant = shift_guard_constant(
            mutant, 0, automaton="IUT", source="Off", target="L1"
        )
        imp = SimulatedImplementation(System(mutant), EagerPolicy())
        run = execute_test(strategy, spec_plant, imp)
        # The strategy touches at z >= 1 (x ~ 1 < 5): inside the mutant's
        # remaining window, so this particular strategy may still pass;
        # both outcomes are legitimate for an off-path fault, but a fail
        # may only be a real violation (checked by the monitor reason).
        if run.verdict == FAIL:
            assert "refused" in run.reason or "allowed" in run.reason

    @pytest.mark.parametrize("seed", range(6))
    def test_mutant_detection_independent_of_policy(
        self, bright_strategy, spec_plant, seed
    ):
        """The wrong-output mutant is caught whatever its timing policy:
        the fault sits on the only path the strategy permits."""
        mutant = swap_output_channel(
            smartlight_plant(), "off", automaton="IUT", source="L1", sync="dim!"
        )
        imp = SimulatedImplementation(System(mutant), RandomPolicy(seed))
        run = execute_test(bright_strategy, spec_plant, imp)
        # The L1 path is only taken when the plant answers dim/off from
        # L1; if the random policy routes through L6/bright instead, the
        # fault is dodged. Fail or pass, but never a crash or a bogus
        # verdict string.
        assert run.verdict in (FAIL, PASS)
        if run.verdict == FAIL:
            assert "not allowed" in run.reason or "refused" in run.reason


class TestVerdictStability:
    def test_identical_runs_identical_verdicts(self, bright_strategy, spec_plant):
        traces = set()
        for _ in range(3):
            imp = SimulatedImplementation(
                System(smartlight_plant()), RandomPolicy(11)
            )
            run = execute_test(bright_strategy, spec_plant, imp)
            traces.add(str(run))
        assert len(traces) == 1
