"""Tests for symbolic and concrete semantics (repro.semantics.system)."""

from fractions import Fraction

import pytest

from repro.dbm import Federation
from repro.semantics.state import ConcreteState
from repro.semantics.system import System
from repro.ta import NetworkBuilder


def ping_pong():
    """Two automata synchronizing on ping (input) / pong (output)."""
    net = NetworkBuilder("pingpong")
    net.clock("x", "y")
    net.int_var("count", 0, 100)
    net.input_channel("ping")
    net.output_channel("pong")

    left = net.automaton("L")
    left.location("idle", initial=True)
    left.location("busy", invariant="x <= 3")
    left.edge("idle", "busy", guard="x >= 1", sync="ping?", assign="x := 0")
    left.edge("busy", "idle", guard="x >= 1", sync="pong!", assign="count := count + 1")

    right = net.automaton("R")
    right.location("go", initial=True)
    right.edge("go", "go", sync="ping!", assign="y := 0")
    right.edge("go", "go", sync="pong?")
    return net.build()


def open_plant():
    net = NetworkBuilder("open")
    net.clock("c")
    net.input_channel("inp")
    net.output_channel("out")
    a = net.automaton("P")
    a.location("s", initial=True)
    a.location("t", invariant="c <= 2")
    a.edge("s", "t", sync="inp?", assign="c := 0")
    a.edge("t", "s", guard="c >= 1", sync="out!")
    return net.build()


class TestMoves:
    def test_sync_pair_found(self):
        sys_ = System(ping_pong())
        init = sys_.initial_symbolic()
        moves = sys_.moves_from(init.locs, init.vars)
        assert [m.label for m in moves] == ["ping"]
        assert moves[0].direction == "input"
        assert moves[0].controllable

    def test_no_self_sync(self):
        # L's pong! may not sync with an edge of L itself.
        sys_ = System(ping_pong())
        locs = (1, 0)  # L.busy, R.go
        moves = sys_.moves_from(locs, sys_.decls.initial_state())
        pongs = [m for m in moves if m.label == "pong"]
        assert len(pongs) == 1
        involved = {a_idx for a_idx, _ in pongs[0].edges}
        assert involved == {0, 1}

    def test_open_moves(self):
        sys_ = System(open_plant())
        init = sys_.initial_symbolic()
        moves = sys_.open_moves_from(init.locs, init.vars)
        assert [(m.label, m.direction) for m in moves] == [("inp", "input")]


class TestSymbolicPost:
    def test_post_applies_guard_reset_invariant(self):
        sys_ = System(ping_pong())
        init = sys_.initial_symbolic()
        move = sys_.moves_from(init.locs, init.vars)[0]
        post = sys_.post(init, move)
        assert post is not None
        # x reset; zone satisfies target invariant x <= 3.
        names = sys_.network.clock_names()
        assert "x" in names
        assert post.locs == (1, 0)
        # Both x (L's reset) and y (R's reset) are zero after the sync.
        assert post.zone.contains([0, Fraction(0), Fraction(0)])
        assert not post.zone.contains([0, Fraction(0), Fraction(1)])
        assert not post.zone.contains([0, Fraction(2), Fraction(2)])

    def test_post_disabled_when_guard_unsatisfiable(self):
        sys_ = System(ping_pong())
        init = sys_.initial_symbolic()
        move = sys_.moves_from(init.locs, init.vars)[0]
        # Shrink the zone to x == 0 (guard needs x >= 1).
        from repro.dbm import DBM
        from repro.semantics.state import SymbolicState

        tight = SymbolicState(init.locs, init.vars, DBM.zero(sys_.dim))
        assert sys_.post(tight, move) is None

    def test_vars_updated_on_move(self):
        sys_ = System(ping_pong())
        init = sys_.initial_symbolic()
        ping = sys_.moves_from(init.locs, init.vars)[0]
        mid = sys_.delay_closure(sys_.post(init, ping))
        pong = [m for m in sys_.moves_from(mid.locs, mid.vars) if m.label == "pong"][0]
        after = sys_.post(mid, pong)
        count_var = sys_.decls.int_vars["count"]
        assert after.vars[count_var.slot] == 1

    def test_delay_closure_respects_invariant(self):
        sys_ = System(ping_pong())
        init = sys_.initial_symbolic()
        move = sys_.moves_from(init.locs, init.vars)[0]
        post = sys_.delay_closure(sys_.post(init, move))
        assert post.zone.contains([0, Fraction(3), Fraction(3)])
        assert not post.zone.contains([0, Fraction(7, 2), Fraction(7, 2)])


class TestPred:
    def test_pred_inverts_post(self):
        sys_ = System(ping_pong())
        init = sys_.initial_symbolic()
        move = sys_.moves_from(init.locs, init.vars)[0]
        post = sys_.delay_closure(sys_.post(init, move))
        back = sys_.pred(init, move, Federation.from_zone(post.zone))
        # Every init state with x >= 1 can take the move into the target.
        assert back.contains([0, Fraction(1), Fraction(1)])
        assert back.contains([0, Fraction(10), Fraction(10)])
        assert not back.contains([0, Fraction(1, 2), Fraction(1, 2)])

    def test_pred_of_empty_is_empty(self):
        sys_ = System(ping_pong())
        init = sys_.initial_symbolic()
        move = sys_.moves_from(init.locs, init.vars)[0]
        assert sys_.pred(init, move, Federation.empty(sys_.dim)).is_empty()


class TestConcrete:
    def test_initial(self):
        sys_ = System(ping_pong())
        state = sys_.initial_concrete()
        assert state.clocks == (Fraction(0), Fraction(0), Fraction(0))

    def test_delayed(self):
        sys_ = System(ping_pong())
        state = sys_.initial_concrete().delayed(Fraction(5, 2))
        assert state.clocks[1] == Fraction(5, 2)
        assert state.clocks[0] == 0

    def test_negative_delay_rejected(self):
        sys_ = System(ping_pong())
        with pytest.raises(ValueError):
            sys_.initial_concrete().delayed(Fraction(-1))

    def test_enabled_interval(self):
        sys_ = System(ping_pong())
        state = sys_.initial_concrete()
        move = sys_.moves_from(state.locs, state.vars)[0]
        interval = sys_.enabled_interval(state, move)
        assert interval.lo == 1 and not interval.lo_strict
        assert interval.hi is None

    def test_enabled_interval_upper_bound_from_invariant(self):
        sys_ = System(open_plant())
        state = sys_.initial_concrete()
        inp = sys_.open_moves_from(state.locs, state.vars)[0]
        mid = sys_.fire(state, inp)
        out = sys_.open_moves_from(mid.locs, mid.vars)[0]
        interval = sys_.enabled_interval(mid, out)
        assert interval.lo == 1
        assert interval.hi == 2 and not interval.hi_strict

    def test_fire_requires_enabledness(self):
        sys_ = System(ping_pong())
        state = sys_.initial_concrete()  # x == 0, guard needs x >= 1
        move = sys_.moves_from(state.locs, state.vars)[0]
        assert sys_.fire(state, move) is None
        assert sys_.fire(state.delayed(Fraction(1)), move) is not None

    def test_fire_resets_clock(self):
        sys_ = System(ping_pong())
        state = sys_.initial_concrete().delayed(Fraction(2))
        move = sys_.moves_from(state.locs, state.vars)[0]
        nxt = sys_.fire(state, move)
        assert nxt.clocks[1] == 0  # x reset by L's receiving edge
        assert nxt.clocks[2] == 0  # y reset by R's emitting edge

    def test_max_delay_unbounded_in_idle(self):
        sys_ = System(ping_pong())
        bound, strict = sys_.max_delay(sys_.initial_concrete())
        assert bound is None

    def test_max_delay_bounded_by_invariant(self):
        sys_ = System(open_plant())
        state = sys_.initial_concrete()
        inp = sys_.open_moves_from(state.locs, state.vars)[0]
        mid = sys_.fire(state, inp)
        bound, strict = sys_.max_delay(mid)
        assert bound == 2 and not strict
        assert sys_.delay_ok(mid, Fraction(2))
        assert not sys_.delay_ok(mid, Fraction(5, 2))


class TestCommitted:
    def make_committed(self):
        net = NetworkBuilder("committed")
        net.clock("x")
        net.int_var("v", 0, 5)
        a = net.automaton("A")
        a.location("s", initial=True)
        a.location("mid", committed=True)
        a.location("t")
        a.edge("s", "mid", controllable=False)
        a.edge("mid", "t", assign="v := 1", controllable=False)
        return System(net.build())

    def test_no_delay_in_committed(self):
        sys_ = self.make_committed()
        assert not sys_.can_delay((1,))
        assert sys_.can_delay((0,))

    def test_max_delay_zero_in_committed(self):
        sys_ = self.make_committed()
        state = ConcreteState((1,), sys_.decls.initial_state(), (Fraction(0), Fraction(0)))
        bound, strict = sys_.max_delay(state)
        assert bound == 0
