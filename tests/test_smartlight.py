"""Tests for the Smart Light case study (paper Fig. 2/3 and Fig. 5)."""

from fractions import Fraction

import pytest

from repro.game import Strategy, Verdictish, solve_reachability_game
from repro.graph import check_reachable
from repro.models.smartlight import (
    TIDLE,
    TSW,
    smartlight_network,
    smartlight_plant,
)
from repro.semantics.system import System
from repro.ta.validate import check_input_enabledness, validate_plant
from repro.tctl import GoalPredicate, parse_query


@pytest.fixture(scope="module")
def composed():
    return System(smartlight_network())


@pytest.fixture(scope="module")
def plant():
    return System(smartlight_plant())


@pytest.fixture(scope="module")
def bright_result(composed):
    return solve_reachability_game(
        composed, parse_query("control: A<> IUT.Bright"), on_the_fly=False
    )


class TestModelShape:
    def test_constants_match_figure(self, composed):
        decls = composed.decls
        assert decls.constants["Tidle"] == TIDLE == 20
        assert decls.constants["Tsw"] == TSW == 4
        assert decls.constants["Treact"] == 1

    def test_three_brightness_levels(self, composed):
        iut = composed.network.automaton("IUT")
        for name in ("Off", "Dim", "Bright"):
            assert name in iut.locations
        # Six transient locations as in Fig. 2.
        for name in ("L1", "L2", "L3", "L4", "L5", "L6"):
            assert name in iut.locations
            assert iut.locations[name].invariant is not None

    def test_channel_partition(self, composed):
        net = composed.network
        assert net.channel_names("input") == ["touch"]
        assert set(net.channel_names("output")) == {"dim", "bright", "off"}

    def test_initially_off(self, composed):
        init = composed.initial_symbolic()
        assert composed.network.location_names(init.locs)[0] == "IUT.Off"


class TestPlantSanity:
    def test_all_levels_reachable(self, plant):
        for loc in ("Dim", "Bright", "Off"):
            goal = GoalPredicate(plant, parse_query(f"E<> IUT.{loc}").predicate)
            assert check_reachable(plant, goal.federation, open_system=True)

    def test_input_enabled(self, plant):
        report = check_input_enabledness(plant)
        assert report.ok, str(report)

    def test_deterministic_and_valid(self, plant):
        report = validate_plant(plant)
        assert report.ok, str(report)


class TestBrightGame:
    def test_purpose_holds(self, bright_result):
        """The paper's running test purpose control: A<> IUT.Bright."""
        assert bright_result.winning

    def test_strategy_exists_and_is_small(self, bright_result):
        strategy = Strategy(bright_result)
        assert 0 < strategy.size <= bright_result.nodes_explored

    def test_strategy_first_move_waits_for_user(self, composed, bright_result):
        # The user TA cannot touch before Treact = 1.
        strategy = Strategy(bright_result)
        decision = strategy.decide(composed.initial_concrete())
        assert decision.kind == Verdictish.WAIT
        assert decision.delay >= 1

    def test_strategy_fires_touch_after_wait(self, composed, bright_result):
        strategy = Strategy(bright_result)
        state = composed.initial_concrete().delayed(Fraction(1))
        decision = strategy.decide(state)
        assert decision.kind == Verdictish.FIRE
        assert decision.move.label == "touch"

    def test_fig5_style_rendering(self, bright_result):
        text = Strategy(bright_result).describe()
        assert "State:" in text
        assert "IUT.Off" in text
        assert "touch" in text

    def test_goal_location_in_strategy_domain(self, bright_result):
        strategy = Strategy(bright_result)
        names = {
            strategy.result.graph.system.network.location_names(ns.node.sym.locs)[0]
            for ns in strategy.per_node.values()
        }
        assert "IUT.Bright" in names


class TestOtherPurposes:
    def test_dim_reachable_game(self, composed):
        res = solve_reachability_game(composed, parse_query("control: A<> IUT.Dim"))
        assert res.winning

    def test_off_trivially_won(self, composed):
        res = solve_reachability_game(composed, parse_query("control: A<> IUT.Off"))
        assert res.winning

    def test_timed_goal(self, composed):
        # Bright within 10 time units of system start is achievable: the
        # quick-touch route (Off -> L1 -> Dim -> L2 -> Bright) needs at
        # most 1 + 2 + 1 + 2 time units.
        res = solve_reachability_game(
            composed, parse_query("control: A<> IUT.Bright && z <= 10")
        )
        assert res.winning

    def test_arrival_resets_make_quick_bright_winnable(self, composed):
        # z is the user's reaction clock and is reset when the user
        # observes bright!, so arrival in Bright always has z == 0.
        res = solve_reachability_game(
            composed, parse_query("control: A<> IUT.Bright && z < 1")
        )
        assert res.winning

    def test_impossible_timed_goal(self, composed):
        # L5's invariant caps Tp at 2: the goal region is unsatisfiable.
        res = solve_reachability_game(
            composed, parse_query("control: A<> IUT.L5 && Tp > 2")
        )
        assert not res.winning
