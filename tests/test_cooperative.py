"""Tests for cooperative testing (repro.game.cooperative) — future work 4.

The canonical setting: the game purpose is NOT winnable (the plant may
always dodge), but a cooperative plant can be steered to the goal.  The
verdict semantics: pass on goal, fail only on tioco violations,
inconclusive when the plant declines to cooperate.
"""

import pytest

from repro.game import CooperativeStrategy, Strategy, Verdictish, solve_cooperative
from repro.game.solver import TwoPhaseSolver, solve_reachability_game
from repro.models.smartlight import smartlight_network, smartlight_plant
from repro.semantics.system import System
from repro.ta import NetworkBuilder
from repro.tctl import parse_query
from repro.testing import (
    EagerPolicy,
    QuiescentPolicy,
    SimulatedImplementation,
    execute_test,
)
from repro.testing.trace import INCONCLUSIVE, PASS


def choice_network():
    """The plant chooses between good! and bad!; goal needs good.

    There is no winning strategy (the plant may always answer bad!), but
    a cooperative plant reaches the goal.
    """
    net = NetworkBuilder("coop")
    net.clock("x")
    net.input_channel("kick")
    net.output_channel("good", "bad")
    p = net.automaton("P")
    p.location("a", initial=True)
    p.location("pend", invariant="x <= 2")
    p.location("goal")
    p.location("back")
    p.edge("a", "pend", sync="kick?", assign="x := 0")
    p.edge("pend", "goal", sync="good!")
    p.edge("pend", "back", sync="bad!")
    p.edge("back", "pend", sync="kick?", assign="x := 0")
    e = net.automaton("E")
    e.location("e", initial=True)
    e.edge("e", "e", sync="kick!")
    e.edge("e", "e", sync="good?")
    e.edge("e", "e", sync="bad?")
    return net.build()


def choice_plant():
    net = NetworkBuilder("coop-plant")
    net.clock("x")
    net.input_channel("kick")
    net.output_channel("good", "bad")
    p = net.automaton("P")
    p.location("a", initial=True)
    p.location("pend", invariant="x <= 2")
    p.location("goal")
    p.location("back")
    p.edge("a", "pend", sync="kick?", assign="x := 0")
    p.edge("pend", "goal", sync="good!")
    p.edge("pend", "back", sync="bad!")
    p.edge("back", "pend", sync="kick?", assign="x := 0")
    return net.build()


class TestCooperativeStrategy:
    def test_game_is_not_winnable(self):
        sys_ = System(choice_network())
        res = solve_reachability_game(sys_, parse_query("control: A<> P.goal"))
        assert not res.winning

    def test_goal_cooperatively_reachable(self):
        sys_ = System(choice_network())
        coop = solve_cooperative(sys_, parse_query("control: A<> P.goal"))
        assert coop.goal_reachable
        assert coop.core is None  # no winning core

    def test_decides_toward_goal(self):
        sys_ = System(choice_network())
        coop = solve_cooperative(sys_, parse_query("control: A<> P.goal"))
        decision = coop.decide(sys_.initial_concrete())
        # First cooperative step: fire or schedule the kick.
        assert decision.kind in (Verdictish.FIRE, Verdictish.WAIT)

    def test_winning_core_used_when_game_won(self):
        sys_ = System(smartlight_network())
        coop = solve_cooperative(sys_, parse_query("control: A<> IUT.Bright"))
        assert coop.core is not None
        decision = coop.decide(sys_.initial_concrete())
        assert decision.kind in (Verdictish.FIRE, Verdictish.WAIT)


class TestCooperativeExecution:
    def run_against(self, policy):
        sys_ = System(choice_network())
        coop = solve_cooperative(sys_, parse_query("control: A<> P.goal"))
        spec = System(choice_plant())
        imp = SimulatedImplementation(System(choice_plant()), policy)
        return execute_test(coop, spec, imp, max_iterations=40)

    def test_cooperative_plant_passes(self):
        # EagerPolicy picks outputs alphabetically: bad < good — so the
        # eager plant answers bad! first, loops, and answers bad again...
        # use a policy that cooperates.
        class GoodPolicy(EagerPolicy):
            def choose(self, state, options, forced_by):
                goods = [o for o in options if o[0].label == "good"]
                return super().choose(state, goods or options, forced_by)

        run = self.run_against(GoodPolicy())
        assert run.verdict == PASS, str(run)

    def test_uncooperative_plant_inconclusive_or_loops(self):
        class BadPolicy(EagerPolicy):
            def choose(self, state, options, forced_by):
                bads = [o for o in options if o[0].label == "bad"]
                return super().choose(state, bads or options, forced_by)

        run = self.run_against(BadPolicy())
        # Never a fail: the plant conforms, it just refuses to cooperate.
        assert run.verdict == INCONCLUSIVE, str(run)
