"""Tests for safety games: ``control: A[] φ`` (repro.game.safety)."""

import pytest

from repro.game import GameError, solve_safety_game
from repro.game.safety import SafetyGameSolver
from repro.semantics.system import System
from repro.ta import NetworkBuilder
from repro.tctl import parse_query


def avoidance_game(trap_guard="w >= 3", save_guard="w >= 1"):
    """The plant moves to a trap from ``trap_guard``; the controller can
    move the game to a safe haven from ``save_guard``."""
    net = NetworkBuilder("avoid")
    net.clock("w")
    net.input_channel("save")
    net.output_channel("spoil")
    p = net.automaton("P")
    p.location("a", initial=True)
    p.location("haven")
    p.location("trap")
    p.edge("a", "haven", guard=save_guard, sync="save?")
    p.edge("a", "trap", guard=trap_guard, sync="spoil!")
    e = net.automaton("E")
    e.location("e", initial=True)
    e.edge("e", "e", sync="save!")
    e.edge("e", "e", sync="spoil?")
    return net.build()


def forced_bad_game():
    """An invariant forces the plant into the trap: nothing to be done."""
    net = NetworkBuilder("doomed")
    net.clock("w")
    net.output_channel("boom")
    p = net.automaton("P")
    p.location("a", invariant="w <= 2", initial=True)
    p.location("trap")
    p.edge("a", "trap", guard="w >= 1", sync="boom!")
    e = net.automaton("E")
    e.location("e", initial=True)
    e.edge("e", "e", sync="boom?")
    return net.build()


class TestSafetyGames:
    def test_controller_can_avoid_trap(self):
        sys_ = System(avoidance_game())
        res = solve_safety_game(sys_, parse_query("control: A[] !P.trap"))
        assert res.winning

    def test_unavoidable_trap(self):
        # The plant can spoil from w >= 0; the controller's save needs
        # w >= 1, and even acting at w == 1 ties with the spoiler.
        sys_ = System(avoidance_game(trap_guard="w >= 0"))
        res = solve_safety_game(sys_, parse_query("control: A[] !P.trap"))
        assert not res.winning

    def test_forced_transition_to_bad(self):
        sys_ = System(forced_bad_game())
        res = solve_safety_game(sys_, parse_query("control: A[] !P.trap"))
        assert not res.winning

    def test_vacuous_safety(self):
        sys_ = System(avoidance_game())
        res = solve_safety_game(sys_, parse_query("control: A[] w >= 0"))
        assert res.winning

    def test_initially_violated(self):
        sys_ = System(avoidance_game())
        res = solve_safety_game(sys_, parse_query("control: A[] P.haven"))
        assert not res.winning

    def test_clock_bound_safety_losing(self):
        # Keeping w <= 5 forever is impossible: time diverges and no edge
        # resets w.
        sys_ = System(avoidance_game())
        res = solve_safety_game(sys_, parse_query("control: A[] w <= 5"))
        assert not res.winning

    def test_safe_sets_within_zones(self):
        from repro.dbm import Federation

        sys_ = System(avoidance_game())
        res = solve_safety_game(sys_, parse_query("control: A[] !P.trap"))
        for node in res.graph.nodes:
            assert Federation.from_zone(node.zone).includes(res.safe_of(node))

    def test_wrong_kind_rejected(self):
        sys_ = System(avoidance_game())
        with pytest.raises(GameError):
            SafetyGameSolver(sys_, parse_query("control: A<> P.haven"))


class TestSmartLightSafety:
    def test_light_never_stuck_longer_than_window(self):
        """The tester can keep the light from ever being Bright —
        by simply never touching long-idle: A[] !IUT.Bright is winnable."""
        from repro.models.smartlight import smartlight_network

        sys_ = System(smartlight_network())
        res = solve_safety_game(sys_, parse_query("control: A[] !IUT.Bright"))
        assert res.winning

    def test_cannot_avoid_all_outputs_after_touch(self):
        """Once touched from Off, some transient location is entered and
        an output is forced: A[] IUT.Off is not winnable... but the
        controller can simply never touch, so it IS winnable."""
        from repro.models.smartlight import smartlight_network

        sys_ = System(smartlight_network())
        res = solve_safety_game(sys_, parse_query("control: A[] IUT.Off"))
        assert res.winning


class TestSafetyStrategy:
    def simulate(self, net_factory, purpose, seed, max_steps=40):
        """Play the safety strategy against a random adversarial plant;
        returns True if the run stayed safe throughout."""
        import random
        from fractions import Fraction

        from repro.game import SafetyStrategy, solve_safety_game
        from repro.game.strategy import Verdictish

        sys_ = System(net_factory())
        res = solve_safety_game(sys_, parse_query(purpose))
        assert res.winning
        strategy = SafetyStrategy(res)
        rng = random.Random(seed)
        state = sys_.initial_concrete()
        for _ in range(max_steps):
            decision = strategy.decide(state)
            if decision.kind == Verdictish.LOST:
                return False
            if decision.kind == Verdictish.FIRE:
                nxt = sys_.fire(state, decision.move)
                if nxt is None:
                    return False
                state = nxt
                continue
            horizon = decision.delay
            bound, _ = sys_.max_delay(state)
            if horizon is None:
                horizon = bound if bound is not None else Fraction(5)
            if bound is not None and horizon > bound:
                horizon = bound
            # Opponent may strike at any legal time before the horizon.
            options = []
            for move in sys_.moves_from(state.locs, state.vars):
                if move.controllable:
                    continue
                interval = sys_.enabled_interval(state, move)
                if interval is None:
                    continue
                at = interval.pick()
                if at <= horizon:
                    options.append((move, at))
            if options and rng.random() < 0.7:
                move, at = rng.choice(options)
                nxt = sys_.fire(state.delayed(at), move)
                if nxt is None:
                    return False
                state = nxt
            else:
                state = state.delayed(horizon)
        return True

    @pytest.mark.parametrize("seed", range(6))
    def test_avoidance_strategy_stays_safe(self, seed):
        assert self.simulate(avoidance_game, "control: A[] !P.trap", seed)

    def test_strategy_requires_won_game(self):
        from repro.game import SafetyStrategy, solve_safety_game

        sys_ = System(forced_bad_game())
        res = solve_safety_game(sys_, parse_query("control: A[] !P.trap"))
        assert not res.winning
        with pytest.raises(ValueError):
            SafetyStrategy(res)

    @pytest.mark.parametrize("seed", range(4))
    def test_traingate_exclusion_strategy(self, seed):
        from repro.models.traingate import exclusion_purpose, traingate_network

        assert self.simulate(
            lambda: traingate_network(2), exclusion_purpose(2), seed, max_steps=25
        )
