"""Differential tests: batched StateEstimate vs the per-zone reference.

PR 5 ported the hidden-move closure of
:class:`repro.semantics.compose.StateEstimate` onto the stacked DBM
kernels (:mod:`repro.dbm.stack`), keeping the original member-at-a-time
code as the ``batch=False`` reference.  These tests drive both
implementations through identical observation sequences on randomly
generated composed plants and assert they agree on every monitor-facing
answer — quiescence bounds, enabled labels, delay/action verdicts
(including rescaled rational delays), the final member *sets* at the
closure fixpoint, and :class:`EstimateLimit` budget overflows — plus the
timed-closure memo regression of the PR (recompute exactly once per
state-set change, counted via ``repro.util.counters``).
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen import generate_instance
from repro.semantics import StateEstimate, System
from repro.semantics.compose import EstimateLimit
from repro.ta.builder import NetworkBuilder
from repro.util import counters

COMPOSED_FAMILIES = ("chain", "ring", "clientserver", "broadcast")

#: Delay denominators the sessions draw from: halves and thirds force
#: integer rescaling, sevenths force a second lcm bump.
DENOMINATORS = (1, 2, 3, 7)


def estimate_pair(plant_system, **kwargs):
    batched = StateEstimate(plant_system, batch=True, batch_min=1, **kwargs)
    scalar = StateEstimate(plant_system, batch=False, **kwargs)
    return batched, scalar


def member_sets(estimate):
    """The state set as a comparable set of (locs, vars, zone key)."""
    return {
        (m.locs, m.vars, m.zone.hash_key()) for m in estimate.states
    }


def assert_agree(batched, scalar, context):
    assert batched.max_quiescence() == scalar.max_quiescence(), context
    for direction in ("input", "output"):
        assert batched.enabled_labels(direction) == scalar.enabled_labels(
            direction
        ), f"{context}: {direction} labels"
    # The pruning subsumption retains the antichain of maximal reachable
    # zones, which is traversal-order independent — so not only the
    # answers but the member sets must coincide.
    assert member_sets(batched) == member_sets(scalar), f"{context}: members"


def drive_session(batched, scalar, draw_step, steps=10):
    """Drive both estimates through one drawn observation sequence."""
    for step in range(steps):
        assert_agree(batched, scalar, f"step {step}")
        outputs = batched.enabled_labels("output")
        inputs = batched.enabled_labels("input")
        kind, payload = draw_step(step, inputs, outputs)
        if kind == "output":
            ok_b = batched.observe(payload, "output")
            ok_s = scalar.observe(payload, "output")
        elif kind == "input":
            ok_b = batched.observe(payload, "input")
            ok_s = scalar.observe(payload, "input")
        else:
            ok_b = batched.advance(payload)
            ok_s = scalar.advance(payload)
        assert ok_b == ok_s, f"step {step}: {kind} {payload} verdicts differ"
        if not ok_b:
            break
    assert_agree(batched, scalar, "final")


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1500),
    family=st.sampled_from(COMPOSED_FAMILIES),
    data=st.data(),
)
def test_batched_estimate_agrees_on_generated_plants(seed, family, data):
    instance = generate_instance(seed, family)
    system = System(instance.plant)
    batched, scalar = estimate_pair(system)

    def draw_step(step, inputs, outputs):
        choices = ["delay"]
        if inputs:
            choices.append("input")
        if outputs:
            choices.append("output")
        kind = data.draw(st.sampled_from(choices), label=f"step{step}")
        if kind == "input":
            return kind, data.draw(st.sampled_from(inputs))
        if kind == "output":
            return kind, data.draw(st.sampled_from(outputs))
        bound, strict = batched.max_quiescence()
        delay = Fraction(
            data.draw(st.integers(min_value=0, max_value=5)),
            data.draw(st.sampled_from(DENOMINATORS)),
        )
        if bound is not None and (delay > bound or (delay == bound and strict)):
            delay = bound / 2 if strict else bound
        return "delay", delay

    drive_session(batched, scalar, draw_step)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1500),
    family=st.sampled_from(COMPOSED_FAMILIES),
)
def test_budget_overflow_agrees(seed, family):
    """Both paths respect the same post-pruning ``max_states`` budget.

    The retained set at the fixpoint is the antichain of maximal
    reachable zones — identical for both traversal orders — so a budget
    strictly below the antichain size must make *both* implementations
    raise :class:`EstimateLimit` (transient retention may peak at
    different moments, but the fixpoint count is what a budget below it
    can never escape).
    """
    instance = generate_instance(seed, family)
    system = System(instance.plant)
    reference = StateEstimate(system, batch=False)
    inputs = reference.enabled_labels("input")
    if inputs:
        reference.observe(inputs[0], "input")
    reference.max_quiescence()  # force the timed closure
    fixpoint_size = len(reference._closure)
    if fixpoint_size < 2:
        return  # budget < 1 is unreachable; nothing to overflow
    budget = fixpoint_size - 1
    for batch in (True, False):
        estimate = StateEstimate(
            system, batch=batch, batch_min=1, max_states=budget
        )
        with pytest.raises(EstimateLimit):
            for label in inputs[:1]:
                estimate.observe(label, "input")
            estimate.max_quiescence()


# ----------------------------------------------------------------------
# Rescaling
# ----------------------------------------------------------------------


def hidden_chain_network():
    """go? -> hidden sync -> fin!, with a real hidden-instant window."""
    net = NetworkBuilder("chain2")
    net.clock("c0", "c1")
    net.input_channel("go")
    net.output_channel("h", "fin")
    net.interface("go", "fin")
    a = net.automaton("A")
    a.location("Idle", initial=True)
    a.location("Busy", "c0 <= 2")
    a.location("Done")
    a.edge("Idle", "Busy", sync="go?", assign="c0 := 0")
    a.edge("Busy", "Done", sync="h!")
    b = net.automaton("B")
    b.location("Wait", initial=True)
    b.location("Hold", "c1 <= 3")
    b.location("End")
    b.edge("Wait", "Hold", sync="h?", assign="c1 := 0")
    b.edge("Hold", "End", sync="fin!", guard="c1 >= 1")
    return net.build()


class TestRescaledDelays:
    def test_rational_delays_agree_through_rescaling(self):
        system = System(hidden_chain_network())
        batched, scalar = estimate_pair(system)
        for estimate in (batched, scalar):
            assert estimate.observe("go", "input")
        for delay in (Fraction(1, 3), Fraction(1, 7), Fraction(5, 6)):
            ok_b = batched.advance(delay)
            ok_s = scalar.advance(delay)
            assert ok_b == ok_s
        assert batched.scale == scalar.scale
        assert batched.scale % 42 == 0
        assert_agree(batched, scalar, "after rescaled delays")

    def test_scale_cap_overflow_agrees(self):
        """Wildly varied denominators overflow both paths identically."""
        primes = (3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)
        outcomes = []
        for batch in (True, False):
            estimate = StateEstimate(
                System(hidden_chain_network()), batch=batch, batch_min=1
            )
            estimate.observe("go", "input")
            try:
                for p in primes:
                    estimate.advance(Fraction(1, p))
                outcomes.append(None)
            except EstimateLimit:
                outcomes.append("limit")
        assert outcomes == ["limit", "limit"]


# ----------------------------------------------------------------------
# Timed-closure memoization (the PR's invalidation fix)
# ----------------------------------------------------------------------


class TestEnabledEarlyExit:
    """``enabled_labels`` existence-only probe (the PR's early-exit path).

    :meth:`StateEstimate._group_enables` answers "is some member's post
    nonempty" without materialising successor zones — batched through
    :func:`repro.dbm.stack.any_hidden_post`, per-zone with a first-survivor
    short-circuit.  The probe must agree move-for-move with the full
    :meth:`_post_group` pipeline, and ``enabled_labels`` must actually run
    it (probe counters up, full-post kernel counter untouched).
    """

    @staticmethod
    def assert_probe_matches_posts(estimate, context):
        system = estimate.system
        for (locs, vars), group in estimate._grouped(estimate.states).items():
            zones = [m.zone for m in group]
            for move in system.moves_from(locs, vars, estimate.mode):
                enabled = estimate._group_enables(locs, vars, zones, move)
                post = estimate._post_group(
                    locs, vars, zones, move, delayed=False
                )
                materialised = post is not None and bool(post[2])
                assert enabled == materialised, (
                    f"{context}: probe={enabled} but full post"
                    f" {'survives' if materialised else 'dies'}"
                    f" on {move.label}"
                )

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1500),
        family=st.sampled_from(COMPOSED_FAMILIES),
    )
    def test_probe_agrees_with_materialised_posts(self, seed, family):
        instance = generate_instance(seed, family)
        system = System(instance.plant)
        for estimate in estimate_pair(system):
            context = f"{family} seed {seed}"
            self.assert_probe_matches_posts(estimate, f"{context} initial")
            inputs = estimate.enabled_labels("input")
            if inputs and estimate.observe(inputs[0], "input"):
                self.assert_probe_matches_posts(
                    estimate, f"{context} after {inputs[0]}?"
                )

    def test_batched_labels_run_the_probe_kernel_not_the_full_post(self):
        estimate = StateEstimate(
            System(hidden_chain_network()), batch=True, batch_min=1
        )
        estimate.observe("go", "input")
        assert estimate.advance(Fraction(1))  # fin! needs c1 >= 1
        counters.reset()
        assert estimate.enabled_labels("output") == ["fin"]
        counts = counters.export()["counts"]
        assert counts.get("estimate.enable_probes_batched", 0) > 0
        assert counts.get("stack.any_posts", 0) > 0
        # The probe never materialises successors: the full-post kernel
        # (and its copy-out) must not have run at all.
        assert counts.get("stack.hidden_posts", 0) == 0
        assert counts.get("estimate.batched_groups", 0) == 0

    def test_scalar_labels_short_circuit_without_the_kernel(self):
        estimate = StateEstimate(
            System(hidden_chain_network()), batch=False
        )
        estimate.observe("go", "input")
        assert estimate.advance(Fraction(1))
        counters.reset()
        assert estimate.enabled_labels("output") == ["fin"]
        counts = counters.export()["counts"]
        assert counts.get("estimate.enable_probes_scalar", 0) > 0
        assert counts.get("stack.any_posts", 0) == 0
        assert counts.get("estimate.scalar_groups", 0) == 0


class TestClosureMemo:
    @pytest.fixture(params=[True, False], ids=["batched", "scalar"])
    def estimate(self, request):
        estimate = StateEstimate(
            System(hidden_chain_network()), batch=request.param, batch_min=1
        )
        estimate.observe("go", "input")
        return estimate

    def closures(self):
        return counters.export()["counts"].get("estimate.timed_closures", 0)

    def test_observing_twice_does_no_extra_closure_work(self, estimate):
        counters.reset()
        first = estimate.max_quiescence()
        assert self.closures() == 1
        assert estimate.max_quiescence() == first
        assert estimate.enabled_labels("output") is not None
        assert self.closures() == 1, "second observation recomputed the closure"

    def test_rescaling_keeps_the_memo(self, estimate):
        counters.reset()
        estimate.max_quiescence()
        assert self.closures() == 1
        # advance() with a new denominator rescales states *and* the
        # memoized closure in place instead of recomputing the fixpoint.
        assert estimate.advance(Fraction(1, 3))
        assert self.closures() == 1
        # The state set changed, so the *next* query recomputes — once.
        estimate.max_quiescence()
        estimate.max_quiescence()
        assert self.closures() == 2

    def test_each_state_change_recomputes_exactly_once(self, estimate):
        counters.reset()
        estimate.max_quiescence()
        assert estimate.advance(Fraction(1))
        estimate.max_quiescence()
        outputs = estimate.enabled_labels("output")
        assert outputs == ["fin"]
        assert estimate.observe("fin", "output")
        estimate.max_quiescence()
        estimate.max_quiescence()
        # Three state sets were queried: initial, after the delay, after
        # the output — three closures, no more.
        assert self.closures() == 3
