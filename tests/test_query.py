"""Tests for TCTL query parsing (repro.tctl.query)."""

import pytest

from repro.expr.parser import ParseError
from repro.tctl import (
    INVARIANT,
    REACH,
    REACH_GAME,
    SAFETY_GAME,
    parse_query,
)


class TestParseQuery:
    def test_control_reachability(self):
        q = parse_query("control: A<> IUT.Bright")
        assert q.kind == REACH_GAME
        assert q.is_game
        assert str(q.predicate) == "IUT.Bright"

    def test_control_safety(self):
        q = parse_query("control: A[] safe == 1")
        assert q.kind == SAFETY_GAME
        assert q.is_game

    def test_plain_reachability(self):
        q = parse_query("E<> x > 3")
        assert q.kind == REACH
        assert not q.is_game

    def test_plain_invariant(self):
        q = parse_query("A[] c <= 2")
        assert q.kind == INVARIANT

    def test_whitespace_tolerance(self):
        q = parse_query("  control:   A <>   IUT.Bright ")
        assert q.kind == REACH_GAME

    def test_paper_tp1(self):
        q = parse_query("control: A<> (IUT.betterInfo == 1) and IUT.forward")
        assert q.kind == REACH_GAME

    def test_paper_tp2(self):
        q = parse_query("control: A<> forall (i : BufferId) (inUse[i] == 1)")
        assert q.kind == REACH_GAME

    def test_paper_tp3(self):
        q = parse_query(
            "control: A<> forall (i : BufferId) (inUse[i] == 1) and IUT.idle"
        )
        assert q.kind == REACH_GAME

    def test_unsupported_form_rejected(self):
        with pytest.raises(ParseError):
            parse_query("A<> eventually")
        with pytest.raises(ParseError):
            parse_query("E[] x > 1")
        with pytest.raises(ParseError):
            parse_query("control: E<> x > 1")

    def test_source_preserved(self):
        text = "control: A<> IUT.Bright"
        assert str(parse_query(text)) == text
