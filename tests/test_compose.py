"""Tests of the partial-composition subsystem.

Covers the interface partition (model layer), partial-move enumeration
(binary / broadcast / committed / urgent interplay), the symbolic state
estimate, and the property that partial composition with an empty
boundary coincides with the flat closed product.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gen import generate_instance
from repro.gen.differential import OK, DiffConfig, check_composition
from repro.graph.explorer import SimulationGraph
from repro.semantics import StateEstimate, System
from repro.semantics.compose import EstimateLimit
from repro.semantics.system import CLOSED, OPEN, PARTIAL
from repro.ta.builder import NetworkBuilder
from repro.ta.model import ModelError


def chain2_network(*, declare_interface: bool = True):
    """Two stages passing a hidden token: go? -> (h, hidden) -> fin!.

    Stage A forwards within 2 time units of ``go``; stage B emits ``fin``
    between 1 and 3 time units after receiving the token.
    """
    net = NetworkBuilder("chain2")
    net.clock("c0", "c1")
    net.input_channel("go")
    net.output_channel("h", "fin")
    if declare_interface:
        net.interface("go", "fin")
    a = net.automaton("A")
    a.location("Idle", initial=True)
    a.location("Busy", "c0 <= 2")
    a.location("Done")
    a.edge("Idle", "Busy", sync="go?", assign="c0 := 0")
    a.edge("Busy", "Done", sync="h!")
    a.edge("Busy", "Busy", sync="go?")
    a.edge("Done", "Done", sync="go?")
    b = net.automaton("B")
    b.location("Wait", initial=True)
    b.location("Hold", "c1 <= 3")
    b.location("End")
    b.edge("Wait", "Hold", sync="h?", assign="c1 := 0")
    b.edge("Hold", "End", sync="fin!", guard="c1 >= 1")
    return net.build()


def broadcast_network(*, internalise: bool = False):
    """A publisher casting to two subscribers over a broadcast channel."""
    net = NetworkBuilder("bcast")
    net.clock("x")
    net.input_channel("go")
    net.broadcast_channel("cast")
    if internalise:
        net.interface("go")
    else:
        net.interface("go", "cast")
    p = net.automaton("P")
    p.location("Idle", initial=True)
    p.location("Sent")
    p.edge("Idle", "Sent", sync="cast!")
    p.edge("Idle", "Idle", sync="go?")
    p.edge("Sent", "Sent", sync="go?")
    for name in ("S0", "S1"):
        s = net.automaton(name)
        s.location("Wait", initial=True)
        s.location("Got")
        s.edge("Wait", "Got", sync="cast?")
    return net.build()


# ----------------------------------------------------------------------
# Interface partition (model layer)
# ----------------------------------------------------------------------


class TestPartition:
    def test_default_boundary_one_sided_and_broadcast(self):
        net = NetworkBuilder("defaults")
        net.clock("x")
        net.input_channel("go")          # one side: P receives
        net.output_channel("h", "fin")   # h pairable, fin one-sided
        net.broadcast_channel("cast")    # always boundary by default
        p = net.automaton("P")
        p.location("l0", initial=True)
        p.location("l1")
        p.edge("l0", "l1", sync="go?")
        p.edge("l0", "l1", sync="h!")
        p.edge("l0", "l1", sync="cast!")
        q = net.automaton("Q")
        q.location("m0", initial=True)
        q.location("m1")
        q.edge("m0", "m1", sync="h?")
        q.edge("m0", "m1", sync="fin!")
        network = net.build()
        assert not network.interface_declared
        assert network.boundary == frozenset({"go", "fin", "cast"})
        assert network.internalised_channels() == frozenset({"h"})

    def test_same_automaton_halves_are_not_pairable(self):
        net = NetworkBuilder("selfsync")
        net.output_channel("c")
        p = net.automaton("P")
        p.location("l0", initial=True)
        p.edge("l0", "l0", sync="c!")
        p.edge("l0", "l0", sync="c?")
        network = net.build()
        # Binary sync needs two distinct automata: c stays at the boundary.
        assert not network.channel_pairable("c")
        assert "c" in network.boundary

    def test_explicit_interface_overrides_default(self):
        network = chain2_network()
        assert network.interface_declared
        assert network.boundary == frozenset({"go", "fin"})
        assert network.internalised_channels() == frozenset({"h"})

    def test_empty_interface_internalises_everything(self):
        net = NetworkBuilder("closedplant")
        net.output_channel("h")
        net.interface()
        p = net.automaton("P")
        p.location("l0", initial=True)
        p.edge("l0", "l0", sync="h!")
        q = net.automaton("Q")
        q.location("m0", initial=True)
        q.edge("m0", "m0", sync="h?")
        network = net.build()
        assert network.interface_declared
        assert network.boundary == frozenset()
        assert network.internalised_channels() == frozenset({"h"})

    def test_unknown_interface_channel_rejected(self):
        net = NetworkBuilder("bad")
        net.output_channel("h")
        net.interface("nope")
        p = net.automaton("P")
        p.location("l0", initial=True)
        with pytest.raises(ModelError, match="undeclared channel"):
            net.build()

    def test_interface_after_prepare_rejected(self):
        network = chain2_network()
        with pytest.raises(ModelError, match="before prepare"):
            network.set_interface(("go",))

    def test_interface_is_part_of_the_structural_hash(self):
        declared = chain2_network(declare_interface=True)
        default = chain2_network(declare_interface=False)
        assert "interface [fin, go]" in declared.structural_text()
        assert declared.structural_hash() != default.structural_hash()


# ----------------------------------------------------------------------
# Partial-move enumeration
# ----------------------------------------------------------------------


def moves_by_label(system, locs, vars, mode):
    table = {}
    for move in system.moves_from(locs, vars, mode):
        table.setdefault(move.label, []).append(move)
    return table


class TestPartialEnumeration:
    def test_internalised_pair_becomes_hidden_move(self):
        system = System(chain2_network())
        locs = (1, 0)  # A.Busy, B.Wait
        vars = ()
        table = moves_by_label(system, locs, vars, PARTIAL)
        (h,) = table["h"]
        assert h.direction == "internal" and not h.observable
        # Both halves participate: emitter first.
        assert [edge.automaton for _, edge in h.edges] == ["A", "B"]

    def test_boundary_halves_fire_alone(self):
        system = System(chain2_network())
        init = system.network.initial_locations()
        table = moves_by_label(system, init, (), PARTIAL)
        (go,) = table["go"]
        assert go.direction == "input" and go.controllable
        assert len(go.edges) == 1
        fin_table = moves_by_label(system, (2, 1), (), PARTIAL)  # Done, Hold
        (fin,) = fin_table["fin"]
        assert fin.direction == "output" and len(fin.edges) == 1

    def test_pairable_boundary_channel_keeps_kind_direction(self):
        # An arena-style network: the partner is in-model, the channel
        # observable — the pair completes with its kind direction.
        net = NetworkBuilder("arena")
        net.input_channel("go")
        net.interface("go")
        env = net.automaton("ENV")
        env.location("e", initial=True)
        env.edge("e", "e", sync="go!")
        p = net.automaton("P")
        p.location("l0", initial=True)
        p.edge("l0", "l0", sync="go?")
        system = System(net.build())
        (go,) = system.moves_from((0, 0), (), PARTIAL)
        assert go.direction == "input" and len(go.edges) == 2

    def test_open_equals_partial_on_single_automaton(self):
        instance = generate_instance(7, "random")
        system = System(instance.plant)
        graph = SimulationGraph(system, mode=OPEN, max_nodes=400)
        graph.explore_all()

        def key(move):
            return (
                move.label,
                move.direction,
                move.controllable,
                tuple(e.index for _, e in move.edges),
            )

        for node in graph.nodes:
            locs, vars = node.sym.locs, node.sym.vars
            open_moves = sorted(map(key, system.moves_from(locs, vars, OPEN)))
            partial = sorted(map(key, system.moves_from(locs, vars, PARTIAL)))
            assert open_moves == partial

    def test_broadcast_boundary_output_carries_receivers(self):
        system = System(broadcast_network())
        table = moves_by_label(system, (0, 0, 0), (), PARTIAL)
        casts = table["cast"]
        outputs = [m for m in casts if m.direction == "output"]
        inputs = [m for m in casts if m.direction == "input"]
        (out,) = outputs
        # Emitter plus both listening subscribers in one observable move.
        assert [edge.automaton for _, edge in out.edges] == ["P", "S0", "S1"]
        # The environment may cast too: both subscribers take it together.
        (inp,) = inputs
        assert inp.controllable
        assert [edge.automaton for _, edge in inp.edges] == ["S0", "S1"]

    def test_broadcast_internalised_is_hidden_without_input_half(self):
        system = System(broadcast_network(internalise=True))
        table = moves_by_label(system, (0, 0, 0), (), PARTIAL)
        (cast,) = table["cast"]
        assert cast.direction == "internal"
        assert [edge.automaton for _, edge in cast.edges] == ["P", "S0", "S1"]

    def test_committed_priority_applies_to_partial_moves(self):
        net = NetworkBuilder("committed")
        net.output_channel("h", "out")
        net.interface("out")
        a = net.automaton("A")
        a.location("a0", initial=True)
        a.location("a1")
        a.edge("a0", "a1", sync="h!")
        a.edge("a0", "a1", sync="out!")
        b = net.automaton("B")
        b.location("b0", initial=True, committed=True)
        b.location("b1")
        b.edge("b0", "b1", sync="h?")
        b.edge("b0", "b1")
        system = System(net.build())
        labels = {m.label for m in system.moves_from((0, 0), (), PARTIAL)}
        # B is committed: the hidden pair (involves B) and B's tau run,
        # A's solo boundary output must wait.
        assert labels == {"h", "tau"}

    def test_urgent_freezes_delay_but_not_moves(self):
        net = NetworkBuilder("urgent")
        net.output_channel("h", "out")
        net.interface("out")
        a = net.automaton("A")
        a.location("a0", initial=True)
        a.location("a1")
        a.edge("a0", "a1", sync="h!")
        a.edge("a0", "a1", sync="out!")
        b = net.automaton("B")
        b.location("b0", initial=True, urgent=True)
        b.location("b1")
        b.edge("b0", "b1", sync="h?")
        system = System(net.build())
        assert not system.can_delay((0, 0))
        labels = {m.label for m in system.moves_from((0, 0), (), PARTIAL)}
        # No priority: the boundary output races the hidden sync.
        assert labels == {"h", "out"}

    def test_unknown_mode_rejected(self):
        system = System(chain2_network())
        with pytest.raises(ValueError, match="unknown move mode"):
            system.moves_from((0, 0), (), "weird")

    def test_saturating_update_disables_the_move(self):
        """enabled_now must agree with fire on variable-range feasibility.

        A broadcast reception bumping a bounded counter stops being
        enabled once the counter saturates (found by the fuzzer on
        retarget mutants whose subscribers re-receive forever).
        """
        net = NetworkBuilder("saturate")
        net.int_var("got", 0, 1, 0)
        net.broadcast_channel("cast")
        net.interface("cast")
        p = net.automaton("P")
        p.location("Idle", initial=True)
        s = net.automaton("S")
        s.location("Wait", initial=True)
        s.edge("Wait", "Wait", sync="cast?", assign="got := got + 1")
        system = System(net.build())
        state = system.initial_concrete()
        enabled = system.enabled_now(state, mode=PARTIAL, directions=("input",))
        assert [m.label for m, _ in enabled] == ["cast"]
        state = system.fire(state, enabled[0][0])
        assert state.vars == (1,)
        # got is saturated: the reception is no longer a transition.
        assert system.enabled_now(state, mode=PARTIAL, directions=("input",)) == []
        assert system.fire(state, enabled[0][0]) is None


# ----------------------------------------------------------------------
# State estimation
# ----------------------------------------------------------------------


class TestStateEstimate:
    @pytest.fixture()
    def estimate(self):
        return StateEstimate(System(chain2_network()))

    def test_initial_quiescence_unbounded(self, estimate):
        assert estimate.max_quiescence() == (None, False)

    def test_hidden_window_extends_quiescence(self, estimate):
        assert estimate.observe("go", "input")
        # h fires by c0 <= 2, fin forced by c1 <= 3 after: silence <= 5.
        assert estimate.max_quiescence() == (Fraction(5), False)

    def test_quiescence_violation_detected(self, estimate):
        estimate.observe("go", "input")
        assert not estimate.advance(Fraction(6))

    def test_exact_delay_tracking_through_hidden_moves(self, estimate):
        estimate.observe("go", "input")
        assert estimate.advance(Fraction(3, 2))
        # fin needs c1 >= 1, reachable: h at t <= 1/2 gives c1 >= 1 now.
        assert estimate.allowed_outputs() == ["fin"]
        assert estimate.observe("fin", "output")
        assert not estimate.observe("fin", "output")

    def test_output_refused_before_hidden_move_can_enable_it(self, estimate):
        estimate.observe("go", "input")
        assert estimate.advance(Fraction(1, 2))
        # Even the earliest hidden h leaves c1 <= 1/2 < 1.
        assert estimate.allowed_outputs() == []
        assert not estimate.observe("fin", "output")

    def test_quiescence_after_partial_delay(self, estimate):
        estimate.observe("go", "input")
        assert estimate.advance(Fraction(5, 3))
        bound, strict = estimate.max_quiescence()
        assert (bound, strict) == (Fraction(10, 3), False)

    def test_rescaling_keeps_exact_rational_delays(self, estimate):
        estimate.observe("go", "input")
        assert estimate.advance(Fraction(1, 3))
        assert estimate.advance(Fraction(1, 7))
        assert estimate.scale % 21 == 0
        bound, _ = estimate.max_quiescence()
        assert bound == Fraction(5) - Fraction(1, 3) - Fraction(1, 7)

    def test_reset_restores_the_initial_estimate(self, estimate):
        estimate.observe("go", "input")
        estimate.advance(Fraction(1))
        estimate.reset()
        assert estimate.scale == 1
        assert estimate.max_quiescence() == (None, False)
        assert estimate.enabled_labels("input") == ["go"]

    def test_budget_overflow_raises(self):
        estimate = StateEstimate(System(chain2_network()), max_states=1)
        with pytest.raises(EstimateLimit):
            estimate.observe("go", "input")
            estimate.max_quiescence()

    def test_scale_cap_raises_estimate_limit(self, estimate):
        """Wildly varied delay denominators must fail loudly, not corrupt
        the integer DBMs (the lcm scale is capped by the model constants)."""
        estimate.observe("go", "input")
        primes = (3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)
        with pytest.raises(EstimateLimit, match="time scale"):
            for p in primes:
                assert estimate.advance(Fraction(1, p))

    def test_observe_move_applies_the_specific_move(self, estimate):
        system = estimate.system
        locs = system.network.initial_locations()
        (go,) = [
            m for m in system.partial_moves_from(locs, ()) if m.label == "go"
        ]
        (fin,) = [
            m
            for m in system.partial_moves_from((2, 1), ())
            if m.label == "fin"
        ]
        assert not estimate.observe_move(fin)  # not enabled initially
        assert estimate.observe_move(go)
        assert estimate.max_quiescence() == (Fraction(5), False)

    def test_describe_mentions_member_locations(self, estimate):
        estimate.observe("go", "input")
        text = estimate.describe()
        assert "A.Busy" in text and "B.Hold" in text


# ----------------------------------------------------------------------
# Property: empty boundary ≡ closed product
# ----------------------------------------------------------------------


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 50_000),
    family=st.sampled_from(
        ["random", "chain", "ring", "clientserver", "broadcast", "mutant"]
    ),
)
def test_empty_boundary_partial_equals_closed_product(seed, family):
    instance = generate_instance(seed, family)
    result = check_composition(
        instance, DiffConfig(composition_nodes=400)
    )
    assert result.status == OK, result.detail


def test_executor_never_fails_a_conforming_composed_plant():
    """Strategy-based execution against hidden-sync plants is fail-sound.

    The tester's exact arena tracking may go stale (hidden hops fire at
    times it cannot observe); that must surface as INCONCLUSIVE — FAIL
    is reserved for violations of the (sound, set-tracking) monitor.
    """
    from repro.game.solver import TwoPhaseSolver
    from repro.game.strategy import Strategy
    from repro.tctl import parse_query
    from repro.testing import EagerPolicy, SimulatedImplementation
    from repro.testing.executor import execute_test

    for seed in range(6):
        instance = generate_instance(seed, "chain")
        arena = System(instance.arena)
        result = TwoPhaseSolver(arena, parse_query(instance.query)).solve()
        if not result.winning:
            continue
        run = execute_test(
            Strategy(result),
            System(instance.plant),
            SimulatedImplementation(System(instance.plant), EagerPolicy()),
        )
        assert run.verdict != "fail", (seed, run.reason)


def test_closed_mode_ignores_the_partition():
    """The game arena stays the flat product whatever the partition says."""
    network = chain2_network()
    system = System(network)
    closed = moves_by_label(system, (1, 0), (), CLOSED)
    assert closed["h"][0].direction == "output"  # kind direction, not hidden
