"""Tests for model validation (paper §2.2 restrictions)."""

import pytest

from repro.semantics.system import System
from repro.ta import NetworkBuilder
from repro.ta.validate import (
    check_determinism,
    check_input_enabledness,
    validate_plant,
)


def deterministic_plant():
    net = NetworkBuilder("det")
    net.clock("x")
    net.input_channel("a")
    net.output_channel("b")
    p = net.automaton("P")
    p.location("s", initial=True)
    p.location("t", invariant="x <= 2")
    p.edge("s", "t", guard="x < 5", sync="a?", assign="x := 0")
    p.edge("s", "s", guard="x >= 5", sync="a?")
    p.edge("t", "s", sync="b!")
    p.edge("t", "t", sync="a?")
    return net.build()


def nondeterministic_plant():
    net = NetworkBuilder("nondet")
    net.clock("x")
    net.input_channel("a")
    p = net.automaton("P")
    p.location("s", initial=True)
    p.location("t1")
    p.location("t2")
    # Overlapping guards, different targets: same input, two effects.
    p.edge("s", "t1", guard="x <= 5", sync="a?")
    p.edge("s", "t2", guard="x >= 3", sync="a?")
    for loc in ("t1", "t2"):
        p.edge(loc, loc, sync="a?")
    return net.build()


def refusing_plant():
    net = NetworkBuilder("refuse")
    net.clock("x")
    net.input_channel("a")
    p = net.automaton("P")
    p.location("s", initial=True)
    p.location("t")
    # Input only accepted while x <= 3: refused later.
    p.edge("s", "t", guard="x <= 3", sync="a?")
    p.edge("t", "t", sync="a?")
    return net.build()


class TestDeterminism:
    def test_deterministic_passes(self):
        report = check_determinism(System(deterministic_plant()))
        assert report.ok

    def test_overlapping_guards_detected(self):
        report = check_determinism(System(nondeterministic_plant()))
        assert not report.ok
        assert any(i.kind == "nondeterminism" for i in report.issues)

    def test_output_choice_is_not_nondeterminism(self):
        """Different output *actions* from one state are fine (that is
        exactly the paper's uncontrollable-output setting)."""
        from repro.models.smartlight import smartlight_plant

        report = check_determinism(System(smartlight_plant()))
        assert report.ok, str(report)


class TestInputEnabledness:
    def test_enabled_plant_passes(self):
        report = check_input_enabledness(System(deterministic_plant()))
        assert report.ok, str(report)

    def test_refusal_detected(self):
        report = check_input_enabledness(System(refusing_plant()))
        assert not report.ok
        assert any(i.kind == "input-refusal" for i in report.issues)
        assert "a?" in str(report)

    def test_lep_plant_enabled(self):
        from repro.models.lep import lep_plant

        report = check_input_enabledness(System(lep_plant(3)))
        assert report.ok, str(report)


class TestCombined:
    def test_validate_plant_aggregates(self):
        report = validate_plant(System(nondeterministic_plant()))
        kinds = {i.kind for i in report.issues}
        assert "nondeterminism" in kinds

    def test_report_string(self):
        good = validate_plant(System(deterministic_plant()))
        assert "valid" in str(good)
        bad = validate_plant(System(refusing_plant()))
        assert "input-refusal" in str(bad)
