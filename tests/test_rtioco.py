"""Tests for the environment-relativized monitor (repro.testing.rtioco)."""

from fractions import Fraction

import pytest

from repro.models.smartlight import smartlight_network
from repro.semantics.system import System
from repro.ta import NetworkBuilder
from repro.testing.rtioco import RelativizedMonitor


def restricted_env_network():
    """A plant that may reply fast! or slow!, but whose environment model
    only listens for fast! — rtioco rejects slow! where tioco would not."""
    net = NetworkBuilder("restricted")
    net.clock("x")
    net.input_channel("req")
    net.output_channel("fast", "slow")
    p = net.automaton("P")
    p.location("idle", initial=True)
    p.location("work", invariant="x <= 4")
    p.edge("idle", "work", sync="req?", assign="x := 0")
    p.edge("work", "idle", guard="x >= 1", sync="fast!")
    p.edge("work", "idle", guard="x >= 2", sync="slow!")
    e = net.automaton("E")
    e.location("e", initial=True)
    e.edge("e", "e", sync="req!")
    e.edge("e", "e", sync="fast?")  # never listens for slow!
    return net.build()


@pytest.fixture()
def monitor():
    return RelativizedMonitor(System(smartlight_network()))


class TestSmartLight:
    def test_initial_quiescence_unbounded(self, monitor):
        assert monitor.max_quiescence().bound is None

    def test_input_via_move(self, monitor):
        spec = monitor.spec
        monitor.advance(Fraction(2))
        touch = [
            m for m in spec.moves_from(monitor.state.locs, monitor.state.vars)
            if m.label == "touch"
        ][0]
        assert monitor.observe_move(touch)
        assert monitor.allowed_outputs() == ["dim"]

    def test_output_checked(self, monitor):
        spec = monitor.spec
        monitor.advance(Fraction(2))
        touch = [
            m for m in spec.moves_from(monitor.state.locs, monitor.state.vars)
            if m.label == "touch"
        ][0]
        monitor.observe_move(touch)
        assert not monitor.observe_output("bright")
        assert "rtioco" in monitor.violation

    def test_quiescence_bound_enforced(self, monitor):
        spec = monitor.spec
        monitor.advance(Fraction(2))
        touch = [
            m for m in spec.moves_from(monitor.state.locs, monitor.state.vars)
            if m.label == "touch"
        ][0]
        monitor.observe_move(touch)
        assert not monitor.advance(Fraction(3))

    def test_reset(self, monitor):
        monitor.advance(Fraction(2))
        monitor.observe_output("dim")
        assert not monitor.ok
        monitor.reset()
        assert monitor.ok


class TestEnvironmentRestriction:
    def test_env_restriction_rejects_plant_allowed_output(self):
        """slow! conforms to the plant alone but not to plant ∥ env."""
        sys_ = System(restricted_env_network())
        monitor = RelativizedMonitor(sys_)
        req = [
            m for m in sys_.moves_from(monitor.state.locs, monitor.state.vars)
            if m.label == "req"
        ][0]
        assert monitor.observe_move(req)
        monitor.advance(Fraction(2))
        # The plant spec allows slow! at x == 2; the environment cannot
        # receive it, so under rtioco it is a violation.
        assert not monitor.observe_output("slow")
        assert "rtioco" in monitor.violation

    def test_fast_accepted(self):
        sys_ = System(restricted_env_network())
        monitor = RelativizedMonitor(sys_)
        req = [
            m for m in sys_.moves_from(monitor.state.locs, monitor.state.vars)
            if m.label == "req"
        ][0]
        monitor.observe_move(req)
        monitor.advance(Fraction(1))
        assert monitor.observe_output("fast")
        assert monitor.ok
