"""Tests for the expression language: lexer, parser, evaluator, splitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import (
    Context,
    Declarations,
    EvalError,
    GuardError,
    LexError,
    ParseError,
    apply_assignments,
    evaluate,
    evaluate_bool,
    parse_assignments,
    parse_expression,
    split_guard,
    static_int_bound,
    tokenize,
)
from repro.expr.ast import Binary, IntLiteral, Name, Quantifier, conjuncts, walk
from repro.expr.clocksplit import ClockAtom, update_max_constants


def make_decls():
    d = Declarations()
    d.add_constant("Tidle", 20)
    d.add_constant("N", 4)
    d.add_int("n", 0, 10, 3)
    d.add_int("flag", 0, 1, 0)
    d.add_array("inUse", 4, 0, 1)
    d.add_clock("x")
    d.add_clock("y")
    d.add_range_type("BufferId", 0, 3)
    return d


def ctx_of(d, **overrides):
    state = list(d.initial_state())
    for name, value in overrides.items():
        if name in d.int_vars:
            state[d.int_vars[name].slot] = value
    return Context(d, tuple(state))


class TestLexer:
    def test_tokens(self):
        kinds = [t.kind for t in tokenize("x >= 20 && n == 3")]
        assert kinds == ["ident", "op", "int", "op", "ident", "op", "int", "eof"]

    def test_keywords(self):
        tokens = tokenize("forall and or not exists imply true false")
        assert all(t.kind in ("kw", "eof") for t in tokens)

    def test_maximal_munch(self):
        texts = [t.text for t in tokenize("<=>=!=:=&&||")]
        assert texts == ["<=", ">=", "!=", ":=", "&&", "||", ""]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("x @ 3")

    def test_positions(self):
        tokens = tokenize("ab + cd")
        assert tokens[0].pos == 0
        assert tokens[1].pos == 3
        assert tokens[2].pos == 5


class TestParser:
    def test_precedence_and_over_or(self):
        e = parse_expression("a || b && c")
        assert isinstance(e, Binary) and e.op == "||"
        assert isinstance(e.rhs, Binary) and e.rhs.op == "&&"

    def test_precedence_comparison_over_and(self):
        e = parse_expression("a == 1 && b == 2")
        assert e.op == "&&"

    def test_arith_precedence(self):
        e = parse_expression("1 + 2 * 3")
        assert e.op == "+"
        assert isinstance(e.rhs, Binary) and e.rhs.op == "*"

    def test_parentheses(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*"

    def test_unary_minus(self):
        d = make_decls()
        assert evaluate(parse_expression("-3 + 5"), ctx_of(d)) == 2

    def test_not_keyword_and_bang(self):
        d = make_decls()
        assert evaluate(parse_expression("!0"), ctx_of(d)) == 1
        assert evaluate(parse_expression("not 1"), ctx_of(d)) == 0

    def test_imply(self):
        d = make_decls()
        assert evaluate(parse_expression("0 imply 0"), ctx_of(d)) == 1
        assert evaluate(parse_expression("1 imply 0"), ctx_of(d)) == 0

    def test_quantifier_named_range(self):
        e = parse_expression("forall (i : BufferId) (inUse[i] == 0)")
        assert isinstance(e, Quantifier)
        assert e.kind == "forall"

    def test_quantifier_explicit_range(self):
        e = parse_expression("exists (k : int[1, 3]) (k == 2)")
        d = make_decls()
        assert evaluate(e, ctx_of(d)) == 1

    def test_dotted_field(self):
        e = parse_expression("IUT.Bright")
        assert str(e) == "IUT.Bright"

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 )")

    def test_missing_operand(self):
        with pytest.raises(ParseError):
            parse_expression("1 +")

    def test_assignments(self):
        assigns = parse_assignments("x := 0, n = n + 1")
        assert len(assigns) == 2
        assert str(assigns[0]) == "x := 0"

    def test_empty_assignment_list(self):
        assert parse_assignments("") == []
        assert parse_assignments("   ") == []

    def test_bad_assignment_target(self):
        with pytest.raises(ParseError):
            parse_assignments("3 := 4")

    def test_array_assignment_target(self):
        assigns = parse_assignments("inUse[2] := 1")
        assert len(assigns) == 1


class TestEvaluator:
    def test_constants_and_vars(self):
        d = make_decls()
        assert evaluate(parse_expression("Tidle + n"), ctx_of(d)) == 23

    def test_array_access(self):
        d = make_decls()
        assert evaluate(parse_expression("inUse[0] + inUse[3]"), ctx_of(d)) == 0

    def test_array_out_of_bounds(self):
        d = make_decls()
        with pytest.raises(EvalError):
            evaluate(parse_expression("inUse[7]"), ctx_of(d))

    def test_unknown_name(self):
        d = make_decls()
        with pytest.raises(EvalError):
            evaluate(parse_expression("nosuch"), ctx_of(d))

    def test_clock_in_int_expr_rejected(self):
        d = make_decls()
        with pytest.raises(EvalError):
            evaluate(parse_expression("x + 1"), ctx_of(d))

    def test_division_truncates_toward_zero(self):
        d = make_decls()
        assert evaluate(parse_expression("7 / 2"), ctx_of(d)) == 3
        assert evaluate(parse_expression("-7 / 2"), ctx_of(d)) == -3
        assert evaluate(parse_expression("7 % 2"), ctx_of(d)) == 1
        assert evaluate(parse_expression("-7 % 2"), ctx_of(d)) == -1

    def test_division_by_zero(self):
        d = make_decls()
        with pytest.raises(EvalError):
            evaluate(parse_expression("1 / 0"), ctx_of(d))

    def test_forall_over_named_range(self):
        d = make_decls()
        e = parse_expression("forall (i : BufferId) (inUse[i] == 0)")
        assert evaluate_bool(e, ctx_of(d))

    def test_exists_false_on_initial(self):
        d = make_decls()
        e = parse_expression("exists (i : BufferId) (inUse[i] == 1)")
        assert not evaluate_bool(e, ctx_of(d))

    def test_forall_empty_range_is_true(self):
        d = make_decls()
        e = parse_expression("forall (i : int[1, 0]) (0)")
        assert evaluate_bool(e, ctx_of(d))

    def test_nested_quantifiers(self):
        d = make_decls()
        e = parse_expression(
            "forall (i : int[0, 2]) exists (j : int[0, 2]) (i == j)"
        )
        assert evaluate_bool(e, ctx_of(d))

    def test_short_circuit(self):
        d = make_decls()
        # RHS would raise if evaluated.
        assert evaluate(parse_expression("0 && (1 / 0)"), ctx_of(d)) == 0
        assert evaluate(parse_expression("1 || (1 / 0)"), ctx_of(d)) == 1

    def test_binding_shadowing(self):
        d = make_decls()
        e = parse_expression("exists (n : int[5, 5]) (n == 5)")
        assert evaluate_bool(e, ctx_of(d))  # binder shadows variable n


class TestAssignments:
    def test_sequential_semantics(self):
        d = make_decls()
        # The second assignment must see the effect of the first (n: 3 -> 4).
        assigns = parse_assignments("n := n + 1, flag := n - 3")
        state = apply_assignments(assigns, ctx_of(d))
        layout = d.int_vars
        assert state[layout["n"].slot] == 4
        assert state[layout["flag"].slot] == 1

    def test_overflow_raises(self):
        d = make_decls()
        with pytest.raises(OverflowError):
            apply_assignments(parse_assignments("n := 11"), ctx_of(d))

    def test_array_assignment(self):
        d = make_decls()
        state = apply_assignments(parse_assignments("inUse[2] := 1"), ctx_of(d))
        arr = d.arrays["inUse"]
        assert state[arr.offset + 2] == 1

    def test_array_index_expression(self):
        d = make_decls()
        state = apply_assignments(
            parse_assignments("inUse[n - 3] := 1"), ctx_of(d)
        )
        arr = d.arrays["inUse"]
        assert state[arr.offset + 0] == 1

    def test_assign_to_constant_rejected(self):
        d = make_decls()
        with pytest.raises(EvalError):
            apply_assignments(parse_assignments("Tidle := 3"), ctx_of(d))


class TestSplitGuard:
    def test_pure_int_guard(self):
        d = make_decls()
        sg = split_guard(parse_expression("n == 3 && flag == 0"), d)
        assert len(sg.int_atoms) == 2
        assert len(sg.clock_atoms) == 0

    def test_pure_clock_guard(self):
        d = make_decls()
        sg = split_guard(parse_expression("x >= Tidle && y < 5"), d)
        assert len(sg.clock_atoms) == 2
        assert sg.clock_atoms[0].op == ">="

    def test_diagonal(self):
        d = make_decls()
        sg = split_guard(parse_expression("x - y <= 2"), d)
        atom = sg.clock_atoms[0]
        assert (atom.i, atom.j) == (1, 2)
        assert atom.is_diagonal

    def test_flipped_comparison(self):
        d = make_decls()
        sg = split_guard(parse_expression("5 >= x"), d)
        atom = sg.clock_atoms[0]
        assert atom.op == "<=" and atom.i == 1 and atom.j == 0

    def test_equality_atom_two_constraints(self):
        d = make_decls()
        sg = split_guard(parse_expression("x == 3"), d)
        constraints = sg.clock_constraints(ctx_of(d))
        assert len(constraints) == 2

    def test_clock_disjunction_rejected(self):
        d = make_decls()
        with pytest.raises(GuardError):
            split_guard(parse_expression("x < 1 || x > 5"), d)

    def test_clock_arithmetic_rejected(self):
        d = make_decls()
        with pytest.raises(GuardError):
            split_guard(parse_expression("x + 1 < 5"), d)

    def test_mixed_difference_rejected(self):
        d = make_decls()
        with pytest.raises(GuardError):
            split_guard(parse_expression("x - n < 5"), d)

    def test_negated_clock_atom(self):
        d = make_decls()
        sg = split_guard(parse_expression("!(x < 5)"), d)
        assert sg.clock_atoms[0].op == ">="

    def test_variable_rhs_constraint(self):
        d = make_decls()
        sg = split_guard(parse_expression("x <= n"), d)
        constraints = sg.clock_constraints(ctx_of(d, n=7))
        assert constraints == [(1, 0, (7 << 1) | 1)]

    def test_true_guard_for_none(self):
        d = make_decls()
        sg = split_guard(None, d)
        assert sg.int_holds(ctx_of(d))
        assert sg.clock_constraints(ctx_of(d)) == []


class TestStaticBounds:
    def test_constant(self):
        d = make_decls()
        assert static_int_bound(parse_expression("Tidle + 5"), d) == 25

    def test_variable_range(self):
        d = make_decls()
        assert static_int_bound(parse_expression("n"), d) == 10

    def test_product(self):
        d = make_decls()
        assert static_int_bound(parse_expression("n * 3"), d) == 30

    def test_update_max_constants(self):
        d = make_decls()
        sg = split_guard(parse_expression("x >= Tidle && y <= n"), d)
        max_consts = [0, 0, 0]
        update_max_constants(sg.clock_atoms, d, max_consts)
        assert max_consts[1] == 20
        assert max_consts[2] == 10


class TestAstHelpers:
    def test_conjuncts_flatten(self):
        e = parse_expression("a == 1 && b == 2 && c == 3")
        assert len(conjuncts(e)) == 3

    def test_walk_visits_all(self):
        e = parse_expression("inUse[n] + 2 * Tidle")
        names = [node.ident for node in walk(e) if isinstance(node, Name)]
        assert set(names) == {"inUse", "n", "Tidle"}

    @given(st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50))
    def test_parse_eval_roundtrip_arith(self, a, b, c):
        d = make_decls()
        expr = parse_expression(f"({a}) + ({b}) * ({c})")
        assert evaluate(expr, ctx_of(d)) == a + b * c
