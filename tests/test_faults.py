"""The fault-injection fabric and graceful degradation under it.

Covers the :mod:`repro.faults` plan grammar and determinism, per-site
counters, worker crash/hang recovery in :func:`repro.par.steal_map`
(byte-identical reports when retries absorb the faults, quarantine when
they cannot, prompt KeyboardInterrupt cleanup), persistent-store torn
writes and ``fsck --repair``, server drop/stall/drain over loopback,
and compiled-kernel demotion to the numpy reference.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro import faults
from repro.corpus import CampaignCheckpoint, Corpus, CorpusEntry
from repro.corpus.__main__ import fsck_tree
from repro.dbm import backends as dbm_backends
from repro.dbm import stack as _sk
from repro.gen.differential import DiffConfig, check_faults, run_campaign
from repro.gen.networks import generate_instance
from repro.par import steal_map
from repro.util import counters

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def sync(coro):
    return asyncio.run(coro)


def counts():
    return counters.export()["counts"]


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    """Disarmed plan, short hangs, fresh counters around every test."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    monkeypatch.setenv(faults.HANG_ENV, "0.2")
    faults.install(None)
    counters.reset()
    yield
    faults.install(None)


# ----------------------------------------------------------------------
# Plan grammar and determinism
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_describe_roundtrip(self):
        spec = "seed=9;a.b:*;c.d:1,3,5;e:every=4;f.g:p=0.25"
        plan = faults.FaultPlan.parse(spec)
        assert faults.FaultPlan.parse(plan.describe()).describe() == (
            plan.describe()
        )

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "site", "site:", ":*", "site:every=0", "site:p=1.5",
         "site:p=-0.1", "site:0", "site:x,y", "seed=5"],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            faults.FaultPlan.parse(bad)

    def test_hit_list_trigger(self):
        plan = faults.FaultPlan.parse("s:2,4")
        fired = [plan.should_fire("s") for _ in range(5)]
        assert fired == [False, True, False, True, False]

    def test_every_trigger(self):
        plan = faults.FaultPlan.parse("s:every=3")
        fired = [plan.should_fire("s") for _ in range(7)]
        assert fired == [False, False, True, False, False, True, False]

    def test_always_trigger_and_prefix_match(self):
        plan = faults.FaultPlan.parse("server.conn:*")
        assert plan.should_fire("server.conn.drop")
        assert plan.should_fire("server.conn.stall")
        assert not plan.should_fire("server.other")
        assert not plan.should_fire("corpus.store.write")

    def test_probabilistic_is_seed_deterministic(self):
        spec = "s:p=0.5;seed=42"
        runs = []
        for _ in range(2):
            plan = faults.FaultPlan.parse(spec)
            runs.append([plan.should_fire("s") for _ in range(128)])
        assert runs[0] == runs[1]
        assert any(runs[0]) and not all(runs[0])
        other = faults.FaultPlan.parse("s:p=0.5;seed=43")
        assert [other.should_fire("s") for _ in range(128)] != runs[0]

    def test_probability_order_independent_across_sites(self):
        # Interleaving hits on other sites must not shift a site's
        # decisions: each is hashed from (seed, site, hit) alone.
        a = faults.FaultPlan.parse("x:p=0.4;y:p=0.4;seed=7")
        b = faults.FaultPlan.parse("x:p=0.4;y:p=0.4;seed=7")
        seq_a = [a.should_fire("x") for _ in range(32)]
        seq_b = []
        for _ in range(32):
            b.should_fire("y")
            seq_b.append(b.should_fire("x"))
        assert seq_a == seq_b

    def test_per_site_counters(self):
        with faults.injected("a.b:*;c.d:2"):
            faults.should_fire("a.b.x")
            faults.should_fire("c.d")
            faults.should_fire("c.d")
        got = counts()
        assert got.get("faults.fired") == 2
        assert got.get("faults.fired.a.b.x") == 1
        assert got.get("faults.fired.c.d") == 1

    def test_disarmed_never_fires(self):
        assert not faults.should_fire("anything.at.all")
        assert "faults.fired" not in counts()

    def test_injected_restores_plan_and_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "outer.site:*")
        faults.install("outer.site:*")
        with faults.injected("inner.site:*", env=True):
            assert os.environ[faults.ENV_VAR] == "inner.site:*"
            assert faults.should_fire("inner.site")
            assert not faults.should_fire("outer.site")
        assert os.environ[faults.ENV_VAR] == "outer.site:*"
        assert faults.should_fire("outer.site")

    def test_retry_probes_skip_scheduled_triggers(self):
        # scheduled triggers are transient faults: quiet on retries and
        # invisible to the hit counter; `*` is a hard fault and fires.
        plan = faults.FaultPlan.parse("hard:*;soft:1")
        assert plan.should_fire("soft") is True
        assert plan.should_fire("soft", retry=True) is False
        assert plan.hits("soft") == 1
        assert plan.should_fire("hard", retry=True) is True

    def test_fire_raises_injected_fault(self):
        with faults.injected("k:*"):
            with pytest.raises(faults.InjectedFault) as err:
                faults.fire("k")
        assert err.value.site == "k"


# ----------------------------------------------------------------------
# Pool recovery: crash / hang / quarantine / interrupt
# ----------------------------------------------------------------------


def _square(x):
    return x * x


class TestPoolRecovery:
    def test_crash_recovery_report_identical(self):
        base = run_campaign(count=4, seed=0, checks=["semantics"],
                            zone_trials=2, jobs=2)
        # crash:2 — every worker dies claiming its second task, so with
        # 4 tasks on 2 workers at least one death is guaranteed and the
        # requeued tasks land on (fresh) replacement workers.
        with faults.injected("par.worker.crash:2", env=True):
            chaotic = run_campaign(count=4, seed=0, checks=["semantics"],
                                   zone_trials=2, jobs=2)

        def stripped(summary):
            # coverage is volatile (scheduling-dependent memo deltas)
            return [dict(r.to_dict(), coverage=None)
                    for r in summary.reports]

        assert stripped(base) == stripped(chaotic)
        assert counts().get("par.worker_deaths", 0) >= 1

    def test_hang_recovery(self, monkeypatch):
        # the injected hang must outlast task_timeout to look hung
        monkeypatch.setenv(faults.HANG_ENV, "5")
        with faults.injected("par.worker.hang:3", env=True):
            out = steal_map(_square, [(i,) for i in range(6)], jobs=2,
                            retries=2, task_timeout=0.5)
        assert out == [i * i for i in range(6)]
        assert counts().get("par.task_timeouts", 0) >= 1

    def test_error_retry(self):
        with faults.injected("par.worker.error:2", env=True):
            out = steal_map(_square, [(i,) for i in range(4)], jobs=2,
                            retries=2)
        assert out == [0, 1, 4, 9]
        assert counts().get("par.task_retries", 0) >= 1

    def test_poison_task_quarantined(self):
        bad = []
        with faults.injected("par.worker.error:*", env=True):
            out = steal_map(_square, [(i,) for i in range(3)], jobs=2,
                            retries=1,
                            quarantine=lambda i, e: bad.append(i))
        assert out == [None, None, None]
        assert sorted(bad) == [0, 1, 2]
        assert counts().get("par.task_quarantined") == 3

    def test_campaign_quarantine_is_deterministic_harness_fail(self):
        with faults.injected("par.worker.crash:*", env=True):
            one = run_campaign(count=2, seed=5, checks=["semantics"],
                               zone_trials=2, jobs=2)
            two = run_campaign(count=2, seed=5, checks=["semantics"],
                               zone_trials=2, jobs=2)
        for summary in (one, two):
            assert len(summary.reports) == 2
            for report in summary.reports:
                assert [f.name for f in report.failures] == ["harness"]
                assert report.shrunk is None  # harness failures don't shrink
        assert [r.to_dict() for r in one.reports] == [
            dict(r.to_dict(), coverage=one.reports[i].coverage)
            for i, r in enumerate(two.reports)
        ]

    def test_keyboard_interrupt_prompt_cleanup(self, tmp_path):
        script = tmp_path / "ki.py"
        script.write_text(
            "import sys, time\n"
            f"sys.path.insert(0, {SRC!r})\n"
            "from repro.par import steal_map\n"
            "def slow(x):\n"
            "    if x:\n"
            "        time.sleep(30)\n"
            "    return x\n"
            "done = []\n"
            "print('READY', flush=True)\n"
            "try:\n"
            "    steal_map(slow, [(0,), (1,), (2,)], jobs=2,\n"
            "              on_result=lambda i, r: done.append(i))\n"
            "except KeyboardInterrupt:\n"
            "    print('KI', sorted(done), flush=True)\n"
            "    sys.exit(130)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            time.sleep(1.0)  # let task 0 finish and 1, 2 park in sleep
            started = time.monotonic()
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=10)
            elapsed = time.monotonic() - started
        finally:
            proc.kill()
        # Prompt: the 30s sleepers were terminated, not joined out.
        assert elapsed < 5, (elapsed, out, err)
        assert proc.returncode == 130, (proc.returncode, out, err)
        assert "KI" in out  # completed results journaled before re-raise


# ----------------------------------------------------------------------
# Persistent stores: torn writes, quarantine, fsck
# ----------------------------------------------------------------------


def _entry(n=0):
    return CorpusEntry(
        structural_hash=f"deadbeef{n:08x}", seed=n, family="chain",
        signature=f"sig{n}", statuses={"semantics": "ok"},
    )


class TestStoreDegradation:
    def test_torn_corpus_write_quarantines(self, tmp_path):
        store = Corpus(str(tmp_path))
        with faults.injected("corpus.store.write:1"):
            store.add(_entry(0))
            store.add(_entry(1))  # second write is clean
        assert store.get(_entry(0).structural_hash) is None
        assert store.get(_entry(1).structural_hash) is not None
        assert counts().get("corpus.corrupt_entries", 0) >= 1
        assert list(store)  # iteration skips, never raises

    def test_fsck_repair_roundtrip(self, tmp_path):
        store = Corpus(str(tmp_path))
        with faults.injected("corpus.store.write:1"):
            store.add(_entry(0))
        store.add(_entry(1))
        report = store.fsck()
        assert len(report["corrupt"]) == 1 and report["ok"] == 1
        repaired = store.fsck(repair=True)
        assert repaired["quarantined"] == 1
        assert store.fsck()["corrupt"] == []
        # the torn file is preserved for the post-mortem, out of band
        assert len(os.listdir(store.quarantine_dir())) == 1
        # the slot is writable again
        assert store.add(_entry(0))
        assert store.get(_entry(0).structural_hash) is not None

    def test_checkpoint_torn_tail_self_heals(self, tmp_path):
        path = str(tmp_path / "checkpoint.jsonl")
        from repro.gen.differential import InstanceReport

        def report(i):
            return InstanceReport(i, "chain", f"h{i}", f"inst{i}")

        ck = CampaignCheckpoint(path)
        ck.start({"count": 3, "mutations": []})
        ck.record(0, report(0))
        with faults.injected("corpus.checkpoint.write:1"):
            ck.record(1, report(1))  # torn mid-append
        ck.close()

        resumed = CampaignCheckpoint(path)
        resumed.load()
        assert sorted(resumed.completed()) == [0]  # torn record dropped
        resumed.record(2, report(2))  # append lands after the heal
        resumed.close()
        final = CampaignCheckpoint(path)
        final.load()
        assert sorted(final.completed()) == [0, 2]

    def test_fsck_tree_covers_all_stores(self, tmp_path):
        root = str(tmp_path)
        store = Corpus(root)
        with faults.injected("corpus.store.write:1"):
            store.add(_entry(0))
        # a rotten warm-cache entry
        warm_dir = os.path.join(root, "warm-cache")
        os.makedirs(warm_dir)
        with open(os.path.join(warm_dir, "bad.json"), "w") as handle:
            handle.write('{"sha": "0000000000000000", "win": []}')
        report = fsck_tree(root)
        assert not report["clean"]
        assert len(report["entries"]["corrupt"]) == 1
        assert report["warm_cache"]["corrupt"] == ["bad.json"]
        repaired = fsck_tree(root, repair=True)
        assert repaired["clean"]
        assert fsck_tree(root)["clean"]

    def test_fsck_cli_exit_codes(self, tmp_path):
        root = str(tmp_path)
        store = Corpus(root)
        with faults.injected("corpus.store.write:1"):
            store.add(_entry(0))
        env = dict(os.environ, PYTHONPATH=SRC)
        dirty = subprocess.run(
            [sys.executable, "-m", "repro.corpus", "--fsck", root],
            capture_output=True, text=True, env=env,
        )
        assert dirty.returncode == 1, dirty.stdout
        repair = subprocess.run(
            [sys.executable, "-m", "repro.corpus", "--fsck", root,
             "--repair"],
            capture_output=True, text=True, env=env,
        )
        assert repair.returncode == 0, repair.stdout
        assert json.loads(repair.stdout)["clean"]

    def test_warm_cache_corrupt_entry_is_cache_miss(self, tmp_path):
        from repro.game.warm import WinSetCache

        cache = WinSetCache(directory=str(tmp_path))
        with faults.injected("warm.cache.write:1"):
            cache.store("spec-key", {"win": [1, 2, 3]})
        fresh = WinSetCache(directory=str(tmp_path))
        assert fresh.load("spec-key") is None  # quarantined, not served
        assert counts().get("solver.warm_corrupt_entries", 0) >= 1


# ----------------------------------------------------------------------
# Server loopback under faults
# ----------------------------------------------------------------------


def _imp():
    from repro.models.smartlight import smartlight_plant
    from repro.semantics.system import System
    from repro.testing.implementation import EagerPolicy, SimulatedImplementation

    return SimulatedImplementation(System(smartlight_plant()), EagerPolicy())


SPEC = {"model": "smartlight"}


class TestServerDegradation:
    def test_idle_timeout_is_fail_sound(self):
        from repro.server.client import IUTClient
        from repro.server.server import ServerConfig, TestServer

        async def go():
            async with TestServer(ServerConfig(idle_timeout=0.3)) as server:
                host, port = server.address
                client = await IUTClient.connect(host, port)
                await client._send({"type": "hello", "spec": SPEC})
                frames = []
                while (frame := await client._read()) is not None:
                    frames.append(frame)
                await client.close()
                assert len(server.registry) == 0
                return frames

        frames = sync(go())
        stalled = [f for f in frames if f.get("stalled")]
        assert stalled and stalled[0]["verdict"] == "inconclusive"
        assert counts().get("server.idle_timeouts") == 1

    def test_ping_pong_heartbeat(self):
        from repro.server.client import IUTClient
        from repro.server.server import ServerConfig, TestServer

        async def go():
            async with TestServer(ServerConfig(idle_timeout=0.5)) as server:
                host, port = server.address
                client = await IUTClient.connect(host, port)
                for _ in range(3):
                    assert (await client.ping())["type"] == "pong"
                frame = await client.run_session(_imp(), SPEC)
                await client.close()
                return frame

        frame = sync(go())
        assert frame["type"] == "verdict" and frame["verdict"] == "pass"
        assert counts().get("server.pings") == 3

    def test_injected_drop_releases_session(self):
        from repro.server.client import IUTClient
        from repro.server.server import ServerConfig, TestServer

        async def go():
            with faults.injected("server.conn.drop:2"):
                async with TestServer(ServerConfig()) as server:
                    host, port = server.address
                    client = await IUTClient.connect(host, port)
                    frame = await client.run_session(_imp(), SPEC)
                    await client.close()
                    for _ in range(50):
                        if (len(server.registry) == 0
                                and server.registry.stats.disconnected):
                            break
                        await asyncio.sleep(0.02)
                    return frame, len(server.registry), server.registry.stats

        frame, live, stats = sync(go())
        assert frame["type"] == "error"
        assert live == 0, "leaked session after mid-frame disconnect"
        assert stats.disconnected == 1
        assert counts().get("server.disconnects") == 1

    def test_injected_stall_hits_idle_deadline(self, monkeypatch):
        from repro.server.client import IUTClient
        from repro.server.server import ServerConfig, TestServer

        # the injected stall must outlast the idle deadline
        monkeypatch.setenv(faults.HANG_ENV, "5")

        async def go():
            with faults.injected("server.conn.stall:2"):
                async with TestServer(
                    ServerConfig(idle_timeout=0.3)
                ) as server:
                    host, port = server.address
                    client = await IUTClient.connect(host, port)
                    frame = await client.run_session(_imp(), SPEC)
                    await client.close()
                    return frame

        frame = sync(go())
        assert frame.get("stalled") and frame["verdict"] == "inconclusive"

    def test_reconnect_with_backoff(self):
        from repro.server.client import run_remote_test
        from repro.server.server import ServerConfig, TestServer

        async def go():
            with faults.injected("server.conn.drop:2"):
                async with TestServer(ServerConfig()) as server:
                    host, port = server.address
                    return await asyncio.to_thread(
                        run_remote_test, (host, port), _imp(), SPEC,
                        retries=2, backoff=0.01,
                    )

        frame = sync(go())
        assert frame["type"] == "verdict" and frame["verdict"] == "pass"
        assert counts().get("client.reconnects", 0) >= 1

    def test_drain_evicts_to_inconclusive(self):
        from repro.server.client import IUTClient
        from repro.server.server import ServerConfig, TestServer

        async def go():
            async with TestServer(ServerConfig(drain_grace=0.3)) as server:
                host, port = server.address
                client = await IUTClient.connect(host, port)
                await client._send({"type": "hello", "spec": SPEC})
                for _ in range(100):
                    if len(server.registry) == 1:
                        break
                    await asyncio.sleep(0.02)
                stats = await server.drain()
                assert len(server.registry) == 0
                frames = []
                while (frame := await client._read()) is not None:
                    frames.append(frame)
                await client.close()
                return stats, frames

        stats, frames = sync(go())
        assert stats["evicted"] == 1
        evicted = [f for f in frames if f.get("evicted")]
        assert evicted and evicted[0]["verdict"] == "inconclusive"
        assert counts().get("server.drains") == 1

    def test_connect_retry_rides_out_late_bind(self):
        from repro.server.client import IUTClient
        from repro.server.server import ServerConfig, TestServer

        async def go():
            # grab a port, release it, connect_retry while the server
            # binds it shortly after
            probe = TestServer(ServerConfig())
            await probe.start()
            host, port = probe.address
            await probe.close()
            server = TestServer(ServerConfig(port=port))

            async def bind_late():
                await asyncio.sleep(0.3)
                await server.start()

            task = asyncio.ensure_future(bind_late())
            client = await IUTClient.connect_retry(
                host, port, attempts=8, base_delay=0.05
            )
            await task
            frame = await client.run_session(_imp(), SPEC)
            await client.close()
            await server.close()
            return frame

        frame = sync(go())
        assert frame["verdict"] == "pass"
        assert counts().get("client.connect_retries", 0) >= 1


# ----------------------------------------------------------------------
# Kernel demotion
# ----------------------------------------------------------------------

COMPILED = [
    name
    for name in dbm_backends.available_backends()
    if name != "numpy" and dbm_backends.resolve(name).compiled
]


class TestKernelDemotion:
    @pytest.mark.skipif(not COMPILED, reason="no compiled backend loads")
    @pytest.mark.parametrize("name", COMPILED)
    def test_demotion_byte_equal_to_numpy(self, name):
        import random

        backend = dbm_backends.resolve(name)
        rng = random.Random(404)
        from repro.gen.zones import random_zone

        zones = []
        while len(zones) < 5:
            zone = random_zone(rng, dim=4, max_constraints=5)
            if not zone.is_empty():
                zones.append(zone)
        stack = np.stack([z.m for z in zones])
        ref_m, got_m = stack.copy(), stack.copy()
        ref_ok = _sk._close_ref(ref_m)
        with faults.injected(f"dbm.{name}.compute:*"):
            got_ok = backend.close(got_m)
        assert np.array_equal(ref_ok, got_ok)
        assert np.array_equal(ref_m[ref_ok], got_m[ref_ok])
        got = counts()
        assert got.get("dbm.backend_demotions") == 1
        assert got.get(f"faults.fired.dbm.{name}.compute") == 1

    def test_check_faults_green(self):
        for seed in (0, 3):
            instance = generate_instance(seed, None)
            result = check_faults(instance, DiffConfig())
            assert result.status == "ok", result

    def test_check_faults_green_under_ambient_chaos(self):
        with faults.injected(
            "corpus.store.write:every=2;dbm.cext.compute:p=0.5;seed=3"
        ):
            instance = generate_instance(1, None)
            result = check_faults(instance, DiffConfig())
        assert result.status == "ok", result
