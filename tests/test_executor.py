"""End-to-end tests for Algorithm 3.1 (strategy-driven test execution).

Soundness (Thm 10): a fail verdict is only ever produced on a genuine
tioco violation.  Conforming implementations — the spec itself under any
output policy — must always pass.  Mutants that violate tioco along the
strategy's path must fail.
"""

from fractions import Fraction

import pytest

from repro.game import Strategy, solve_reachability_game
from repro.models.smartlight import smartlight_network, smartlight_plant
from repro.semantics.system import System
from repro.tctl import parse_query
from repro.testing import (
    EagerPolicy,
    LazyPolicy,
    QuiescentPolicy,
    RandomPolicy,
    SimulatedImplementation,
    execute_test,
)
from repro.testing.mutants import (
    drop_edge,
    retarget_edge,
    shift_guard_constant,
    swap_output_channel,
    widen_invariant,
)
from repro.testing.trace import FAIL, PASS


@pytest.fixture(scope="module")
def strategy():
    composed = System(smartlight_network())
    res = solve_reachability_game(
        composed, parse_query("control: A<> IUT.Bright"), on_the_fly=False
    )
    return Strategy(res)


@pytest.fixture(scope="module")
def spec_plant():
    return System(smartlight_plant())


ALL_POLICIES = [
    EagerPolicy(),
    LazyPolicy(),
    QuiescentPolicy(),
    RandomPolicy(0),
    RandomPolicy(1),
    RandomPolicy(2),
    RandomPolicy(3),
]


class TestConformingImplementations:
    @pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: f"{type(p).__name__}{getattr(p, '_rng', '') and ''}")
    def test_spec_as_imp_passes(self, strategy, spec_plant, policy):
        imp = SimulatedImplementation(System(smartlight_plant()), policy)
        run = execute_test(strategy, spec_plant, imp)
        assert run.verdict == PASS, str(run)

    def test_trace_reaches_bright(self, strategy, spec_plant):
        imp = SimulatedImplementation(System(smartlight_plant()), EagerPolicy())
        run = execute_test(strategy, spec_plant, imp)
        labels = [a.label for a in run.trace.actions]
        assert labels[-1] == "bright"

    def test_total_time_bounded(self, strategy, spec_plant):
        # The quick route takes at most ~8 time units.
        imp = SimulatedImplementation(System(smartlight_plant()), LazyPolicy())
        run = execute_test(strategy, spec_plant, imp)
        assert run.passed
        assert run.trace.total_time <= Fraction(12)


class TestMutantDetection:
    def run_mutant(self, strategy, spec_plant, mutant_net, policy=None):
        imp = SimulatedImplementation(System(mutant_net), policy or EagerPolicy())
        return execute_test(strategy, spec_plant, imp)

    def test_wrong_output_fails(self, strategy, spec_plant):
        # L1 answers bright! instead of dim! — wrong output action.
        mutant = swap_output_channel(
            smartlight_plant(), "bright", automaton="IUT", source="L1", sync="dim!"
        )
        run = self.run_mutant(strategy, spec_plant, mutant)
        assert run.verdict == FAIL
        assert "bright" in run.reason

    def test_too_late_output_fails(self, strategy, spec_plant):
        # The synthesized strategy drives Off -> L1 -> L6 -> Bright; L6 in
        # the mutant may linger 2 time units longer than the spec allows.
        mutant = widen_invariant(smartlight_plant(), "IUT", "L6", +2)
        run = self.run_mutant(strategy, spec_plant, mutant, LazyPolicy())
        assert run.verdict == FAIL
        assert "quiescent" in run.reason

    def test_missing_output_fails(self, strategy, spec_plant):
        # Dropping L6 -> Bright removes the forced bright! on the
        # strategy's path; the mutant just sits there and times out
        # against the spec's quiescence bound.
        mutant = drop_edge(
            smartlight_plant(), automaton="IUT", source="L6", sync="bright!"
        )
        run = self.run_mutant(strategy, spec_plant, mutant, QuiescentPolicy())
        assert run.verdict == FAIL

    def test_off_path_late_mutant_passes(self, strategy, spec_plant):
        # The same widening on L2 is off the strategy's path: targeted
        # testing does not exercise it, so the verdict is pass.
        mutant = widen_invariant(smartlight_plant(), "IUT", "L2", +2)
        run = self.run_mutant(strategy, spec_plant, mutant, LazyPolicy())
        assert run.verdict == PASS

    def test_wrong_target_state_fails_eventually(self, strategy, spec_plant):
        # L2's bright! goes back to Off: the observable output is correct
        # once, but subsequent behaviour diverges. The targeted strategy
        # reaches its goal on the first bright!, so this mutant PASSES the
        # TP-targeted test — faults outside the purpose go unnoticed
        # (targeted testing, paper §2.4).
        mutant = retarget_edge(
            smartlight_plant(), "Off", automaton="IUT", source="L2", sync="bright!"
        )
        run = self.run_mutant(strategy, spec_plant, mutant)
        assert run.verdict == PASS

    def test_shifted_guard_may_pass(self, strategy, spec_plant):
        # Tidle off by one: only observable around x == 19..20; the quick
        # strategy path never goes there, so the verdict is pass.
        mutant = shift_guard_constant(
            smartlight_plant(), -1, automaton="IUT", source="Off", target="L5"
        )
        run = self.run_mutant(strategy, spec_plant, mutant)
        assert run.verdict == PASS


class TestSoundness:
    """Thm 10: fail implies non-conformance — no false alarms."""

    @pytest.mark.parametrize("seed", range(12))
    def test_no_false_alarms_random_policies(self, strategy, spec_plant, seed):
        imp = SimulatedImplementation(
            System(smartlight_plant()), RandomPolicy(seed)
        )
        run = execute_test(strategy, spec_plant, imp)
        assert run.verdict == PASS, f"false alarm: {run}"

    def test_verdict_reproducible(self, strategy, spec_plant):
        runs = []
        for _ in range(2):
            imp = SimulatedImplementation(
                System(smartlight_plant()), RandomPolicy(5)
            )
            runs.append(str(execute_test(strategy, spec_plant, imp)))
        assert runs[0] == runs[1]


class TestLepExecution:
    def test_tp1_execution_passes(self):
        from repro.models.lep import TP1, lep_network, lep_plant

        composed = System(lep_network(3))
        res = solve_reachability_game(composed, parse_query(TP1), time_limit=60)
        strategy = Strategy(res)
        spec = System(lep_plant(3))
        imp = SimulatedImplementation(System(lep_plant(3)), EagerPolicy())
        run = execute_test(strategy, spec, imp)
        assert run.passed, str(run)

    def test_tp1_execution_with_lazy_plant(self):
        from repro.models.lep import TP1, lep_network, lep_plant

        composed = System(lep_network(3))
        res = solve_reachability_game(composed, parse_query(TP1), time_limit=60)
        strategy = Strategy(res)
        spec = System(lep_plant(3))
        imp = SimulatedImplementation(System(lep_plant(3)), LazyPolicy())
        run = execute_test(strategy, spec, imp)
        assert run.passed, str(run)
