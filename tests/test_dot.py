"""Tests for DOT export (repro.ta.dot)."""

import pytest

from repro.game import Strategy, TwoPhaseSolver
from repro.models.smartlight import smartlight_network, smartlight_plant
from repro.semantics.system import System
from repro.ta.dot import automaton_to_dot, network_to_dot, strategy_to_dot
from repro.tctl import parse_query


@pytest.fixture(scope="module")
def plant():
    return smartlight_plant()


class TestAutomatonDot:
    def test_contains_all_locations(self, plant):
        dot = automaton_to_dot(plant.automaton("IUT"), plant)
        for name in ("Off", "Dim", "Bright", "L1", "L5"):
            assert f'IUT_{name}"' in dot

    def test_initial_is_doublecircle(self, plant):
        dot = automaton_to_dot(plant.automaton("IUT"), plant)
        off_line = [l for l in dot.splitlines() if '"IUT_Off"' in l and "shape" in l][0]
        assert "doublecircle" in off_line

    def test_invariants_in_labels(self, plant):
        dot = automaton_to_dot(plant.automaton("IUT"), plant)
        assert "Tp <= 2" in dot

    def test_controllability_styles(self, plant):
        dot = automaton_to_dot(plant.automaton("IUT"), plant)
        # touch? edges are controllable (solid), outputs dashed.
        touch_lines = [l for l in dot.splitlines() if "touch?" in l]
        assert touch_lines and all("solid" in l for l in touch_lines)
        dim_lines = [l for l in dot.splitlines() if "dim!" in l]
        assert dim_lines and all("dashed" in l for l in dim_lines)

    def test_valid_digraph_syntax(self, plant):
        dot = automaton_to_dot(plant.automaton("IUT"), plant)
        assert dot.startswith("digraph")
        assert dot.count("{") == dot.count("}")


class TestNetworkDot:
    def test_clusters_per_automaton(self):
        dot = network_to_dot(smartlight_network())
        assert "cluster_IUT" in dot
        assert "cluster_User" in dot
        assert dot.count("{") == dot.count("}")

    def test_committed_locations_marked(self):
        from repro.models.lep import lep_plant

        dot = network_to_dot(lep_plant(3))
        assert "ffdddd" in dot  # committed fill colour


class TestStrategyDot:
    def test_strategy_graph(self):
        arena = System(smartlight_network())
        result = TwoPhaseSolver(arena, parse_query("control: A<> IUT.Bright")).solve()
        dot = strategy_to_dot(Strategy(result))
        assert "IUT.Off" in dot
        assert "(goal)" in dot
        assert "touch" in dot
        assert dot.count("{") == dot.count("}")


class TestInterfacePartitionDot:
    @staticmethod
    def composed_plant():
        from repro.ta.builder import NetworkBuilder

        net = NetworkBuilder("pipeline")
        net.input_channel("go")
        net.output_channel("h", "fin")
        net.interface("go", "fin")
        a = net.automaton("A")
        a.location("Idle", initial=True)
        a.location("Done")
        a.edge("Idle", "Done", sync="go?")
        a.edge("Done", "Done", sync="h!")
        b = net.automaton("B")
        b.location("Wait", initial=True)
        b.edge("Wait", "Wait", sync="h?")
        b.edge("Wait", "Wait", sync="fin!")
        return net.build()

    def test_boundary_edges_bold_internalised_dashed_grey(self):
        network = self.composed_plant()
        dot = network_to_dot(network)
        lines = {line for line in dot.splitlines() if "->" in line}
        go_line = next(line for line in lines if "go?" in line)
        h_lines = [line for line in lines if "h!" in line or "h?" in line]
        fin_line = next(line for line in lines if "fin!" in line)
        assert "penwidth=2" in go_line and "penwidth=2" in fin_line
        for line in h_lines:
            assert "style=dashed" in line and "#888888" in line
            assert "penwidth" not in line

    def test_partition_caption(self):
        dot = network_to_dot(self.composed_plant())
        assert "boundary: fin, go" in dot
        assert "internal: h" in dot

    def test_undeclared_networks_render_unchanged(self):
        dot = network_to_dot(smartlight_network())
        assert "boundary:" not in dot
        assert "#888888" not in dot
