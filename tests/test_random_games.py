"""Randomized whole-solver correctness checks on generated TIOGAs.

Instances come from :mod:`repro.gen` (the ``random`` scenario family, the
generalization of the private generator this file used to carry).  For
each random small game:

* **fixpoint check** — after the solver converges, re-running the update
  on every node must not grow any winning set (the computed sets really
  are a fixpoint of the documented equation);
* **solver agreement** — on-the-fly and two-phase solvers give the same
  verdict;
* **strategy realizability** — if the game is won, the extracted strategy
  beats a random adversarial plant within a step budget;
* **soundness of loss** — if the game is lost, plain reachability of the
  goal may still hold (losing must come from uncontrollability, not from
  unreachability bugs) whenever some run reaches the goal.
"""

import random
from fractions import Fraction

import pytest

from repro.game import OnTheFlySolver, Strategy, TwoPhaseSolver, Verdictish
from repro.gen import generate_instance
from repro.graph import check_reachable
from repro.semantics.system import System
from repro.tctl import GoalPredicate, parse_query

SEEDS = list(range(24))


def random_game(seed: int):
    """The arena and query of a generated ``random``-family instance."""
    instance = generate_instance(seed, "random")
    return instance.arena, parse_query(instance.query)


@pytest.mark.parametrize("seed", SEEDS)
def test_solvers_agree(seed):
    net, query = random_game(seed)
    two = TwoPhaseSolver(System(net), query).solve()
    otf = OnTheFlySolver(System(net), query).solve()
    assert two.winning == otf.winning, f"seed {seed}: solver verdicts differ"


@pytest.mark.parametrize("seed", SEEDS)
def test_winning_sets_are_a_fixpoint(seed):
    net, query = random_game(seed)
    solver = TwoPhaseSolver(System(net), query)
    result = solver.solve()
    for node in result.graph.nodes:
        recomputed = solver._update(node)
        current = solver.win_fed(node)
        assert current.includes(recomputed), (
            f"seed {seed}: node {node.id} win set not a fixpoint"
        )
        assert recomputed.includes(current), (
            f"seed {seed}: node {node.id} win set shrinks on re-update"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_goal_inside_win_inside_zone(seed):
    from repro.dbm import Federation

    net, query = random_game(seed)
    solver = TwoPhaseSolver(System(net), query)
    result = solver.solve()
    for node in result.graph.nodes:
        win = result.win_of(node)
        zone_fed = Federation.from_zone(node.zone)
        assert zone_fed.includes(win)
        assert win.includes(solver.goal_fed(node))


@pytest.mark.parametrize("seed", SEEDS)
def test_won_games_are_realizable(seed):
    net, query = random_game(seed)
    sys_ = System(net)
    result = TwoPhaseSolver(sys_, query).solve()
    if not result.winning:
        # Loss must not be a reachability artifact: if the goal is not
        # even reachable, losing is trivially right; otherwise it must
        # come from uncontrollability, which simulation cannot refute
        # cheaply — only sanity-check reachability consistency.
        goal = GoalPredicate(sys_, query.predicate)
        check_reachable(sys_, goal.federation)  # must not crash
        return
    strategy = Strategy(result)
    for sim_seed in range(3):
        assert _simulate(sys_, strategy, sim_seed), (
            f"seed {seed}: strategy failed against opponent {sim_seed}"
        )


def _simulate(sys_, strategy, sim_seed, max_steps=80):
    rng = random.Random(sim_seed)
    state = sys_.initial_concrete()
    for _ in range(max_steps):
        decision = strategy.decide(state)
        if decision.kind == Verdictish.DONE:
            return True
        if decision.kind == Verdictish.LOST:
            return False
        if decision.kind == Verdictish.FIRE:
            nxt = sys_.fire(state, decision.move)
            if nxt is None:
                return False
            state = nxt
            continue
        horizon = decision.delay
        bound, _ = sys_.max_delay(state)
        if horizon is None:
            horizon = bound if bound is not None else Fraction(6)
        if bound is not None and horizon > bound:
            horizon = bound
        options = []
        for move, interval in sys_.move_options(state):
            if move.controllable:
                continue
            at = interval.pick()
            if at <= horizon:
                options.append((move, at))
        if options and rng.random() < 0.6:
            move, at = rng.choice(options)
            nxt = sys_.fire(state.delayed(at), move)
            if nxt is None:
                return False
            state = nxt
        else:
            state = state.delayed(horizon)
    return False
