"""Randomized whole-solver correctness checks on generated TIOGAs.

For each random small game:

* **fixpoint check** — after the solver converges, re-running the update
  on every node must not grow any winning set (the computed sets really
  are a fixpoint of the documented equation);
* **solver agreement** — on-the-fly and two-phase solvers give the same
  verdict;
* **strategy realizability** — if the game is won, the extracted strategy
  beats a random adversarial plant within a step budget;
* **soundness of loss** — if the game is lost, plain reachability of the
  goal may still hold (losing must come from uncontrollability, not from
  unreachability bugs) whenever some run reaches the goal.
"""

import random
from fractions import Fraction

import pytest

from repro.game import OnTheFlySolver, Strategy, TwoPhaseSolver, Verdictish
from repro.graph import check_reachable
from repro.semantics.system import System
from repro.ta import NetworkBuilder
from repro.tctl import GoalPredicate, parse_query


def random_game(seed: int):
    """A random 4-location plant with one clock, plus a permissive env.

    Structure kept legal by construction: guards are intervals, invariants
    are upper bounds >= the reachable resets, the goal location is 'g3'.
    """
    rng = random.Random(seed)
    net = NetworkBuilder(f"rand{seed}")
    net.clock("x")
    net.input_channel("i0", "i1")
    net.output_channel("o0", "o1")
    p = net.automaton("P")
    names = ["g0", "g1", "g2", "g3"]
    for idx, name in enumerate(names):
        invariant = None
        if idx in (1, 2) and rng.random() < 0.7:
            invariant = f"x <= {rng.randint(2, 5)}"
        p.location(name, invariant=invariant, initial=(idx == 0))
    edge_count = rng.randint(4, 8)
    for _ in range(edge_count):
        src = rng.choice(names)
        dst = rng.choice(names)
        lo = rng.randint(0, 3)
        hi = lo + rng.randint(0, 3)
        guard = f"x >= {lo} && x <= {hi}" if rng.random() < 0.8 else None
        channel = rng.choice(["i0", "i1", "o0", "o1"])
        sync = f"{channel}{'?' if channel.startswith('i') else '!'}"
        assign = "x := 0" if rng.random() < 0.6 else None
        p.edge(src, dst, guard=guard, sync=sync, assign=assign)
    # Make inputs harmless everywhere (ignore loops) for enabledness.
    for name in names:
        for channel in ("i0", "i1"):
            p.edge(name, name, sync=f"{channel}?")
    e = net.automaton("E")
    e.location("e", initial=True)
    for channel in ("i0", "i1"):
        e.edge("e", "e", sync=f"{channel}!")
    for channel in ("o0", "o1"):
        e.edge("e", "e", sync=f"{channel}?")
    return net.build()


QUERY = "control: A<> P.g3"
SEEDS = list(range(24))


@pytest.mark.parametrize("seed", SEEDS)
def test_solvers_agree(seed):
    net = random_game(seed)
    two = TwoPhaseSolver(System(net), parse_query(QUERY)).solve()
    otf = OnTheFlySolver(System(net), parse_query(QUERY)).solve()
    assert two.winning == otf.winning, f"seed {seed}: solver verdicts differ"


@pytest.mark.parametrize("seed", SEEDS)
def test_winning_sets_are_a_fixpoint(seed):
    net = random_game(seed)
    solver = TwoPhaseSolver(System(net), parse_query(QUERY))
    result = solver.solve()
    for node in result.graph.nodes:
        recomputed = solver._update(node)
        current = solver.win_fed(node)
        assert current.includes(recomputed), (
            f"seed {seed}: node {node.id} win set not a fixpoint"
        )
        assert recomputed.includes(current), (
            f"seed {seed}: node {node.id} win set shrinks on re-update"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_goal_inside_win_inside_zone(seed):
    from repro.dbm import Federation

    net = random_game(seed)
    solver = TwoPhaseSolver(System(net), parse_query(QUERY))
    result = solver.solve()
    for node in result.graph.nodes:
        win = result.win_of(node)
        zone_fed = Federation.from_zone(node.zone)
        assert zone_fed.includes(win)
        assert win.includes(solver.goal_fed(node))


@pytest.mark.parametrize("seed", SEEDS)
def test_won_games_are_realizable(seed):
    net = random_game(seed)
    sys_ = System(net)
    result = TwoPhaseSolver(sys_, parse_query(QUERY)).solve()
    if not result.winning:
        # Loss must not be a reachability artifact: if the goal is not
        # even reachable, losing is trivially right; otherwise it must
        # come from uncontrollability, which simulation cannot refute
        # cheaply — only sanity-check reachability consistency.
        goal = GoalPredicate(sys_, parse_query("E<> P.g3").predicate)
        check_reachable(sys_, goal.federation)  # must not crash
        return
    strategy = Strategy(result)
    for sim_seed in range(3):
        assert _simulate(sys_, strategy, sim_seed), (
            f"seed {seed}: strategy failed against opponent {sim_seed}"
        )


def _simulate(sys_, strategy, sim_seed, max_steps=80):
    rng = random.Random(sim_seed)
    state = sys_.initial_concrete()
    for _ in range(max_steps):
        decision = strategy.decide(state)
        if decision.kind == Verdictish.DONE:
            return True
        if decision.kind == Verdictish.LOST:
            return False
        if decision.kind == Verdictish.FIRE:
            nxt = sys_.fire(state, decision.move)
            if nxt is None:
                return False
            state = nxt
            continue
        horizon = decision.delay
        bound, _ = sys_.max_delay(state)
        if horizon is None:
            horizon = bound if bound is not None else Fraction(6)
        if bound is not None and horizon > bound:
            horizon = bound
        options = []
        for move in sys_.moves_from(state.locs, state.vars):
            if move.controllable:
                continue
            interval = sys_.enabled_interval(state, move)
            if interval is None:
                continue
            at = interval.pick()
            if at <= horizon:
                options.append((move, at))
        if options and rng.random() < 0.6:
            move, at = rng.choice(options)
            nxt = sys_.fire(state.delayed(at), move)
            if nxt is None:
                return False
            state = nxt
        else:
            state = state.delayed(horizon)
    return False
