"""Unit tests for the encoded-bound arithmetic (repro.dbm.bounds)."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dbm.bounds import (
    INF,
    LE_ZERO,
    LT_ZERO,
    add_bounds,
    bound,
    bound_as_string,
    bound_value,
    decode,
    is_strict,
    le,
    lt,
    negate,
    satisfies,
)


class TestEncoding:
    def test_le_encoding(self):
        assert le(3) == (3 << 1) | 1
        assert decode(le(3)) == (3, False)

    def test_lt_encoding(self):
        assert lt(3) == 3 << 1
        assert decode(lt(3)) == (3, True)

    def test_zero_constants(self):
        assert le(0) == LE_ZERO
        assert lt(0) == LT_ZERO

    def test_negative_values(self):
        assert decode(le(-7)) == (-7, False)
        assert decode(lt(-7)) == (-7, True)

    def test_bound_constructor_matches_le_lt(self):
        assert bound(5, strict=False) == le(5)
        assert bound(5, strict=True) == lt(5)

    def test_bound_value(self):
        assert bound_value(le(9)) == 9
        assert bound_value(lt(-2)) == -2

    def test_is_strict(self):
        assert is_strict(lt(1))
        assert not is_strict(le(1))

    def test_order_tighter_is_smaller(self):
        # (2, <) < (2, <=) < (3, <) < (3, <=) < INF
        assert lt(2) < le(2) < lt(3) < le(3) < INF


class TestAddition:
    def test_le_plus_le(self):
        assert add_bounds(le(2), le(3)) == le(5)

    def test_lt_makes_strict(self):
        assert add_bounds(lt(2), le(3)) == lt(5)
        assert add_bounds(le(2), lt(3)) == lt(5)
        assert add_bounds(lt(2), lt(3)) == lt(5)

    def test_inf_saturates(self):
        assert add_bounds(INF, le(3)) == INF
        assert add_bounds(le(3), INF) == INF
        assert add_bounds(INF, INF) == INF

    def test_negative_sum(self):
        assert add_bounds(le(-5), le(2)) == le(-3)

    @given(
        st.integers(-1000, 1000),
        st.integers(-1000, 1000),
        st.booleans(),
        st.booleans(),
    )
    def test_addition_matches_semantics(self, a, b, sa, sb):
        enc = add_bounds(bound(a, sa), bound(b, sb))
        value, strict = decode(enc)
        assert value == a + b
        assert strict == (sa or sb)


class TestNegation:
    def test_negate_le(self):
        # not (x - y <= 3)  is  y - x < -3
        assert negate(le(3)) == lt(-3)

    def test_negate_lt(self):
        # not (x - y < 3)  is  y - x <= -3
        assert negate(lt(3)) == le(-3)

    def test_negate_involutive(self):
        for enc in (le(4), lt(4), le(-4), lt(0)):
            assert negate(negate(enc)) == enc

    def test_negate_inf_raises(self):
        with pytest.raises(ValueError):
            negate(INF)

    @given(st.integers(-100, 100), st.booleans(), st.fractions(-150, 150))
    def test_negation_partitions_the_line(self, value, strict, diff):
        """Every difference satisfies exactly one of (c, ¬c)."""
        enc = bound(value, strict)
        neg = negate(enc)
        assert satisfies(diff, enc) != satisfies(-diff, neg)


class TestSatisfies:
    def test_le_boundary(self):
        assert satisfies(3, le(3))
        assert not satisfies(3, lt(3))
        assert satisfies(Fraction(5, 2), lt(3))

    def test_inf_always(self):
        assert satisfies(10**9, INF)

    def test_fractions(self):
        assert satisfies(Fraction(7, 2), le(4))
        assert not satisfies(Fraction(9, 2), le(4))


class TestPrinting:
    def test_single_clock(self):
        assert bound_as_string(le(3), "x") == "x <= 3"
        assert bound_as_string(lt(3), "x") == "x < 3"

    def test_difference(self):
        assert bound_as_string(le(-1), "x", "y") == "x - y <= -1"

    def test_inf(self):
        assert "inf" in bound_as_string(INF, "x")
