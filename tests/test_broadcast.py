"""Broadcast-channel semantics: model layer, moves, monitors, solver.

UPPAAL-style broadcast: one emitter, every automaton with an enabled
receiving edge participates, emission never blocks on missing receivers,
and receiving edges may not carry clock guards (the participating set
must be a function of the discrete state).
"""

from fractions import Fraction

import pytest

from repro.semantics.system import System
from repro.ta.builder import NetworkBuilder
from repro.ta.dot import network_to_dot
from repro.ta.model import BROADCAST, ModelError
from repro.tctl import parse_query
from repro.game import OnTheFlySolver, TwoPhaseSolver
from repro.testing import RelativizedMonitor, RtiocoMonitor, TiocoMonitor


def publisher_net(*, subscribers=2, env=True, int_guard=None):
    """Publisher P casting once on ``b`` to ``subscribers`` listeners."""
    net = NetworkBuilder("bc")
    net.clock("x")
    net.int_var("got", 0, subscribers + 1, 0)
    net.int_var("arm", 0, 1, 1)
    net.broadcast_channel("b")
    net.input_channel("go")
    p = net.automaton("P")
    p.location("Idle", initial=True)
    p.location("Prep", "x <= 3")
    p.location("Sent")
    # Without an environment there is no go!-emitter: start internally.
    p.edge("Idle", "Prep", sync="go?" if env else None, assign="x := 0")
    p.edge("Prep", "Sent", sync="b!", guard="x >= 1")
    if env:
        for loc in ("Prep", "Sent"):
            p.edge(loc, loc, sync="go?")
    for j in range(subscribers):
        s = net.automaton(f"S{j}")
        s.location("Wait", initial=True)
        s.location("Got")
        s.edge("Wait", "Got", sync="b?", guard=int_guard, assign="got := got + 1")
    if env:
        e = net.automaton("ENV")
        e.location("e", initial=True)
        e.edge("e", "e", sync="go!")
        e.edge("e", "e", sync="b?")
    return net.build()


# ----------------------------------------------------------------------
# Model layer
# ----------------------------------------------------------------------


def test_broadcast_channel_kind():
    net = publisher_net()
    channel = net.channels["b"]
    assert channel.kind == BROADCAST
    assert channel.broadcast
    assert not channel.controllable
    assert not net.channels["go"].broadcast
    assert "chan b : broadcast" in net.structural_text()


def test_broadcast_receiver_clock_guard_rejected():
    net = NetworkBuilder("bad")
    net.clock("x")
    net.broadcast_channel("b")
    a = net.automaton("A")
    a.location("l", initial=True)
    a.location("m")
    a.edge("l", "m", sync="b?", guard="x >= 1")
    with pytest.raises(ModelError, match="clock guard"):
        net.build()


def test_broadcast_emitter_clock_guard_allowed():
    publisher_net()  # emitter carries `x >= 1`; must prepare fine


def test_broadcast_dot_marks_fanout_edges():
    dot = network_to_dot(publisher_net())
    assert "penwidth=2" in dot


# ----------------------------------------------------------------------
# Closed (network) semantics
# ----------------------------------------------------------------------


def fire_go_then_cast(system):
    state = system.initial_concrete()
    (go,) = [m for m in system.moves_from(state.locs, state.vars) if m.label == "go"]
    state = system.fire(state, go)
    casts = [m for m in system.moves_from(state.locs, state.vars) if m.label == "b"]
    return state, casts


def test_broadcast_move_gathers_all_enabled_receivers():
    system = System(publisher_net(subscribers=2))
    state, casts = fire_go_then_cast(system)
    assert len(casts) == 1
    (cast,) = casts
    assert cast.direction == "output"
    assert not cast.controllable
    # Emitter first, then both subscribers and the listening ENV.
    participants = [system.automata[i].name for i, _ in cast.edges]
    assert participants == ["P", "S0", "S1", "ENV"]
    after = system.fire(state.delayed(Fraction(1)), cast)
    assert after is not None
    got_slot = system.decls.int_vars["got"].slot
    assert after.vars[got_slot] == 2  # both subscribers counted the cast


def test_broadcast_does_not_block_without_receivers():
    # arm == 0 disables every subscriber; the cast must still fire.
    system = System(publisher_net(subscribers=2, env=False, int_guard="arm == 1"))
    state = system.initial_concrete()
    arm_slot = system.decls.int_vars["arm"].slot
    disarmed = tuple(
        0 if i == arm_slot else v for i, v in enumerate(state.vars)
    )
    state = state.__class__(state.locs, disarmed, state.clocks)
    (start,) = [m for m in system.moves_from(state.locs, state.vars) if m.label == "tau"]
    state = system.fire(state, start)
    casts = [m for m in system.moves_from(state.locs, state.vars) if m.label == "b"]
    assert len(casts) == 1
    assert len(casts[0].edges) == 1  # emitter alone
    after = system.fire(state.delayed(Fraction(1)), casts[0])
    assert after is not None
    got_slot = system.decls.int_vars["got"].slot
    assert after.vars[got_slot] == 0


def test_broadcast_enumerates_receiver_choices_per_automaton():
    net = NetworkBuilder("choices")
    net.broadcast_channel("b")
    a = net.automaton("A")
    a.location("l", initial=True)
    a.location("m")
    a.edge("l", "m", sync="b!")
    r = net.automaton("R")
    r.location("l", initial=True)
    r.location("p")
    r.location("q")
    r.edge("l", "p", sync="b?")
    r.edge("l", "q", sync="b?")
    system = System(net.build())
    state = system.initial_concrete()
    moves = system.moves_from(state.locs, state.vars)
    # Two enabled receiving edges in one automaton: one combination each.
    assert sorted(len(m.edges) for m in moves) == [2, 2]
    targets = {system.target_locs(state.locs, m) for m in moves}
    assert len(targets) == 2


def test_broadcast_committed_rule():
    net = NetworkBuilder("committed")
    net.broadcast_channel("b")
    net.output_channel("o")
    a = net.automaton("A")
    a.location("l", initial=True)
    a.location("m")
    a.edge("l", "m", sync="b!")
    c = net.automaton("C")
    c.location("c0", initial=True, committed=True)
    c.location("c1")
    c.edge("c0", "c1")
    system = System(net.build())
    state = system.initial_concrete()
    labels = [m.label for m in system.moves_from(state.locs, state.vars)]
    # C is committed and does not participate in b: the cast must wait.
    assert labels == ["tau"]
    state = system.fire(state, system.moves_from(state.locs, state.vars)[0])
    labels = [m.label for m in system.moves_from(state.locs, state.vars)]
    assert labels == ["b"]


def test_broadcast_committed_receiver_participates():
    net = NetworkBuilder("committed-recv")
    net.broadcast_channel("b")
    a = net.automaton("A")
    a.location("l", initial=True)
    a.location("m")
    a.edge("l", "m", sync="b!")
    c = net.automaton("C")
    c.location("c0", initial=True, committed=True)
    c.location("c1")
    c.edge("c0", "c1", sync="b?")
    system = System(net.build())
    state = system.initial_concrete()
    moves = system.moves_from(state.locs, state.vars)
    # The committed automaton receives the cast, so the move is enabled.
    assert [m.label for m in moves] == ["b"]
    assert len(moves[0].edges) == 2


# ----------------------------------------------------------------------
# Open (component) semantics + monitors
# ----------------------------------------------------------------------


def test_broadcast_open_directions():
    net = NetworkBuilder("open")
    net.broadcast_channel("b")
    a = net.automaton("A")
    a.location("l", initial=True)
    a.location("m")
    a.edge("l", "m", sync="b!")
    a.edge("l", "l", sync="b?")
    system = System(net.build())
    state = system.initial_concrete()
    by_direction = {
        m.direction: m for m in system.open_moves_from(state.locs, state.vars)
    }
    assert by_direction["output"].label == "b"
    assert not by_direction["output"].controllable
    assert by_direction["input"].label == "b"
    assert by_direction["input"].controllable


def test_tioco_monitor_accepts_broadcast_output():
    plant = NetworkBuilder("plant")
    plant.clock("x")
    plant.broadcast_channel("b")
    plant.input_channel("go")
    p = plant.automaton("P")
    p.location("Idle", initial=True)
    p.location("Prep", "x <= 2")
    p.location("Sent")
    p.edge("Idle", "Prep", sync="go?", assign="x := 0")
    p.edge("Prep", "Sent", sync="b!")
    for loc in ("Prep", "Sent"):
        p.edge(loc, loc, sync="go?")
    monitor = TiocoMonitor(System(plant.build()))
    assert monitor.observe("go", "input")
    assert monitor.allowed_outputs() == ["b"]
    assert monitor.advance(Fraction(1))
    assert monitor.observe("b", "output")
    assert monitor.ok


def test_rtioco_monitor_accepts_broadcast_output():
    assert RtiocoMonitor is RelativizedMonitor
    composed = publisher_net(subscribers=1)
    monitor = RelativizedMonitor(System(composed))
    go = [
        m
        for m, _ in System(composed).enabled_now(
            monitor.state, directions=("input",)
        )
        if m.label == "go"
    ]
    assert monitor.observe_move(go[0])
    assert monitor.advance(Fraction(1))
    assert monitor.allowed_outputs() == ["b"]
    assert monitor.observe_output("b")
    assert monitor.ok


# ----------------------------------------------------------------------
# Game solving over broadcast arenas
# ----------------------------------------------------------------------


def test_determinism_check_flags_same_automaton_receiver_choice():
    """Parallel receivers in different automata are fan-out (exempt from
    the determinism hypothesis), but two enabled receiving edges in the
    *same* automaton are a genuine nondeterministic choice and must be
    flagged by the open-system check."""
    from repro.ta.validate import check_determinism

    def plant(split_receivers):
        net = NetworkBuilder("det")
        net.broadcast_channel("cast")
        net.output_channel("o")
        a = net.automaton("A")
        a.location("l", initial=True)
        a.location("m")
        a.edge("l", "m", sync="o!")
        if split_receivers:
            for j, target in enumerate(("p", "q")):
                r = net.automaton(f"R{j}")
                r.location("w", initial=True)
                r.location(target)
                r.edge("w", target, sync="cast?")
        else:
            r = net.automaton("R")
            r.location("w", initial=True)
            r.location("p")
            r.location("q")
            r.edge("w", "p", sync="cast?")
            r.edge("w", "q", sync="cast?")
        return System(net.build())

    assert check_determinism(plant(split_receivers=True)).ok
    report = check_determinism(plant(split_receivers=False))
    assert not report.ok
    assert report.issues[0].kind == "nondeterminism"


def test_broadcast_game_solvers_agree_and_win():
    net = publisher_net(subscribers=2)
    query = parse_query("control: A<> got == 2")
    two = TwoPhaseSolver(System(net), query).solve()
    otf = OnTheFlySolver(System(net), query).solve()
    # The invariant on Prep forces the cast, which reaches all listeners.
    assert two.winning
    assert otf.winning
