"""Unit and property tests for canonical DBMs (repro.dbm.dbm)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbm import DBM, le, lt
from repro.dbm.bounds import INF, LE_ZERO


from tests.zone_strategies import (
    DIM,
    big_federations,
    box,
    diagonal_zones,
    points,
    zones,
)


# ----------------------------------------------------------------------
# Construction and canonical form
# ----------------------------------------------------------------------


class TestConstruction:
    def test_universal_contains_everything(self):
        z = DBM.universal(3)
        assert z.contains([0, Fraction(0), Fraction(100)])
        assert not z.is_empty()
        assert z.is_universal()

    def test_zero_is_singleton(self):
        z = DBM.zero(3)
        assert z.contains([0, Fraction(0), Fraction(0)])
        assert not z.contains([0, Fraction(1, 2), Fraction(0)])

    def test_empty(self):
        z = DBM.empty(3)
        assert z.is_empty()
        assert not z
        assert not z.contains([0, Fraction(0), Fraction(0)])

    def test_contradiction_is_empty(self):
        z = DBM.from_constraints(2, [(1, 0, le(2)), (0, 1, le(-3))])  # x<=2, x>=3
        assert z.is_empty()

    def test_boundary_meets(self):
        z = DBM.from_constraints(2, [(1, 0, le(2)), (0, 1, le(-2))])  # x == 2
        assert not z.is_empty()
        assert z.contains([0, Fraction(2)])

    def test_strict_boundary_empty(self):
        z = DBM.from_constraints(2, [(1, 0, lt(2)), (0, 1, le(-2))])  # x<2, x>=2
        assert z.is_empty()

    def test_negative_clock_unsatisfiable(self):
        z = DBM.from_constraints(2, [(1, 0, le(-1))])  # x <= -1
        assert z.is_empty()

    def test_canonical_propagates_diagonals(self):
        # x - y == 5, y >= 2  =>  x >= 7
        z = DBM.from_constraints(
            3, [(1, 2, le(5)), (2, 1, le(-5)), (0, 2, le(-2))]
        )
        assert not z.contains([0, Fraction(6), Fraction(1)])
        assert z.contains([0, Fraction(7), Fraction(2)])
        # Canonical form exposes the derived lower bound on x.
        assert int(z.m[0, 1]) == le(-7)


class TestEqualityInclusion:
    def test_equal_canonical_forms(self):
        a = box(3, [(0, 5), (0, 5)])
        b = box(3, [(0, 5), (0, 5)])
        assert a.equals(b)
        assert hash(a) == hash(b)

    def test_inclusion(self):
        small = box(2, [(2, 3)])
        big = box(2, [(0, 10)])
        assert big.includes(small)
        assert not small.includes(big)

    def test_inclusion_reflexive(self):
        z = box(2, [(1, 4)])
        assert z.includes(z)

    def test_empty_included_in_all(self):
        assert box(2, [(1, 2)]).includes(DBM.empty(2))

    @given(zones(), zones())
    @settings(max_examples=200, deadline=None)
    def test_inclusion_agrees_with_sampling(self, a, b):
        if a.is_empty():
            assert b.includes(a)
            return
        if b.includes(a):
            point = a.sample()
            assert b.contains(point)


# ----------------------------------------------------------------------
# Timed operators
# ----------------------------------------------------------------------


class TestUpDown:
    def test_up_removes_upper_bounds(self):
        z = box(2, [(1, 3)]).up()
        assert z.contains([0, Fraction(100)])
        assert not z.contains([0, Fraction(1, 2)])

    def test_down_keeps_upper_bounds(self):
        z = box(2, [(2, 3)]).down()
        assert z.contains([0, Fraction(0)])
        assert not z.contains([0, Fraction(4)])

    def test_up_preserves_differences(self):
        z = DBM.zero(3).up()  # diagonal x == y
        assert z.contains([0, Fraction(5), Fraction(5)])
        assert not z.contains([0, Fraction(5), Fraction(4)])

    @given(zones())
    @settings(max_examples=150, deadline=None)
    def test_up_down_inflate(self, z):
        assert z.up().includes(z)
        assert z.down().includes(z)

    @given(zones())
    @settings(max_examples=150, deadline=None)
    def test_up_idempotent(self, z):
        assert z.up().up().equals(z.up())
        assert z.down().down().equals(z.down())

    @given(zones(), points(), st.integers(0, 10))
    @settings(max_examples=200, deadline=None)
    def test_up_semantics(self, z, p, d):
        """p in Z implies p+d in up(Z); p in up(Z) implies some p-d' in Z."""
        if z.contains(p):
            shifted = [p[0]] + [v + d for v in p[1:]]
            assert z.up().contains(shifted)

    @given(zones(), points())
    @settings(max_examples=200, deadline=None)
    def test_down_semantics_backward(self, z, p):
        if z.contains(p):
            for d in (Fraction(1, 2), Fraction(3)):
                earlier = [p[0]] + [v - d for v in p[1:]]
                if all(v >= 0 for v in earlier[1:]):
                    assert z.down().contains(earlier)


class TestResetFree:
    def test_reset_to_zero(self):
        z = box(3, [(2, 5), (3, 7)]).reset([1])
        assert z.contains([0, Fraction(0), Fraction(3)])
        assert not z.contains([0, Fraction(1), Fraction(3)])

    def test_reset_multiple(self):
        z = box(3, [(2, 5), (3, 7)]).reset([1, 2])
        assert z.contains([0, Fraction(0), Fraction(0)])

    def test_assign_constant(self):
        z = box(2, [(0, 10)]).assign_clocks([(1, 4)])
        assert z.contains([0, Fraction(4)])
        assert not z.contains([0, Fraction(3)])

    def test_free_removes_constraints(self):
        z = box(3, [(2, 5), (3, 7)]).free([1])
        assert z.contains([0, Fraction(99), Fraction(3)])
        assert not z.contains([0, Fraction(1), Fraction(8)])

    def test_reset_pred_roundtrip(self):
        target = box(3, [(0, 0), (3, 7)])  # x == 0, 3 <= y <= 7
        pred = target.reset_pred([1])
        # Any x with y in range maps into the target.
        assert pred.contains([0, Fraction(42), Fraction(5)])
        assert not pred.contains([0, Fraction(42), Fraction(8)])

    def test_reset_pred_of_unreachable_reset_is_empty(self):
        target = box(2, [(1, 2)])  # x in [1,2]: x==0 not inside
        assert target.reset_pred([1]).is_empty()

    def test_assign_pred(self):
        target = box(2, [(4, 6)])
        pred = target.assign_pred([(1, 5)])
        assert pred.contains([0, Fraction(0)])
        assert pred.contains([0, Fraction(77)])
        empty = target.assign_pred([(1, 3)])
        assert empty.is_empty()

    @given(zones(), points())
    @settings(max_examples=200, deadline=None)
    def test_reset_pred_exact(self, z, p):
        """p in reset_pred(Z) iff p[x:=0] in Z."""
        pred = z.reset_pred([1])
        mapped = list(p)
        mapped[1] = Fraction(0)
        assert pred.contains(p) == z.contains(mapped)

    @given(zones(), points(), st.integers(0, 9))
    @settings(max_examples=200, deadline=None)
    def test_assign_pred_exact(self, z, p, c):
        pred = z.assign_pred([(2, c)])
        mapped = list(p)
        mapped[2] = Fraction(c)
        assert pred.contains(p) == z.contains(mapped)


class TestIntersect:
    def test_overlap(self):
        a = box(2, [(0, 5)])
        b = box(2, [(3, 9)])
        c = a.intersect(b)
        assert c.contains([0, Fraction(4)])
        assert not c.contains([0, Fraction(2)])

    def test_disjoint(self):
        a = box(2, [(0, 2)])
        b = box(2, [(3, 9)])
        assert a.intersect(b).is_empty()

    @given(zones(), zones(), points())
    @settings(max_examples=250, deadline=None)
    def test_intersection_semantics(self, a, b, p):
        c = a.intersect(b)
        assert c.contains(p) == (a.contains(p) and b.contains(p))


class TestTighten:
    def test_tighten_matches_constrained(self):
        z = DBM.universal(3)
        via_tighten = z.tighten(1, 0, le(5)).tighten(0, 2, le(-1))
        via_constrained = z.constrained([(1, 0, le(5)), (0, 2, le(-1))])
        assert via_tighten.equals(via_constrained)

    def test_would_be_empty_after(self):
        z = box(2, [(3, 8)])
        assert z.would_be_empty_after(1, 0, le(2))  # x <= 2 contradicts x >= 3
        assert not z.would_be_empty_after(1, 0, le(5))

    @given(zones(), st.integers(0, DIM - 1), st.integers(0, DIM - 1),
           st.integers(-8, 12), st.booleans())
    @settings(max_examples=250, deadline=None)
    def test_pre_test_agrees_with_tighten(self, z, i, j, value, strict):
        if i == j:
            return
        enc = (value << 1) | (0 if strict else 1)
        assert z.would_be_empty_after(i, j, enc) == z.tighten(i, j, enc).is_empty()


class TestExtrapolate:
    def test_bounded_zone_unchanged(self):
        z = box(2, [(1, 3)])
        assert z.extrapolate([0, 10]).equals(z)

    def test_large_upper_bound_removed(self):
        z = box(2, [(0, 50)])
        ex = z.extrapolate([0, 10])
        assert ex.contains([0, Fraction(1000)])

    def test_large_lower_bound_clipped(self):
        z = box(2, [(50, 60)])
        ex = z.extrapolate([0, 10])
        # Everything above the max constant becomes indistinguishable.
        assert ex.contains([0, Fraction(11)])
        assert not ex.contains([0, Fraction(10)])

    @given(zones())
    @settings(max_examples=150, deadline=None)
    def test_extrapolation_inflates(self, z):
        assert z.extrapolate([0, 5, 5, 5]).includes(z)


class TestSample:
    @given(zones())
    @settings(max_examples=300, deadline=None)
    def test_sample_in_zone(self, z):
        point = z.sample()
        if z.is_empty():
            assert point is None
        else:
            assert z.contains(point)

    def test_sample_strict_bounds(self):
        z = DBM.from_constraints(2, [(1, 0, lt(3)), (0, 1, lt(-2))])  # 2<x<3
        p = z.sample()
        assert Fraction(2) < p[1] < Fraction(3)

    def test_sample_diagonal(self):
        z = DBM.from_constraints(
            3, [(1, 2, le(0)), (2, 1, le(0)), (1, 0, le(4)), (0, 1, le(-4))]
        )  # x == y == 4
        p = z.sample()
        assert p[1] == p[2] == Fraction(4)


class TestDiagonalZones:
    """The same semantic laws, on zones with guaranteed diagonal bands."""

    @given(diagonal_zones(), points())
    @settings(max_examples=200, deadline=None)
    def test_up_preserves_membership_along_diagonals(self, z, p):
        if z.contains(p):
            for d in (Fraction(1, 2), Fraction(3)):
                shifted = [p[0]] + [v + d for v in p[1:]]
                assert z.up().contains(shifted)

    @given(diagonal_zones(), diagonal_zones(), points())
    @settings(max_examples=200, deadline=None)
    def test_intersection_semantics(self, a, b, p):
        c = a.intersect(b)
        assert c.contains(p) == (a.contains(p) and b.contains(p))

    @given(diagonal_zones(), points())
    @settings(max_examples=200, deadline=None)
    def test_reset_pred_exact(self, z, p):
        pred = z.reset_pred([1])
        mapped = list(p)
        mapped[1] = Fraction(0)
        assert pred.contains(p) == z.contains(mapped)

    @given(diagonal_zones(), zones())
    @settings(max_examples=150, deadline=None)
    def test_inclusion_agrees_with_subtraction(self, a, b):
        from repro.dbm import subtract_zone

        assert a.includes(b) == (not subtract_zone(b, a))

    @given(diagonal_zones())
    @settings(max_examples=150, deadline=None)
    def test_sample_lies_inside(self, z):
        point = z.sample()
        if z.is_empty():
            assert point is None
        else:
            assert z.contains(point)

    @given(diagonal_zones())
    @settings(max_examples=100, deadline=None)
    def test_sample_random_lies_inside(self, z):
        import random

        rng = random.Random(1234)
        point = z.sample_random(rng)
        if z.is_empty():
            assert point is None
        else:
            assert z.contains(point)


class TestBigFederations:
    @given(big_federations(), points())
    @settings(max_examples=150, deadline=None)
    def test_compact_preserves_membership(self, f, p):
        assert f.compact().contains(p) == f.contains(p)

    @given(big_federations(), big_federations(), points())
    @settings(max_examples=150, deadline=None)
    def test_subtract_membership(self, f, g, p):
        assert f.subtract(g).contains(p) == (f.contains(p) and not g.contains(p))

    @given(big_federations(), big_federations())
    @settings(max_examples=100, deadline=None)
    def test_includes_agrees_with_subtraction(self, f, g):
        assert f.includes(g) == g.subtract(f).is_empty()

    @given(big_federations())
    @settings(max_examples=100, deadline=None)
    def test_sample_random_in_federation(self, f):
        import random

        rng = random.Random(99)
        point = f.sample_random(rng)
        if f.is_empty():
            assert point is None
        else:
            assert f.contains(point)


class TestPrinting:
    def test_true(self):
        assert DBM.universal(2).to_string(["0", "x"]) == "true"

    def test_false(self):
        assert DBM.empty(2).to_string(["0", "x"]) == "false"

    def test_bounds_appear(self):
        s = box(2, [(2, 5)]).to_string(["0", "x"])
        assert "x >= 2" in s and "x <= 5" in s
