"""Tests for zone-graph exploration and plain reachability."""

from fractions import Fraction

import pytest

from repro.dbm import Federation
from repro.graph import (
    ExplorationLimit,
    SimulationGraph,
    check_invariant,
    check_reachable,
)
from repro.semantics.system import System
from repro.ta import NetworkBuilder
from repro.tctl import GoalPredicate, parse_query


def counter_model(limit=3):
    """A single automaton counting paced ticks up to a limit."""
    net = NetworkBuilder("counter")
    net.clock("t")
    net.int_var("c", 0, 10)
    net.internal_channel("tick")
    a = net.automaton("A")
    a.location("run", initial=True)
    a.edge("run", "run", guard=f"t >= 1 && c < {limit}", assign="t := 0, c := c + 1")
    return net.build()


def branching_model():
    net = NetworkBuilder("branch")
    net.clock("x")
    net.input_channel("go")
    net.output_channel("left", "right")
    plant = net.automaton("P")
    plant.location("start", initial=True)
    plant.location("mid", invariant="x <= 5")
    plant.location("L")
    plant.location("R")
    plant.edge("start", "mid", sync="go?", assign="x := 0")
    plant.edge("mid", "L", guard="x >= 1", sync="left!")
    plant.edge("mid", "R", guard="x >= 2", sync="right!")
    env = net.automaton("E")
    env.location("e", initial=True)
    env.edge("e", "e", sync="go!")
    env.edge("e", "e", sync="left?")
    env.edge("e", "e", sync="right?")
    return net.build()


class TestExplorer:
    def test_counter_graph_size(self):
        sys_ = System(counter_model(3))
        graph = SimulationGraph(sys_)
        graph.explore_all()
        # One node per counter value (zones subsumed per discrete state).
        assert graph.node_count == 4
        assert graph.edge_count == 3

    def test_initial_zone_delay_closed(self):
        sys_ = System(counter_model())
        graph = SimulationGraph(sys_)
        assert graph.initial.zone.contains([0, Fraction(50)])

    def test_edges_record_moves(self):
        sys_ = System(branching_model())
        graph = SimulationGraph(sys_)
        graph.explore_all()
        labels = {e.move.label for n in graph.nodes for e in n.out_edges}
        assert labels == {"go", "left", "right"}

    def test_in_edges_symmetric(self):
        sys_ = System(branching_model())
        graph = SimulationGraph(sys_)
        graph.explore_all()
        for node in graph.nodes:
            for edge in node.out_edges:
                assert edge in edge.target.in_edges

    def test_max_nodes_limit(self):
        sys_ = System(counter_model(10))
        graph = SimulationGraph(sys_, max_nodes=3)
        with pytest.raises(ExplorationLimit):
            graph.explore_all()

    def test_subsumption_folds_smaller_zones(self):
        # Re-reaching `run` with c fixed explores one node per c only.
        sys_ = System(counter_model(2))
        graph = SimulationGraph(sys_)
        graph.explore_all()
        keys = [n.key for n in graph.nodes]
        assert len(keys) == len(set(keys))


class TestReachability:
    def predicate(self, sys_, text):
        goal = GoalPredicate(sys_, parse_query("E<> " + text).predicate)
        return goal.federation

    def test_reachable_counter_value(self):
        sys_ = System(counter_model(3))
        assert check_reachable(sys_, self.predicate(sys_, "c == 3"))
        assert not check_reachable(sys_, self.predicate(sys_, "c == 4"))

    def test_reachability_with_clock_constraint(self):
        sys_ = System(counter_model(3))
        # c == 2 while t still small: reachable right after the second tick.
        assert check_reachable(sys_, self.predicate(sys_, "c == 2 && t < 1"))

    def test_unreachable_clock_constraint(self):
        sys_ = System(counter_model(3))
        # Each tick needs t >= 1, so c == 1 with t arbitrarily large is fine
        # but c == 1 can never happen before time 1 overall... the zone after
        # the first tick has t reset, so t < 1 && c == 1 IS reachable.
        assert check_reachable(sys_, self.predicate(sys_, "c == 1 && t < 1"))

    def test_trace_returned(self):
        sys_ = System(counter_model(2))
        result = check_reachable(
            sys_, self.predicate(sys_, "c == 2"), with_trace=True
        )
        assert result.holds
        assert len(result.trace) == 2
        # The counting edges carry no sync, so they are internal moves.
        assert all(move.label == "tau" for move, _ in result.trace)

    def test_invariant_holds(self):
        sys_ = System(counter_model(3))
        assert check_invariant(sys_, self.predicate(sys_, "c <= 3"))

    def test_invariant_violated(self):
        sys_ = System(counter_model(3))
        result = check_invariant(sys_, self.predicate(sys_, "c <= 2"))
        assert not result.holds

    def test_branching_outputs_reachable(self):
        sys_ = System(branching_model())
        assert check_reachable(sys_, self.predicate(sys_, "P.L"))
        assert check_reachable(sys_, self.predicate(sys_, "P.R"))


class TestGoalFederations:
    def test_location_predicate(self):
        sys_ = System(branching_model())
        goal = GoalPredicate(sys_, parse_query("E<> P.mid").predicate)
        graph = SimulationGraph(sys_)
        graph.explore_all()
        hits = [n for n in graph.nodes if not goal.federation(n.sym).is_empty()]
        assert len(hits) == 1

    def test_clock_constrained_goal(self):
        sys_ = System(branching_model())
        goal = GoalPredicate(sys_, parse_query("E<> P.mid && x > 3").predicate)
        graph = SimulationGraph(sys_)
        graph.explore_all()
        mid = [n for n in graph.nodes if n.sym.locs[0] == 1][0]
        fed = goal.federation(mid.sym)
        assert fed.contains([0, Fraction(4), Fraction(4)])
        assert not fed.contains([0, Fraction(2), Fraction(2)])

    def test_negated_clock_goal(self):
        sys_ = System(branching_model())
        goal = GoalPredicate(sys_, parse_query("E<> P.mid && !(x == 3)").predicate)
        graph = SimulationGraph(sys_)
        graph.explore_all()
        mid = [n for n in graph.nodes if n.sym.locs[0] == 1][0]
        fed = goal.federation(mid.sym)
        assert not fed.contains([0, Fraction(3), Fraction(3)])
        assert fed.contains([0, Fraction(2), Fraction(2)])
        assert fed.contains([0, Fraction(4), Fraction(4)])

    def test_disjunctive_goal(self):
        sys_ = System(branching_model())
        goal = GoalPredicate(sys_, parse_query("E<> P.L || P.R").predicate)
        graph = SimulationGraph(sys_)
        graph.explore_all()
        hits = [n for n in graph.nodes if not goal.federation(n.sym).is_empty()]
        assert len(hits) == 2

    def test_imply_goal(self):
        sys_ = System(counter_model(2))
        goal = GoalPredicate(
            sys_, parse_query("E<> (c == 2) imply (t >= 0)").predicate
        )
        graph = SimulationGraph(sys_)
        graph.explore_all()
        # Implication with false antecedent is true everywhere.
        first = graph.initial
        assert goal.federation(first.sym).includes(
            Federation.from_zone(first.zone)
        )


class TestDeadlocks:
    def test_smartlight_deadlock_free(self):
        from repro.graph import find_deadlocks
        from repro.models.smartlight import smartlight_network

        sys_ = System(smartlight_network())
        assert find_deadlocks(sys_) == []

    def test_lep_deadlock_free(self):
        from repro.graph import find_deadlocks
        from repro.models.lep import lep_network

        sys_ = System(lep_network(3))
        assert find_deadlocks(sys_) == []

    def test_detects_invariant_timelock(self):
        from fractions import Fraction
        from repro.graph import find_deadlocks

        net = NetworkBuilder("lock")
        net.clock("x")
        net.output_channel("out")
        p = net.automaton("P")
        p.location("s", invariant="x <= 2", initial=True)
        p.location("t")
        # The only exit is disabled exactly at the boundary.
        p.edge("s", "t", guard="x < 2", sync="out!")
        e = net.automaton("E")
        e.location("e", initial=True)
        e.edge("e", "e", sync="out?")
        deadlocks = find_deadlocks(System(net.build()))
        assert deadlocks
        node, stuck = deadlocks[0]
        assert stuck.contains([0, Fraction(2)])

    def test_boundary_exit_is_not_deadlock(self):
        from repro.graph import find_deadlocks

        net = NetworkBuilder("ok")
        net.clock("x")
        net.output_channel("out")
        p = net.automaton("P")
        p.location("s", invariant="x <= 2", initial=True)
        p.location("t")
        p.edge("s", "t", guard="x <= 2", sync="out!")
        e = net.automaton("E")
        e.location("e", initial=True)
        e.edge("e", "e", sync="out?")
        # Fireable at the boundary itself: no deadlock in location s.
        stuck_nodes = [n for n, _ in find_deadlocks(System(net.build()))
                       if n.sym.locs[0] == 0]
        assert stuck_nodes == []
