"""The sans-IO TestSession core and the SessionConfig surface.

The executor tests already cover verdict semantics end to end; here the
focus is the *session machinery* itself: action/event sequencing, driver
protocol violations, config resolution with the deprecation shims, and
exact parity between ``TestExecutor.run()`` and hand-driving the session.
"""

from fractions import Fraction

import pytest

from repro.game import Strategy, solve_reachability_game
from repro.models.smartlight import smartlight_network, smartlight_plant
from repro.semantics.system import System
from repro.tctl import parse_query
from repro.testing import (
    EagerPolicy,
    Finish,
    LazyPolicy,
    RandomPolicy,
    SendInput,
    SessionConfig,
    SessionProtocolError,
    SimulatedImplementation,
    TestExecutor,
    TestSession,
    Wait,
    execute_test,
    resolve_session_config,
)


@pytest.fixture(scope="module")
def strategy():
    composed = System(smartlight_network())
    res = solve_reachability_game(
        composed, parse_query("control: A<> IUT.Bright"), on_the_fly=False
    )
    return Strategy(res)


@pytest.fixture(scope="module")
def spec_plant():
    return System(smartlight_plant())


def drive(session, imp):
    """Hand-rolled driver: the executor loop, written out in a test."""
    imp.reset()
    action = session.start()
    while not isinstance(action, Finish):
        if isinstance(action, SendInput):
            action = session.on_input_result(
                imp.give_input(action.label, list(action.updates))
            )
            continue
        assert isinstance(action, Wait)
        pending = imp.next_output()
        if pending is not None and pending.delay <= action.deadline:
            d = pending.delay
            label = imp.advance(d)
            if label is None:
                action = session.on_elapsed(d)
            else:
                action = session.on_output(d, label)
        else:
            imp.advance(action.deadline)
            action = session.on_elapsed(action.deadline)
    return action.run


class TestSessionConfig:
    def test_defaults(self):
        cfg = SessionConfig()
        assert cfg.max_iterations == 10_000
        assert cfg.max_states == 256
        assert cfg.relativized is False
        assert cfg.policies is None
        assert cfg.repetitions == 1

    def test_replace(self):
        cfg = SessionConfig().replace(max_states=7)
        assert cfg.max_states == 7
        assert cfg.max_iterations == 10_000

    def test_frozen_and_hashable(self):
        cfg = SessionConfig()
        with pytest.raises(AttributeError):
            cfg.max_states = 3
        assert hash(cfg) == hash(SessionConfig())

    def test_resolve_passthrough(self):
        cfg = SessionConfig(max_states=9)
        assert resolve_session_config(cfg) is cfg
        assert resolve_session_config(None) == SessionConfig()

    def test_resolve_legacy_warns(self):
        with pytest.warns(DeprecationWarning, match="max_states"):
            cfg = resolve_session_config(None, max_states=5)
        assert cfg.max_states == 5

    def test_legacy_overrides_config(self):
        base = SessionConfig(max_states=100, max_iterations=50)
        with pytest.warns(DeprecationWarning):
            cfg = resolve_session_config(base, max_states=5)
        assert cfg.max_states == 5
        assert cfg.max_iterations == 50  # untouched field survives

    def test_policies_tupled(self):
        with pytest.warns(DeprecationWarning):
            cfg = resolve_session_config(None, policies=["eager", "lazy"])
        assert cfg.policies == ("eager", "lazy")

    def test_none_legacy_is_silent(self, recwarn):
        resolve_session_config(None, max_states=None, max_iterations=None)
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]


class TestExecutorShims:
    def test_execute_test_legacy_kwargs_warn(self, strategy, spec_plant):
        imp = SimulatedImplementation(System(smartlight_plant()), EagerPolicy())
        with pytest.warns(DeprecationWarning):
            run = execute_test(strategy, spec_plant, imp, max_states=128)
        assert run.verdict == "pass"

    def test_config_matches_legacy(self, strategy, spec_plant):
        imp1 = SimulatedImplementation(System(smartlight_plant()), LazyPolicy())
        imp2 = SimulatedImplementation(System(smartlight_plant()), LazyPolicy())
        with pytest.warns(DeprecationWarning):
            legacy = execute_test(
                strategy, spec_plant, imp1, max_iterations=500, max_states=64
            )
        modern = execute_test(
            strategy,
            spec_plant,
            imp2,
            config=SessionConfig(max_iterations=500, max_states=64),
        )
        assert (legacy.verdict, legacy.reason, str(legacy.trace)) == (
            modern.verdict,
            modern.reason,
            str(modern.trace),
        )


class TestSessionMachine:
    def test_hand_driven_matches_executor(self, strategy, spec_plant):
        for policy in (EagerPolicy(), LazyPolicy(), RandomPolicy(3)):
            fresh = (
                type(policy)(3)
                if isinstance(policy, RandomPolicy)
                else type(policy)()
            )
            ex = TestExecutor(
                strategy,
                spec_plant,
                SimulatedImplementation(System(smartlight_plant()), policy),
            )
            run_a = ex.run()
            session = TestSession(strategy, spec_plant)
            run_b = drive(
                session,
                SimulatedImplementation(System(smartlight_plant()), fresh),
            )
            assert run_a.verdict == run_b.verdict
            assert run_a.reason == run_b.reason
            assert str(run_a.trace) == str(run_b.trace)
            assert run_a.iterations == run_b.iterations

    def test_session_finished_state(self, strategy, spec_plant):
        session = TestSession(strategy, spec_plant)
        run = drive(
            session,
            SimulatedImplementation(System(smartlight_plant()), EagerPolicy()),
        )
        assert session.finished
        assert session.run is run
        assert session.iterations == run.iterations

    def test_double_start_rejected(self, strategy, spec_plant):
        session = TestSession(strategy, spec_plant)
        session.start()
        with pytest.raises(SessionProtocolError, match="already started"):
            session.start()

    def test_event_out_of_order(self, strategy, spec_plant):
        session = TestSession(strategy, spec_plant)
        action = session.start()
        # smartlight's strategy opens by waiting, so the machine awaits a
        # Wait outcome — feeding an input result must be rejected.
        assert isinstance(action, Wait)
        with pytest.raises(SessionProtocolError, match="awaits Wait"):
            session.on_input_result(True)
        # ... and after the wait resolves into an input, the reverse.
        action = session.on_elapsed(action.deadline)
        assert isinstance(action, SendInput)
        with pytest.raises(SessionProtocolError, match="awaits SendInput"):
            session.on_output(Fraction(0), "dim")
        with pytest.raises(SessionProtocolError, match="awaits SendInput"):
            session.on_elapsed(Fraction(1))

    def test_delay_beyond_deadline(self, strategy, spec_plant):
        session = TestSession(strategy, spec_plant)
        action = session.start()
        assert isinstance(action, Wait)
        with pytest.raises(SessionProtocolError, match="exceeds the granted"):
            session.on_elapsed(action.deadline + 1)
        with pytest.raises(SessionProtocolError, match="negative"):
            session.on_output(Fraction(-1), "dim")

    def test_events_after_finish_rejected(self, strategy, spec_plant):
        session = TestSession(strategy, spec_plant)
        drive(
            session,
            SimulatedImplementation(System(smartlight_plant()), EagerPolicy()),
        )
        with pytest.raises(SessionProtocolError, match="finished"):
            session.on_elapsed(Fraction(1))

    def test_refused_input_fails(self, strategy, spec_plant):
        session = TestSession(strategy, spec_plant)
        action = session.start()
        assert isinstance(action, Wait)
        action = session.on_elapsed(action.deadline)
        assert isinstance(action, SendInput)
        action = session.on_input_result(False)
        assert isinstance(action, Finish)
        assert action.run.verdict == "fail"
        assert "input-enabledness" in action.run.reason

    def test_iteration_budget(self, strategy, spec_plant):
        session = TestSession(
            strategy, spec_plant, SessionConfig(max_iterations=1)
        )
        imp = SimulatedImplementation(System(smartlight_plant()), LazyPolicy())
        run = drive(session, imp)
        assert run.verdict == "inconclusive"
        assert "iteration budget" in run.reason

    def test_tracked_states_exposed(self, strategy, spec_plant):
        session = TestSession(strategy, spec_plant)
        assert session.tracked_states == 0  # no monitor before start
        session.start()
        assert session.tracked_states >= 1
