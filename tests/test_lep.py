"""Tests for the Leader Election Protocol case study (paper §4, Table 1)."""

import pytest

from repro.game import Strategy, solve_reachability_game
from repro.graph import check_reachable
from repro.models.lep import TEST_PURPOSES, TP1, TP2, TP3, lep_network, lep_plant
from repro.semantics.system import System
from repro.tctl import GoalPredicate, parse_query


@pytest.fixture(scope="module")
def lep3():
    return System(lep_network(3))


class TestModelShape:
    def test_parametric_constants(self):
        for n in (2, 3, 5):
            net = lep_network(n)
            assert net.decls.constants["N"] == n
            assert net.decls.arrays["inUse"].size == n
            assert net.decls.range_types["BufferId"] == (0, n - 1)

    def test_timeout_scales_with_distance(self):
        # Twait = max(2, n-1): the paper ties timing to network diameter.
        assert lep_network(3).decls.constants["Twait"] == 2
        assert lep_network(6).decls.constants["Twait"] == 5

    def test_channel_partition(self, lep3):
        net = lep3.network
        assert set(net.channel_names("input")) == {"recv", "net_put"}
        assert set(net.channel_names("output")) == {"send", "timeout"}

    def test_minimum_size_rejected(self):
        with pytest.raises(ValueError):
            lep_network(1)
        with pytest.raises(ValueError):
            lep_plant(0)

    def test_three_automata(self, lep3):
        assert [a.name for a in lep3.automata] == ["IUT", "Env", "Buffer"]


class TestProtocolBehaviour:
    def test_better_info_reachable(self, lep3):
        goal = GoalPredicate(
            lep3, parse_query("E<> betterInfo == 1 && IUT.forward").predicate
        )
        assert check_reachable(lep3, goal.federation)

    def test_buffer_fillable(self, lep3):
        goal = GoalPredicate(
            lep3,
            parse_query("E<> forall (i : BufferId) (inUse[i] == 1)").predicate,
        )
        assert check_reachable(lep3, goal.federation)

    def test_best_only_improves(self, lep3):
        # A[] best <= N: the known best address never worsens.
        from repro.graph import check_invariant

        goal = GoalPredicate(lep3, parse_query("A[] best <= N && best >= 1").predicate)
        assert check_invariant(lep3, goal.federation)

    def test_timeout_cannot_fire_early(self, lep3):
        # The timeout needs w >= Twait; IUT.announce with w < Twait is
        # reachable only via... it is not reachable at all right after a
        # timeout, but the send-clock reset makes w < Twait in announce
        # reachable only *after* the timeout fired. Check the guard holds
        # at the transition by invariant: announce is entered with w == 0.
        goal = GoalPredicate(
            lep3, parse_query("E<> IUT.announce && w > 1").predicate
        )
        assert not check_reachable(lep3, goal.federation)


class TestPurposes:
    @pytest.mark.parametrize("name", ["TP1", "TP2", "TP3"])
    def test_purposes_parse(self, name):
        q = parse_query(TEST_PURPOSES[name])
        assert q.is_game

    @pytest.mark.parametrize("n", [2, 3, 4])
    @pytest.mark.parametrize("tp", [TP1, TP2, TP3])
    def test_purposes_hold(self, n, tp):
        """All three paper test purposes are checked true (paper §4)."""
        sys_ = System(lep_network(n))
        res = solve_reachability_game(sys_, parse_query(tp), time_limit=120)
        assert res.winning

    def test_tp_difficulty_ordering(self):
        """TP2/TP3 explore far more of the state space than TP1 — the
        qualitative shape of the paper's Table 1."""
        sys_ = System(lep_network(4))
        nodes = {}
        for name, tp in TEST_PURPOSES.items():
            res = solve_reachability_game(sys_, parse_query(tp), time_limit=120)
            nodes[name] = res.nodes_explored
        assert nodes["TP1"] * 2 < nodes["TP2"]
        assert nodes["TP1"] * 2 < nodes["TP3"]

    def test_strategy_extractable_for_tp1(self):
        sys_ = System(lep_network(3))
        res = solve_reachability_game(sys_, parse_query(TP1), time_limit=60)
        strategy = Strategy(res)
        assert strategy.size > 0
        decision = strategy.decide(sys_.initial_concrete())
        assert decision.kind in ("fire", "wait")


class TestGrowth:
    def test_state_space_grows_with_n(self):
        """Super-linear growth in n for the buffer-filling purpose."""
        counts = []
        for n in (2, 3, 4):
            sys_ = System(lep_network(n))
            res = solve_reachability_game(sys_, parse_query(TP2), time_limit=120)
            counts.append(res.nodes_explored)
        assert counts[0] < counts[1] < counts[2]
        # Roughly doubling per node added.
        assert counts[2] >= counts[1] * 1.5


class TestPlantModel:
    def test_plant_is_open_system(self):
        plant = System(lep_plant(3))
        init = plant.initial_symbolic()
        moves = plant.open_moves_from(init.locs, init.vars)
        labels = {m.label for m in moves}
        assert "recv" in labels
        # Timeout not yet enabled at w == 0 (integer guard holds; the
        # clock guard is part of the zone, so the move is listed).
        assert "timeout" in labels

    def test_plant_committed_processing(self):
        plant = System(lep_plant(3))
        iut = plant.network.automaton("IUT")
        for name in ("rcv", "rcvF", "rcvA"):
            assert iut.locations[name].committed
