"""Tests for timed traces, verdicts (repro.testing.trace) and utilities."""

from fractions import Fraction

import pytest

from repro.testing.trace import FAIL, INCONCLUSIVE, PASS, ActionStep, DelayStep
from repro.testing.trace import TestRun as Run
from repro.testing.trace import TimedTrace
from repro.util import Measurement, format_table, measure, stopwatch


class TestTimedTrace:
    def test_empty(self):
        trace = TimedTrace()
        assert len(trace) == 0
        assert trace.total_time == 0
        assert str(trace) == "<empty>"

    def test_delays_merge(self):
        trace = TimedTrace()
        trace.add_delay(Fraction(1))
        trace.add_delay(Fraction(1, 2))
        assert len(trace.steps) == 1
        assert trace.steps[0].delay == Fraction(3, 2)

    def test_zero_delay_dropped(self):
        trace = TimedTrace()
        trace.add_delay(Fraction(0))
        assert len(trace) == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            TimedTrace().add_delay(Fraction(-1))

    def test_alternation(self):
        trace = TimedTrace()
        trace.add_delay(Fraction(2))
        trace.add_action("touch", "input")
        trace.add_delay(Fraction(1))
        trace.add_action("dim", "output")
        assert str(trace) == "2 . touch? . 1 . dim!"
        assert trace.total_time == 3

    def test_actions_list(self):
        trace = TimedTrace()
        trace.add_action("a", "input")
        trace.add_action("b", "output")
        labels = [a.label for a in trace.actions]
        assert labels == ["a", "b"]

    def test_action_marks(self):
        assert str(ActionStep("touch", "input")) == "touch?"
        assert str(ActionStep("dim", "output")) == "dim!"


class TestRunVerdicts:
    def test_pass_properties(self):
        run = Run(PASS, TimedTrace(), "done")
        assert run.passed and not run.failed
        assert "PASS" in str(run)

    def test_fail_properties(self):
        run = Run(FAIL, TimedTrace(), "bad output")
        assert run.failed and not run.passed
        assert "bad output" in str(run)

    def test_inconclusive(self):
        run = Run(INCONCLUSIVE, TimedTrace())
        assert not run.passed and not run.failed


class TestMeasurement:
    def test_measure_result(self):
        m = measure(lambda: 42, track_memory=False)
        assert m.result == 42
        assert not m.failed
        assert m.seconds >= 0

    def test_measure_memory(self):
        m = measure(lambda: [0] * 100000, track_memory=True)
        assert m.peak_mb is not None and m.peak_mb > 0

    def test_measure_swallows(self):
        m = measure(lambda: 1 / 0, track_memory=False, swallow=(ZeroDivisionError,))
        assert m.failed
        assert m.cell() == "/"
        assert m.memory_cell() == "/"

    def test_measure_propagates_unswallowed(self):
        with pytest.raises(ZeroDivisionError):
            measure(lambda: 1 / 0, track_memory=False)

    def test_cell_formatting(self):
        m = Measurement(1.2345, 12.0)
        assert m.cell() == "1.23"
        assert m.memory_cell() == "12"
        tiny = Measurement(0.1, 0.25)
        assert tiny.memory_cell() == "0.2"

    def test_stopwatch(self):
        with stopwatch() as timer:
            sum(range(1000))
        assert timer.seconds >= 0


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            "T", ["n=3", "n=4"], [("row1", ["0.1", "2.34"]), ("r2", ["/", "9"])]
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "n=3" in lines[1]
        assert "/" in text

    def test_wide_cells(self):
        text = format_table("T", ["col"], [("r", ["123456789"])])
        assert "123456789" in text
