"""Tests for simulated implementations and output policies."""

from fractions import Fraction

import pytest

from repro.models.smartlight import smartlight_plant
from repro.semantics.system import System
from repro.testing import (
    EagerPolicy,
    LazyPolicy,
    QuiescentPolicy,
    RandomPolicy,
    SimulatedImplementation,
)


def make_imp(policy):
    return SimulatedImplementation(System(smartlight_plant()), policy)


class TestScheduling:
    def test_no_output_in_off(self):
        imp = make_imp(EagerPolicy())
        assert imp.next_output() is None

    def test_eager_schedules_immediately(self):
        imp = make_imp(EagerPolicy())
        imp.advance(Fraction(5))
        assert imp.give_input("touch")
        scheduled = imp.next_output()
        assert scheduled is not None
        assert scheduled.label == "dim"
        assert scheduled.delay == 0

    def test_lazy_schedules_at_invariant(self):
        imp = make_imp(LazyPolicy())
        imp.advance(Fraction(5))
        imp.give_input("touch")
        scheduled = imp.next_output()
        assert scheduled.label == "dim"
        assert scheduled.delay == 2

    def test_quiescent_fires_only_when_forced(self):
        imp = make_imp(QuiescentPolicy())
        imp.advance(Fraction(5))
        imp.give_input("touch")
        scheduled = imp.next_output()
        assert scheduled.delay == 2  # the invariant boundary

    def test_random_policy_within_window(self):
        for seed in range(10):
            imp = make_imp(RandomPolicy(seed))
            imp.advance(Fraction(5))
            imp.give_input("touch")
            scheduled = imp.next_output()
            assert scheduled is not None
            assert 0 <= scheduled.delay <= 2

    def test_random_policy_deterministic_per_seed(self):
        delays = set()
        for _ in range(3):
            imp = make_imp(RandomPolicy(42))
            imp.advance(Fraction(5))
            imp.give_input("touch")
            delays.add(imp.next_output().delay)
        assert len(delays) == 1


class TestAdvance:
    def test_advance_emits_at_schedule(self):
        imp = make_imp(EagerPolicy())
        imp.advance(Fraction(5))
        imp.give_input("touch")
        label = imp.advance(imp.next_output().delay)
        assert label == "dim"
        # Back in a stable location: nothing scheduled.
        assert imp.next_output() is None

    def test_advance_partial_keeps_schedule(self):
        imp = make_imp(LazyPolicy())
        imp.advance(Fraction(5))
        imp.give_input("touch")
        assert imp.advance(Fraction(1)) is None
        assert imp.next_output().delay == 1

    def test_advance_past_schedule_rejected(self):
        imp = make_imp(EagerPolicy())
        imp.advance(Fraction(25))
        imp.give_input("touch")
        schedule = imp.next_output()
        with pytest.raises(ValueError):
            imp.advance(schedule.delay + 1)

    def test_input_reschedules(self):
        imp = make_imp(LazyPolicy())
        imp.advance(Fraction(5))
        imp.give_input("touch")  # L1: pending dim at Tp == 2
        imp.advance(Fraction(1))
        imp.give_input("touch")  # escalates to L6: pending bright
        assert imp.next_output().label == "bright"

    def test_refuses_unknown_input_time(self):
        imp = make_imp(EagerPolicy())
        # touch is always accepted somewhere (input-enabled plant).
        assert imp.give_input("touch")
        assert not imp.give_input("nosuch")

    def test_reset(self):
        imp = make_imp(EagerPolicy())
        imp.advance(Fraction(5))
        imp.give_input("touch")
        imp.reset()
        assert imp.next_output() is None
        assert imp.state.clocks[1] == 0


class TestDeterminismHypothesis:
    def test_same_policy_same_behaviour(self):
        """Test hypothesis §2.5: the IMP is deterministic."""
        runs = []
        for _ in range(2):
            imp = make_imp(RandomPolicy(7))
            trace = []
            imp.advance(Fraction(25))
            imp.give_input("touch")
            for _ in range(4):
                scheduled = imp.next_output()
                if scheduled is None:
                    break
                label = imp.advance(scheduled.delay)
                trace.append((label, scheduled.delay))
            runs.append(trace)
        assert runs[0] == runs[1]

    def test_output_urgency(self):
        """Test hypothesis §2.5: committed outputs fire exactly on time."""
        imp = make_imp(LazyPolicy())
        imp.advance(Fraction(5))
        imp.give_input("touch")
        scheduled = imp.next_output()
        # Advancing exactly to the schedule emits; no silent slipping.
        assert imp.advance(scheduled.delay) == scheduled.label
