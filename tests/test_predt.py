"""Property tests for the safe-timed-predecessor operator ``Predt``.

``Predt`` is the heart of the game solver, so we verify it against a
brute-force reference: for a random state ``s``, random target ``G`` and
bad set ``B``, check membership by scanning candidate arrival delays on a
fine fractional grid.  With integer zone constants, behaviour changes only
at half-integer delay boundaries, so grid scanning plus midpoints is an
exact decision procedure for the sampled points.
"""

from fractions import Fraction
from typing import List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbm import DBM, Federation
from repro.game.predt import predt, predt_mixed, up_strict

from tests.zone_strategies import (
    DIM,
    big_federations,
    box,
    diagonal_zones,
    federations,
    points,
    zones,
)


def shifted(p, d):
    return [p[0]] + [v + d for v in p[1:]]


def candidate_delays(max_const=30):
    """Quarter-integer grid: strictly finer than any zone boundary."""
    return [Fraction(k, 4) for k in range(0, max_const * 4 + 1)]


def reference_predt(point, goal: Federation, bad: Federation, lenient: bool) -> bool:
    """Brute-force: exists delay d with point+d in G, avoiding B on the way.

    Arrival instants are scanned on the quarter-integer grid (exact: with
    half-integer points and integer constants, every goal-entry boundary
    is a half-integer).  Avoidance of ``bad`` over [0, d] (strict) or
    [0, d) (lenient) is decided *exactly* via the rational delay interval
    of each bad zone — grid scanning would miss open intervals like
    ``(0, 1/4)`` that contain no grid point.
    """
    from repro.game.strategy import zone_delay_interval

    bad_intervals = [
        interval
        for zone in bad.zones
        if (interval := zone_delay_interval(zone, point)) is not None
    ]

    def blocked(d):
        for interval in bad_intervals:
            if interval.lo < d:
                return True
            if interval.lo == d and not lenient and not interval.lo_strict:
                return True
        return False

    for d in candidate_delays():
        arrival = shifted(point, d)
        if not goal.contains(arrival):
            continue
        if not blocked(d):
            return True
    return False


class TestUpStrict:
    def test_strict_future_excludes_start(self):
        z = box(2, [(2, 3)])
        u = up_strict(z)
        assert not u.contains([0, Fraction(2)])
        assert u.contains([0, Fraction(9, 4)])
        assert u.contains([0, Fraction(100)])

    def test_strict_future_of_point(self):
        z = box(3, [(2, 2), (2, 2)])
        u = up_strict(z)
        assert not u.contains([0, Fraction(2), Fraction(2)])
        assert u.contains([0, Fraction(5, 2), Fraction(5, 2)])
        assert not u.contains([0, Fraction(5, 2), Fraction(2)])

    @given(zones(), points(), st.integers(1, 8))
    @settings(max_examples=200, deadline=None)
    def test_up_strict_semantics_forward(self, z, p, num):
        d = Fraction(num, 2)
        if z.contains(p):
            assert up_strict(z).contains(shifted(p, d))

    @given(zones())
    @settings(max_examples=100, deadline=None)
    def test_up_strict_inside_up(self, z):
        if z.is_empty():
            return
        assert z.up().includes(up_strict(z))


class TestPredtBasics:
    def test_no_bad_is_down(self):
        g = Federation.from_zone(box(2, [(5, 6)]))
        result = predt(g, Federation.empty(2))
        assert result.contains([0, Fraction(0)])
        assert result.contains([0, Fraction(6)])
        assert not result.contains([0, Fraction(7)])

    def test_bad_after_goal_no_block(self):
        # g at x=5, bad at x=8: reaching goal never crosses bad.
        g = Federation.from_zone(box(2, [(5, 5)]))
        b = Federation.from_zone(box(2, [(8, 9)]))
        result = predt(g, b)
        assert result.contains([0, Fraction(3)])
        assert not result.contains([0, Fraction(17, 2)])

    def test_bad_before_goal_blocks(self):
        # g at x=5, bad at x=[2,3]: states before bad cannot pass it.
        g = Federation.from_zone(box(2, [(5, 5)]))
        b = Federation.from_zone(box(2, [(2, 3)]))
        result = predt(g, b)
        assert result.contains([0, Fraction(4)])
        assert not result.contains([0, Fraction(1)])
        assert not result.contains([0, Fraction(5, 2)])  # inside bad

    def test_strict_vs_lenient_boundary(self):
        # Goal exactly at the bad region's entry: lenient arrival wins.
        g = Federation.from_zone(box(2, [(2, 2)]))
        b = Federation.from_zone(box(2, [(2, 3)]))
        strict = predt(g, b, lenient=False)
        lenient = predt(g, b, lenient=True)
        assert strict.is_empty()
        assert lenient.contains([0, Fraction(1)])
        assert lenient.contains([0, Fraction(2)])  # zero-delay arrival

    def test_union_of_bads_is_intersection(self):
        g = Federation.from_zone(box(2, [(6, 6)]))
        b1 = box(2, [(2, 3)])
        b2 = box(2, [(4, 5)])
        both = predt(g, Federation(2, [b1, b2]))
        only1 = predt(g, Federation.from_zone(b1))
        only2 = predt(g, Federation.from_zone(b2))
        assert only1.includes(both)
        assert only2.includes(both)
        # (5,6] survives both blocks.
        assert both.contains([0, Fraction(11, 2)])
        assert not both.contains([0, Fraction(7, 2)])

    def test_empty_goal(self):
        assert predt(Federation.empty(2), Federation.from_zone(box(2, [(0, 1)]))).is_empty()


class TestPredtReference:
    @given(federations(), federations(), points())
    @settings(max_examples=150, deadline=None)
    def test_strict_matches_reference(self, goal, bad, p):
        result = predt(goal, bad, lenient=False)
        assert result.contains(p) == reference_predt(p, goal, bad, lenient=False)

    @given(federations(), federations(), points())
    @settings(max_examples=150, deadline=None)
    def test_lenient_matches_reference(self, goal, bad, p):
        result = predt(goal, bad, lenient=True)
        assert result.contains(p) == reference_predt(p, goal, bad, lenient=True)

    @given(federations(), federations())
    @settings(max_examples=80, deadline=None)
    def test_lenient_contains_strict(self, goal, bad):
        strict = predt(goal, bad, lenient=False)
        lenient = predt(goal, bad, lenient=True)
        assert lenient.includes(strict)

    @given(federations(), federations(), federations(), points())
    @settings(max_examples=80, deadline=None)
    def test_mixed_is_union(self, acts, goals, bad, p):
        mixed = predt_mixed(acts, goals, bad)
        expected = predt(acts, bad, lenient=False).union(
            predt(goals, bad, lenient=True)
        )
        assert mixed.contains(p) == expected.contains(p)

    @given(federations(), federations())
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_goal(self, goal, bad):
        bigger = goal.union(Federation.from_zone(box(DIM, [(1, 2)] * (DIM - 1))))
        assert predt(bigger, bad).includes(predt(goal, bad))


class TestPredtDiagonal:
    """Reference agreement on diagonal-constrained goals and bad sets.

    Delay shifts both clocks together, so diagonal differences are delay
    invariant; the quarter-grid reference stays exact on these shapes, and
    they exercise the ``subtract``/``down`` paths boxes cannot reach.
    """

    @given(diagonal_zones(), diagonal_zones(), points())
    @settings(max_examples=120, deadline=None)
    def test_strict_matches_reference_on_diagonals(self, g, b, p):
        goal = Federation.from_zone(g)
        bad = Federation.from_zone(b)
        result = predt(goal, bad, lenient=False)
        assert result.contains(p) == reference_predt(p, goal, bad, lenient=False)

    @given(big_federations(), big_federations(), points())
    @settings(max_examples=100, deadline=None)
    def test_lenient_matches_reference_on_big_federations(self, goal, bad, p):
        result = predt(goal, bad, lenient=True)
        assert result.contains(p) == reference_predt(p, goal, bad, lenient=True)

    @given(big_federations(), big_federations())
    @settings(max_examples=60, deadline=None)
    def test_lenient_contains_strict_on_big_federations(self, goal, bad):
        assert predt(goal, bad, lenient=True).includes(
            predt(goal, bad, lenient=False)
        )

    @given(big_federations())
    @settings(max_examples=60, deadline=None)
    def test_no_bad_is_down_on_big_federations(self, goal):
        assert predt(goal, Federation.empty(DIM)).equals(goal.down())
