"""Shared hypothesis strategies and zone helpers for the test suite."""

from fractions import Fraction

from hypothesis import strategies as st

from repro.dbm import DBM, Federation, bound, le

DIM = 4  # three clocks


def box(dim, bounds):
    """Zone from per-clock (lo, hi) inclusive integer bounds."""
    constraints = []
    for i, (lo, hi) in enumerate(bounds, start=1):
        constraints.append((i, 0, le(hi)))
        constraints.append((0, i, le(-lo)))
    return DBM.from_constraints(dim, constraints)


@st.composite
def zones(draw, dim=DIM, max_constraints=6, lo=-8, hi=12):
    """Random zones built from random constraints (may be empty)."""
    n_constraints = draw(st.integers(0, max_constraints))
    zone = DBM.universal(dim)
    for _ in range(n_constraints):
        i = draw(st.integers(0, dim - 1))
        j = draw(st.integers(0, dim - 1))
        if i == j:
            continue
        value = draw(st.integers(lo, hi))
        strict = draw(st.booleans())
        zone = zone.tighten(i, j, bound(value, strict))
    return zone


@st.composite
def points(draw, dim=DIM, hi=24):
    """Random half-integer clock valuations."""
    vals = [Fraction(0)]
    for _ in range(dim - 1):
        vals.append(Fraction(draw(st.integers(0, hi)), 2))
    return vals


@st.composite
def federations(draw, dim=DIM, max_zones=3):
    count = draw(st.integers(0, max_zones))
    return Federation(dim, [draw(zones(dim)) for _ in range(count)])


@st.composite
def diagonal_zones(draw, dim=DIM, lo=-6, hi=10):
    """Zones guaranteed to carry at least one diagonal constraint.

    Starts from a (possibly unbounded) box and conjoins 1-3 constraints
    between two *real* clocks — the shapes axis-aligned boxes can never
    produce and the extrapolation/subtraction code paths least covered by
    :func:`box`.
    """
    zone = DBM.universal(dim)
    for i in range(1, dim):
        if draw(st.booleans()):
            upper = draw(st.integers(0, hi))
            zone = zone.tighten(i, 0, le(upper))
    n_diagonals = draw(st.integers(1, 3))
    for _ in range(n_diagonals):
        i = draw(st.integers(1, dim - 1))
        j = draw(st.integers(1, dim - 1))
        if i == j:
            j = 1 + (i % (dim - 1))
        value = draw(st.integers(lo, hi))
        strict = draw(st.booleans())
        zone = zone.tighten(i, j, bound(value, strict))
    return zone


@st.composite
def big_federations(draw, dim=DIM, max_zones=6):
    """Federations mixing boxes and diagonal zones, up to ``max_zones``
    members — exercises subsumption reduction and exact set differences on
    genuinely non-convex unions."""
    count = draw(st.integers(1, max_zones))
    members = []
    for _ in range(count):
        if draw(st.booleans()):
            members.append(draw(diagonal_zones(dim)))
        else:
            members.append(draw(zones(dim)))
    return Federation(dim, members)
