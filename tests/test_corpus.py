"""Tests of the persistent corpus, scheduler, and resumable campaigns.

The fabric's contract has three layers, pinned here bottom-up:

* the **store** — entries round-trip through disk, first writer per
  structural hash wins, iteration is sorted, signatures bucket away
  counter jitter;
* the **scheduler** — `plan_mutations` is a pure function of the corpus
  snapshot and budget (rarity-ranked, round-robin, failed entries
  excluded), and mutation seeds derive from sha256, not process state;
* the **checkpoint** — an interrupted campaign (KeyboardInterrupt or
  ``--stop-after``) resumed with ``--resume`` produces the byte-identical
  report an uninterrupted run would have, modulo the declared-volatile
  keys, for any ``--jobs`` value on either side of the interrupt.

Plus the PR's budget-plumbing satellite: ``--max-estimate-states``
reaches the conformance monitors' symbolic state-set trackers.
"""

import json
import shutil

import pytest

from repro.corpus import (
    CampaignCheckpoint,
    CheckpointMismatch,
    Corpus,
    CorpusEntry,
    MutationTask,
    campaign_fingerprint,
    coverage_signature,
    derive_mutation_seed,
    fingerprint_core,
    plan_mutations,
)
from repro.gen.cli import (
    VOLATILE_REPORT_KEYS,
    _diff_config_from_args,
    build_parser,
    main as cli_main,
)
from repro.gen.differential import (
    CheckResult,
    DiffConfig,
    InstanceReport,
    check_estimate,
    run_campaign,
)
from repro.gen.networks import generate_instance
from repro.semantics import System
from repro.ta.builder import NetworkBuilder
from repro.testing import RelativizedMonitor, TiocoMonitor


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------


def make_entry(structural_hash, seed, family="chain", signature="sig-a",
               statuses=None, mutation_seed=None):
    return CorpusEntry(
        structural_hash=structural_hash,
        seed=seed,
        family=family,
        signature=signature,
        mutation_seed=mutation_seed,
        statuses=statuses if statuses is not None else {"solvers": "ok"},
        coverage={"estimate.timed_closures": seed},
    )


class TestCoverageSignature:
    def test_deterministic_and_order_insensitive(self):
        one = coverage_signature(
            "chain", {"a": "ok", "b": "skip"}, {"x": 5, "y": 900}
        )
        two = coverage_signature(
            "chain", {"b": "skip", "a": "ok"}, {"y": 900, "x": 5}
        )
        assert one == two
        assert len(one) == 16

    def test_buckets_absorb_jitter_but_not_magnitude(self):
        base = coverage_signature("chain", {"a": "ok"}, {"ops": 867})
        jitter = coverage_signature("chain", {"a": "ok"}, {"ops": 901})
        magnitude = coverage_signature("chain", {"a": "ok"}, {"ops": 8})
        assert base == jitter  # same log2 bucket
        assert base != magnitude

    def test_statuses_and_family_discriminate(self):
        ok = coverage_signature("chain", {"a": "ok"}, {})
        fail = coverage_signature("chain", {"a": "fail"}, {})
        ring = coverage_signature("ring", {"a": "ok"}, {})
        assert len({ok, fail, ring}) == 3


class TestCorpusStore:
    def test_round_trip(self, tmp_path):
        corpus = Corpus(str(tmp_path / "corpus"))
        entry = make_entry("deadbeef", 7, mutation_seed=123)
        assert corpus.add(entry)
        assert len(corpus) == 1
        loaded = corpus.get("deadbeef")
        assert loaded == entry
        assert loaded.reproducer() == "mutate_instance(7, 'chain', 123)"
        assert corpus.get("cafebabe") is None

    def test_first_writer_wins(self, tmp_path):
        corpus = Corpus(str(tmp_path / "corpus"))
        assert corpus.add(make_entry("aa", 1, signature="first"))
        assert not corpus.add(make_entry("aa", 2, signature="second"))
        assert corpus.get("aa").signature == "first"
        assert len(corpus) == 1

    def test_iteration_sorted_and_stats(self, tmp_path):
        corpus = Corpus(str(tmp_path / "corpus"))
        corpus.add(make_entry("cc", 3, family="ring", signature="s2"))
        corpus.add(make_entry("aa", 1, signature="s1"))
        corpus.add(make_entry("bb", 2, signature="s1"))
        assert [e.structural_hash for e in corpus] == ["aa", "bb", "cc"]
        assert corpus.signature_counts() == {"s1": 2, "s2": 1}
        assert corpus.stats() == {"entries": 3, "signatures": 2, "families": 2}

    def test_reinsertion_is_byte_stable(self, tmp_path):
        """Re-running the same campaign over a corpus must be a no-op."""
        corpus = Corpus(str(tmp_path / "corpus"))
        entry = make_entry("aa", 1)
        corpus.add(entry)
        before = (tmp_path / "corpus" / "entries" / "aa.json").read_bytes()
        assert not corpus.add(entry)
        after = (tmp_path / "corpus" / "entries" / "aa.json").read_bytes()
        assert before == after


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------


class TestPlanMutations:
    def populated(self, tmp_path):
        corpus = Corpus(str(tmp_path / "corpus"))
        # One rare signature, one three-way-common signature, one failure.
        corpus.add(make_entry("r1", 10, signature="rare"))
        corpus.add(make_entry("c1", 20, signature="common"))
        corpus.add(make_entry("c2", 21, signature="common"))
        corpus.add(make_entry("c3", 22, signature="common"))
        corpus.add(
            make_entry("f1", 30, signature="broken",
                       statuses={"solvers": "fail"})
        )
        return corpus

    def test_rarest_first_and_failed_excluded(self, tmp_path):
        corpus = self.populated(tmp_path)
        plan = plan_mutations(corpus, budget=100, rounds=1)
        assert [task.seed for task in plan] == [10, 20, 21, 22]
        assert all(task.seed != 30 for task in plan)

    def test_round_robin_spreads_budget(self, tmp_path):
        corpus = self.populated(tmp_path)
        plan = plan_mutations(corpus, budget=6, rounds=2)
        assert len(plan) == 6
        # Every candidate's round-0 mutant lands before any round-1 one.
        assert [task.seed for task in plan] == [10, 20, 21, 22, 10, 20]
        assert plan[0].mutation_seed != plan[4].mutation_seed

    def test_deterministic_across_calls(self, tmp_path):
        corpus = self.populated(tmp_path)
        assert plan_mutations(corpus, 5) == plan_mutations(corpus, 5)
        assert plan_mutations(corpus, 0) == []

    def test_mutation_seeds_are_sha_derived(self, tmp_path):
        entry = make_entry("aa", 1)
        first = derive_mutation_seed(entry, 0)
        assert first == derive_mutation_seed(entry, 0)
        assert first != derive_mutation_seed(entry, 1)
        assert 0 <= first < 2**48

    def test_tasks_survive_json(self):
        task = MutationTask(seed=7, family="chain", mutation_seed=99)
        rows = json.loads(json.dumps([task.to_list()]))
        from repro.corpus import tasks_from_lists

        assert tasks_from_lists(rows) == [task]


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------


def make_report(seed, family="chain"):
    return InstanceReport(
        seed=seed,
        family=family,
        structural_hash=f"hash-{seed}",
        description=f"instance {seed}",
        results=[CheckResult("solvers", "ok", "")],
        coverage={"ops": seed},
    )


def fresh_fingerprint(mutations=()):
    return campaign_fingerprint(
        4, 100, ["chain"], ["solvers"], None, None, mutations
    )


class TestCheckpoint:
    def test_record_load_round_trip(self, tmp_path):
        path = str(tmp_path / "checkpoint.jsonl")
        plan = [MutationTask(100, "chain", 42)]
        checkpoint = CampaignCheckpoint(path)
        checkpoint.start(fresh_fingerprint(plan))
        checkpoint.record(0, make_report(100))
        checkpoint.record(2, make_report(102))
        checkpoint.close()

        resumed = CampaignCheckpoint(path)
        assert resumed.exists()
        resumed.load()
        completed = resumed.completed()
        assert sorted(completed) == [0, 2]
        assert completed[0].to_dict() == make_report(100).to_dict()
        assert resumed.mutations() == plan
        resumed.close()

    def test_torn_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "checkpoint.jsonl")
        checkpoint = CampaignCheckpoint(path)
        checkpoint.start(fresh_fingerprint())
        checkpoint.record(0, make_report(100))
        checkpoint.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "report", "index": 1, "repo')  # kill here
        resumed = CampaignCheckpoint(path)
        resumed.load()
        assert sorted(resumed.completed()) == [0]
        resumed.close()

    def test_malformed_middle_line_raises(self, tmp_path):
        path = str(tmp_path / "checkpoint.jsonl")
        checkpoint = CampaignCheckpoint(path)
        checkpoint.start(fresh_fingerprint())
        checkpoint.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write('{"kind": "report", "index": 0, "report": {}}\n')
        with pytest.raises(CheckpointMismatch, match="malformed"):
            CampaignCheckpoint(path).load()

    def test_foreign_campaign_raises_with_differing_keys(self, tmp_path):
        path = str(tmp_path / "checkpoint.jsonl")
        checkpoint = CampaignCheckpoint(path)
        checkpoint.start(fresh_fingerprint())
        checkpoint.close()
        other = campaign_fingerprint(
            9, 100, ["chain"], ["solvers"], None, None, ()
        )
        with pytest.raises(CheckpointMismatch, match="count"):
            CampaignCheckpoint(path).load(
                expected_core=fingerprint_core(other)
            )
        # The matching core loads fine.
        loaded = CampaignCheckpoint(path)
        loaded.load(expected_core=fingerprint_core(fresh_fingerprint()))
        loaded.close()

    def test_finalize_removes_journal(self, tmp_path):
        path = str(tmp_path / "checkpoint.jsonl")
        checkpoint = CampaignCheckpoint(path)
        checkpoint.start(fresh_fingerprint())
        checkpoint.record(0, make_report(100))
        checkpoint.finalize()
        assert not checkpoint.exists()


# ----------------------------------------------------------------------
# Library-level interrupt → resume
# ----------------------------------------------------------------------

FAST_CAMPAIGN = dict(
    count=6,
    seed=90,
    families=("chain",),
    checks=("semantics",),
    diff_config=DiffConfig(sim_steps=5, conf_steps=5, check_fixpoint=False),
    zone_trials=5,
)


def stripped(report):
    """A report's deterministic part (coverage is declared volatile)."""
    payload = report.to_dict()
    del payload["coverage"]
    return payload


class TestResumableCampaign:
    def test_stop_after_yields_partial_summary(self, tmp_path):
        checkpoint = CampaignCheckpoint(str(tmp_path / "checkpoint.jsonl"))
        checkpoint.start(fresh_fingerprint())
        summary = run_campaign(
            **FAST_CAMPAIGN, checkpoint=checkpoint, stop_after=2
        )
        checkpoint.close()
        assert summary.partial
        assert summary.pending == 4
        assert len(summary.reports) == 2
        # Tail work (zone trials, shrinking) is deferred to completion.
        assert summary.zone_trials == 0
        assert "PARTIAL: 4 tasks pending" in summary.format()

    def test_interrupt_then_resume_matches_uninterrupted(self, tmp_path):
        direct = run_campaign(**FAST_CAMPAIGN)

        path = str(tmp_path / "checkpoint.jsonl")
        checkpoint = CampaignCheckpoint(path)
        checkpoint.start(fresh_fingerprint())
        seen = []

        def interrupt(report):
            seen.append(report)
            if len(seen) == 3:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                **FAST_CAMPAIGN, checkpoint=checkpoint, on_report=interrupt
            )
        checkpoint.close()

        resumed = CampaignCheckpoint(path)
        resumed.load()
        assert len(resumed.completed()) == 3  # journaled before the raise
        summary = run_campaign(**FAST_CAMPAIGN, checkpoint=resumed)
        resumed.finalize()

        assert not summary.partial
        assert [stripped(r) for r in summary.reports] == [
            stripped(r) for r in direct.reports
        ]
        assert summary.zone_failures == direct.zone_failures
        assert summary.zone_trials == direct.zone_trials
        assert not resumed.exists()


# ----------------------------------------------------------------------
# CLI: --corpus / --stop-after / --resume, byte-identical across --jobs
# ----------------------------------------------------------------------

CLI_COMMON = [
    "--count", "18",
    "--seed", "4200",
    "--checks", "estimate,semantics",
    "--steps", "6",
    "--zone-trials", "0",
    "--no-fixpoint",
]


def run_cli(tmp_path, tag, extra, jobs=1):
    report = tmp_path / f"report-{tag}.json"
    argv = CLI_COMMON + [
        "--jobs", str(jobs), "--report-json", str(report)
    ] + extra
    return cli_main(argv), report


def stable_payload(path):
    payload = json.loads(path.read_text())
    for key in VOLATILE_REPORT_KEYS:
        assert key in payload
        del payload[key]
    return payload


class TestCliResume:
    def test_resume_requires_corpus(self):
        with pytest.raises(SystemExit, match="--corpus"):
            cli_main(["--resume"])

    @pytest.mark.parametrize("jobs_pair", [(1, 4), (4, 1)])
    def test_interrupted_resume_is_byte_identical(self, tmp_path, jobs_pair):
        """The acceptance criterion: stop-after + resume == direct run.

        The interrupt and the resume run at *different* ``--jobs``
        values, and the completed report must still match a corpus-less
        direct run byte-for-byte modulo the volatile keys."""
        stop_jobs, resume_jobs = jobs_pair
        code, direct = run_cli(tmp_path, "direct", [], jobs=2)
        assert code == 0
        baseline = stable_payload(direct)
        assert baseline["partial"] is False

        corpus_dir = tmp_path / f"corpus-{stop_jobs}-{resume_jobs}"
        stopped = ["--corpus", str(corpus_dir), "--stop-after", "7"]
        code, partial = run_cli(tmp_path, "stopped", stopped, jobs=stop_jobs)
        assert code == 3
        assert (corpus_dir / "checkpoint.jsonl").exists()
        partial_payload = stable_payload(partial)
        assert partial_payload["partial"] is True
        assert partial_payload != baseline

        resume = ["--corpus", str(corpus_dir), "--resume"]
        code, completed = run_cli(tmp_path, "resumed", resume, jobs=resume_jobs)
        assert code == 0
        assert not (corpus_dir / "checkpoint.jsonl").exists()
        assert stable_payload(completed) == baseline
        # Completion graduates the finished instances into the corpus.
        assert len(Corpus(str(corpus_dir))) > 0

    def test_resume_refuses_a_foreign_journal(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        stopped = ["--corpus", str(corpus_dir), "--stop-after", "3"]
        code, _ = run_cli(tmp_path, "stopped", stopped)
        assert code == 3
        argv = [arg if arg != "4200" else "4201" for arg in CLI_COMMON]
        with pytest.raises(SystemExit, match="different campaign"):
            cli_main(argv + ["--corpus", str(corpus_dir), "--resume"])

    def test_mutation_plan_is_jobs_invariant_at_fixed_snapshot(self, tmp_path):
        """Coverage-guided mutations keep the --jobs contract.

        Two identical corpus snapshots, one campaign each at different
        --jobs: the frozen mutation plans coincide, so the reports are
        byte-identical modulo the volatile keys."""
        seed_dir = tmp_path / "seed-corpus"
        code, _ = run_cli(
            tmp_path, "populate",
            ["--corpus", str(seed_dir), "--mutations", "0"],
        )
        assert code == 0
        assert len(Corpus(str(seed_dir))) > 0
        twin_dir = tmp_path / "twin-corpus"
        shutil.copytree(seed_dir, twin_dir)

        payloads = []
        for jobs, directory in ((1, seed_dir), (3, twin_dir)):
            code, report = run_cli(
                tmp_path, f"mutated-{jobs}",
                ["--corpus", str(directory), "--mutations", "4"],
                jobs=jobs,
            )
            assert code == 0
            payloads.append(stable_payload(report))
        assert payloads[0] == payloads[1]
        assert payloads[0]["mutations"] == 4
        # The mutants really ran: every check row covers count + budget.
        for row in payloads[0]["counts"].values():
            assert sum(row.values()) == 18 + 4


# ----------------------------------------------------------------------
# Budget plumbing: --max-estimate-states reaches the trackers
# ----------------------------------------------------------------------


def hidden_pair_network():
    """go? → hidden sync → fin!: partial semantics with hidden moves."""
    net = NetworkBuilder("hiddenpair")
    net.clock("c0", "c1")
    net.input_channel("go")
    net.output_channel("h", "fin")
    net.interface("go", "fin")
    a = net.automaton("A")
    a.location("Idle", initial=True)
    a.location("Busy", "c0 <= 2")
    a.location("Done")
    a.edge("Idle", "Busy", sync="go?", assign="c0 := 0")
    a.edge("Busy", "Done", sync="h!")
    b = net.automaton("B")
    b.location("Wait", initial=True)
    b.location("Hold", "c1 <= 3")
    b.location("End")
    b.edge("Wait", "Hold", sync="h?", assign="c1 := 0")
    b.edge("Hold", "End", sync="fin!", guard="c1 >= 1")
    return net.build()


class TestEstimateBudgetPlumbing:
    def test_monitor_budget_reaches_the_tracker(self):
        system = System(hidden_pair_network())
        monitor = TiocoMonitor(system, max_states=7)
        assert monitor.estimated
        assert monitor._estimate.max_states == 7
        relativized = RelativizedMonitor(system, max_states=5)
        assert relativized._estimate.max_states == 5

    def test_cli_knob_reaches_diff_config(self):
        args = build_parser().parse_args(["--max-estimate-states", "7"])
        cfg = _diff_config_from_args(args)
        assert cfg.max_estimate_states == 7
        assert _diff_config_from_args(
            build_parser().parse_args([])
        ).max_estimate_states == 256

    def test_budget_one_turns_rich_instances_into_skips(self):
        """A starved budget SKIPs (never crashes); the default runs."""
        tight = DiffConfig(
            max_estimate_states=1, conf_steps=8, check_fixpoint=False
        )
        roomy = DiffConfig(conf_steps=8, check_fixpoint=False)
        for seed in range(20):
            instance = generate_instance(seed, "chain")
            result = check_estimate(instance, tight)
            if result.status == "skip":
                assert "state-estimate budget" in result.detail
                assert check_estimate(instance, roomy).status == "ok"
                return
        pytest.fail("no chain seed tripped the max_estimate_states=1 budget")


# ----------------------------------------------------------------------
# Merging corpora (python -m repro.corpus --merge-into)
# ----------------------------------------------------------------------


class TestMergeCorpora:
    def test_union_first_writer_wins(self, tmp_path):
        from repro.corpus import merge_corpora

        a = tmp_path / "a"
        b = tmp_path / "b"
        dest = tmp_path / "dest"
        Corpus(str(a)).add(make_entry("h1", 1, signature="sig-a"))
        Corpus(str(a)).add(make_entry("h2", 2, signature="sig-b"))
        # b disagrees about h2 (different seed) and brings h3
        Corpus(str(b)).add(make_entry("h2", 99, signature="sig-x"))
        Corpus(str(b)).add(make_entry("h3", 3, signature="sig-c"))

        stats = merge_corpora(str(dest), [str(a), str(b)])
        assert stats.added == 3
        assert stats.duplicates == 1  # b's h2 lost to a's
        merged = {e.structural_hash: e for e in Corpus(str(dest))}
        assert set(merged) == {"h1", "h2", "h3"}
        assert merged["h2"].seed == 2  # earliest source in order won

    def test_merge_is_idempotent(self, tmp_path):
        from repro.corpus import merge_corpora

        src = tmp_path / "src"
        dest = tmp_path / "dest"
        for i in range(4):
            Corpus(str(src)).add(make_entry(f"h{i}", i))
        first = merge_corpora(str(dest), [str(src)])
        again = merge_corpora(str(dest), [str(src)])
        assert first.added == 4
        assert again.added == 0 and again.duplicates == 4

    def test_cli_merge_into(self, tmp_path, capsys):
        from repro.corpus.__main__ import main

        src1 = tmp_path / "s1"
        src2 = tmp_path / "s2"
        dest = tmp_path / "merged"
        Corpus(str(src1)).add(make_entry("h1", 1))
        Corpus(str(src2)).add(make_entry("h1", 9))  # duplicate hash
        Corpus(str(src2)).add(make_entry("h2", 2))
        rc = main(["--merge-into", str(dest), str(src1), str(src2)])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["added"] == 2
        assert out["duplicates"] == 1
        assert out["dest_stats"]["entries"] == 2
