"""Tests for offline trace replay (repro.testing.replay)."""

from fractions import Fraction

import pytest

from repro.models.smartlight import smartlight_plant
from repro.semantics.system import System
from repro.testing.replay import parse_trace, replay_trace
from repro.testing.trace import TimedTrace


@pytest.fixture()
def spec():
    return System(smartlight_plant())


class TestParseTrace:
    def test_round_trip(self):
        trace = TimedTrace()
        trace.add_delay(Fraction(5, 2))
        trace.add_action("touch", "input")
        trace.add_delay(Fraction(1))
        trace.add_action("dim", "output")
        assert str(parse_trace(str(trace))) == str(trace)

    def test_empty(self):
        assert len(parse_trace("")) == 0
        assert len(parse_trace("<empty>")) == 0

    def test_fractions(self):
        trace = parse_trace("5/2 . touch?")
        assert trace.steps[0].delay == Fraction(5, 2)


class TestReplay:
    def test_conforming_trace(self, spec):
        result = replay_trace(spec, parse_trace("1 . touch? . dim! . 1 . touch? . 2 . bright!"))
        assert result.conformant, str(result)

    def test_long_idle_then_bright(self, spec):
        result = replay_trace(spec, parse_trace("25 . touch? . 2 . bright!"))
        assert result.conformant

    def test_wrong_output_detected(self, spec):
        # Quick touch pends dim!, not bright!.
        result = replay_trace(spec, parse_trace("1 . touch? . bright!"))
        assert not result.conformant
        assert result.violating_step == "bright!"
        assert "bright" in result.violation

    def test_late_output_detected(self, spec):
        result = replay_trace(spec, parse_trace("1 . touch? . 3 . dim!"))
        assert not result.conformant
        assert "quiescent" in result.violation
        assert result.steps_consumed == 2

    def test_spontaneous_output_detected(self, spec):
        result = replay_trace(spec, parse_trace("5 . dim!"))
        assert not result.conformant

    def test_boundary_output_ok(self, spec):
        result = replay_trace(spec, parse_trace("1 . touch? . 2 . dim!"))
        assert result.conformant

    def test_empty_trace_conformant(self, spec):
        assert replay_trace(spec, TimedTrace())

    def test_replay_of_executor_traces(self, spec):
        """Every trace the executor produces on conforming IMPs replays
        as conformant — the online and offline checkers agree."""
        from repro.game import Strategy, TwoPhaseSolver
        from repro.models.smartlight import smartlight_network
        from repro.tctl import parse_query
        from repro.testing import (
            LazyPolicy,
            RandomPolicy,
            SimulatedImplementation,
            execute_test,
        )

        arena = System(smartlight_network())
        strategy = Strategy(
            TwoPhaseSolver(arena, parse_query("control: A<> IUT.Bright")).solve()
        )
        for policy in (LazyPolicy(), RandomPolicy(2), RandomPolicy(9)):
            imp = SimulatedImplementation(System(smartlight_plant()), policy)
            run = execute_test(strategy, System(smartlight_plant()), imp)
            assert run.passed
            assert replay_trace(System(smartlight_plant()), run.trace)
