"""Whole-pipeline integration tests through the top-level public API.

Each test exercises the documented workflow exactly as README shows it:
model → purpose → solve → strategy → execute → verdict, plus the
serialization round trip and the validation helpers.
"""

import json
from fractions import Fraction

import pytest

import repro
from repro import (
    NetworkBuilder,
    Strategy,
    System,
    execute_test,
    parse_query,
    solve_reachability_game,
    validate_plant,
)
from repro.game import save_strategy, load_strategy
from repro.testing import EagerPolicy, LazyPolicy, SimulatedImplementation


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_documented_names_importable(self):
        for name in (
            "DBM",
            "Federation",
            "Declarations",
            "NetworkBuilder",
            "System",
            "Strategy",
            "Decision",
            "GameResult",
            "TwoPhaseSolver",
            "OnTheFlySolver",
            "SafetyGameSolver",
            "CooperativeStrategy",
            "TiocoMonitor",
            "SimulatedImplementation",
            "TestExecutor",
            "parse_query",
            "parse_expression",
            "solve_reachability_game",
            "solve_safety_game",
            "solve_cooperative",
            "execute_test",
            "check_reachable",
            "check_invariant",
            "validate_plant",
            "PASS",
            "FAIL",
            "INCONCLUSIVE",
        ):
            assert hasattr(repro, name), f"missing public name {name}"


class TestReadmeWorkflow:
    def build_coffee(self, with_env):
        net = NetworkBuilder("coffee")
        net.clock("x")
        net.input_channel("coin")
        net.output_channel("coffee")
        m = net.automaton("M")
        m.location("idle", initial=True)
        m.location("brew", invariant="x <= 4")
        m.location("cup")
        m.edge("idle", "brew", sync="coin?", assign="x := 0")
        m.edge("brew", "cup", guard="x >= 2", sync="coffee!")
        m.edge("brew", "brew", sync="coin?")
        m.edge("cup", "cup", sync="coin?")
        if with_env:
            e = net.automaton("E")
            e.location("e", initial=True)
            e.edge("e", "e", sync="coin!")
            e.edge("e", "e", sync="coffee?")
        return net.build()

    def test_full_workflow(self, tmp_path):
        arena = System(self.build_coffee(True))
        plant = System(self.build_coffee(False))

        report = validate_plant(plant)
        assert report.ok, str(report)

        result = solve_reachability_game(arena, parse_query("control: A<> M.cup"))
        assert result.winning
        strategy = Strategy(result)

        path = tmp_path / "coffee.json"
        save_strategy(strategy, path)
        packed = load_strategy(System(self.build_coffee(True)), path)

        for runner in (strategy, packed):
            for policy in (EagerPolicy(), LazyPolicy()):
                imp = SimulatedImplementation(
                    System(self.build_coffee(False)), policy
                )
                run = execute_test(runner, plant, imp)
                assert run.passed, str(run)
                assert run.trace.actions[-1].label == "coffee"

    def test_verdict_on_broken_machine(self):
        from repro.testing.mutants import widen_invariant

        arena = System(self.build_coffee(True))
        plant = System(self.build_coffee(False))
        strategy = Strategy(
            solve_reachability_game(arena, parse_query("control: A<> M.cup"))
        )
        broken = widen_invariant(self.build_coffee(False), "M", "brew", +3)
        imp = SimulatedImplementation(System(broken), LazyPolicy())
        run = execute_test(strategy, plant, imp)
        assert run.failed
        assert "quiescent" in run.reason


class TestCrossModel:
    """All three shipped case studies run through the same pipeline."""

    def test_smartlight(self):
        from repro.models import smartlight_network, smartlight_plant

        arena = System(smartlight_network())
        result = solve_reachability_game(
            arena, parse_query("control: A<> IUT.Bright")
        )
        strategy = Strategy(result)
        imp = SimulatedImplementation(System(smartlight_plant()), EagerPolicy())
        run = execute_test(strategy, System(smartlight_plant()), imp)
        assert run.passed

    def test_lep(self):
        from repro.models import TP1, lep_network, lep_plant

        arena = System(lep_network(3))
        result = solve_reachability_game(arena, parse_query(TP1), time_limit=60)
        strategy = Strategy(result)
        imp = SimulatedImplementation(System(lep_plant(3)), LazyPolicy())
        run = execute_test(strategy, System(lep_plant(3)), imp)
        assert run.passed

    def test_traingate(self):
        from repro.models import exclusion_purpose, traingate_network
        from repro import solve_safety_game

        arena = System(traingate_network(2))
        result = solve_safety_game(
            arena, parse_query(exclusion_purpose(2)), time_limit=120
        )
        assert result.winning


class TestExtendedPublicApi:
    def test_extension_names_importable(self):
        import repro

        for name in (
            "find_deadlocks",
            "SafetyStrategy",
            "TestCampaign",
            "CampaignReport",
            "replay_trace",
            "save_strategy",
            "load_strategy",
            "PackedStrategy",
            "RelativizedMonitor",
        ):
            assert hasattr(repro, name), f"missing public name {name}"
