"""Edge-case tests: urgent locations, declaration validation, solver
parameters, and miscellaneous small behaviours."""

from fractions import Fraction

import pytest

from repro.expr.env import DeclarationError, Declarations
from repro.game import OnTheFlySolver, TwoPhaseSolver
from repro.semantics.system import System
from repro.ta import NetworkBuilder
from repro.tctl import parse_query


class TestUrgentLocations:
    def make(self):
        net = NetworkBuilder("urgent")
        net.clock("x")
        net.input_channel("go")
        net.output_channel("done")
        p = net.automaton("P")
        p.location("s", initial=True)
        p.location("u", urgent=True)
        p.location("t")
        p.edge("s", "u", sync="go?", assign="x := 0")
        p.edge("u", "t", sync="done!")
        e = net.automaton("E")
        e.location("e", initial=True)
        e.edge("e", "e", sync="go!")
        e.edge("e", "e", sync="done?")
        return System(net.build())

    def test_no_delay_in_urgent(self):
        sys_ = self.make()
        assert not sys_.can_delay((1, 0))
        assert sys_.can_delay((0, 0))

    def test_urgent_output_fires_instantly_in_game(self):
        sys_ = self.make()
        res = TwoPhaseSolver(sys_, parse_query("control: A<> P.t")).solve()
        assert res.winning

    def test_urgent_zone_not_delay_closed(self):
        sys_ = self.make()
        init = sys_.initial_symbolic()
        go = sys_.moves_from(init.locs, init.vars)[0]
        post = sys_.post(init, go)
        closed = sys_.delay_closure(post)
        # Urgent: the delay closure is the identity.
        assert closed.zone.equals(post.zone)
        assert not closed.zone.contains([0, Fraction(1)])


class TestDeclarations:
    def test_duplicate_names_rejected_across_kinds(self):
        d = Declarations()
        d.add_constant("k", 1)
        with pytest.raises(DeclarationError):
            d.add_int("k")
        with pytest.raises(DeclarationError):
            d.add_clock("k")
        with pytest.raises(DeclarationError):
            d.add_array("k", 3)
        with pytest.raises(DeclarationError):
            d.add_range_type("k", 0, 1)

    def test_init_outside_range_rejected(self):
        d = Declarations()
        with pytest.raises(DeclarationError):
            d.add_int("v", 0, 5, init=9)

    def test_array_initializer_checked(self):
        d = Declarations()
        with pytest.raises(DeclarationError):
            d.add_array("a", 2, 0, 1, init=[0, 7])
        with pytest.raises(DeclarationError):
            d.add_array("b", 2, 0, 1, init=[0])
        with pytest.raises(DeclarationError):
            d.add_array("c", 0, 0, 1)

    def test_empty_range_type_rejected(self):
        d = Declarations()
        with pytest.raises(DeclarationError):
            d.add_range_type("R", 3, 2)

    def test_state_to_dict(self):
        d = Declarations()
        d.add_int("v", 0, 9, init=4)
        d.add_array("a", 2, 0, 5, init=[1, 2])
        view = d.state_to_dict(d.initial_state())
        assert view == {"v": 4, "a": [1, 2]}

    def test_clock_indices_one_based(self):
        d = Declarations()
        assert d.add_clock("x") == 1
        assert d.add_clock("y") == 2
        assert d.clock_index("y") == 2
        assert d.clock_index("nope") is None
        assert d.dbm_dim == 3


class TestSolverParameters:
    @pytest.mark.parametrize("wave_size", [1, 2, 16, 256])
    def test_wave_size_does_not_change_verdict(self, wave_size):
        from repro.models.smartlight import smartlight_network

        sys_ = System(smartlight_network())
        solver = OnTheFlySolver(sys_, parse_query("control: A<> IUT.Bright"))
        result = solver.solve(wave_size=wave_size)
        assert result.winning

    def test_time_limit_raises(self):
        from repro.graph import ExplorationLimit
        from repro.models.lep import TP2, lep_network

        sys_ = System(lep_network(5))
        solver = TwoPhaseSolver(sys_, parse_query(TP2), time_limit=0.05)
        with pytest.raises(ExplorationLimit):
            solver.solve()

    def test_max_nodes_raises(self):
        from repro.graph import ExplorationLimit
        from repro.models.lep import TP2, lep_network

        sys_ = System(lep_network(4))
        solver = TwoPhaseSolver(sys_, parse_query(TP2), max_nodes=10)
        with pytest.raises(ExplorationLimit):
            solver.solve()


class TestDelayInterval:
    def test_pick_closed(self):
        from repro.semantics.system import DelayInterval

        i = DelayInterval(Fraction(2), False, Fraction(4), False)
        assert i.pick() == 2

    def test_pick_open_bounded(self):
        from repro.semantics.system import DelayInterval

        i = DelayInterval(Fraction(2), True, Fraction(4), False)
        assert i.pick() == 3
        assert i.contains(i.pick())

    def test_pick_open_unbounded(self):
        from repro.semantics.system import DelayInterval

        i = DelayInterval(Fraction(2), True, None, False)
        assert i.pick() == 3

    def test_empty_detection(self):
        from repro.semantics.system import DelayInterval

        assert DelayInterval(Fraction(3), False, Fraction(2), False).is_empty()
        assert DelayInterval(Fraction(2), True, Fraction(2), False).is_empty()
        assert not DelayInterval(Fraction(2), False, Fraction(2), False).is_empty()
