"""Tests for the timed reachability-game solver on hand-crafted games.

Each model here is small enough that the winner is obvious by inspection;
together they cover the solver's distinct mechanisms: controllable
reachability, uncontrollable spoilers, safe-delay computation (Predt),
forced outputs at invariant boundaries, committed states, and rank-layer
bookkeeping.
"""

from fractions import Fraction

import pytest

from repro.game import (
    GameError,
    OnTheFlySolver,
    Strategy,
    TwoPhaseSolver,
    solve_reachability_game,
)
from repro.semantics.system import System
from repro.ta import NetworkBuilder
from repro.tctl import parse_query


def solve(net, query_text, on_the_fly=False):
    sys_ = System(net)
    return sys_, solve_reachability_game(
        sys_, parse_query(query_text), on_the_fly=on_the_fly
    )


def simple_reach():
    """Controller can always reach goal via its own input."""
    net = NetworkBuilder("simple")
    net.clock("x")
    net.input_channel("go")
    p = net.automaton("P")
    p.location("a", initial=True)
    p.location("goal")
    p.edge("a", "goal", guard="x >= 2", sync="go?")
    e = net.automaton("E")
    e.location("e", initial=True)
    e.edge("e", "e", sync="go!")
    return net.build()


def spoiler_game(guard_window: str):
    """The plant may divert to a trap while the controller waits.

    The controller must take ``go`` within the window; the plant can fire
    ``bad!`` once w >= 3 and send the game to a trap.
    """
    net = NetworkBuilder("spoiler")
    net.clock("w")
    net.input_channel("go")
    net.output_channel("bad")
    p = net.automaton("P")
    p.location("a", initial=True)
    p.location("goal")
    p.location("trap")
    p.edge("a", "goal", guard=guard_window, sync="go?")
    p.edge("a", "trap", guard="w >= 3", sync="bad!")
    e = net.automaton("E")
    e.location("e", initial=True)
    e.edge("e", "e", sync="go!")
    e.edge("e", "e", sync="bad?")
    return net.build()


def forced_output_game():
    """Goal reachable only through an uncontrollable—but forced—output."""
    net = NetworkBuilder("forced")
    net.clock("x")
    net.input_channel("kick")
    net.output_channel("done")
    p = net.automaton("P")
    p.location("a", initial=True)
    p.location("pend", invariant="x <= 2")
    p.location("goal")
    p.edge("a", "pend", sync="kick?", assign="x := 0")
    p.edge("pend", "goal", sync="done!")
    e = net.automaton("E")
    e.location("e", initial=True)
    e.edge("e", "e", sync="kick!")
    e.edge("e", "e", sync="done?")
    return net.build()


def quiescent_trap_game():
    """Like forced_output_game but the plant may also idle forever
    (no invariant), so the output is NOT forced and the game is lost."""
    net = NetworkBuilder("quiescent")
    net.clock("x")
    net.input_channel("kick")
    net.output_channel("done")
    p = net.automaton("P")
    p.location("a", initial=True)
    p.location("pend")  # no invariant: output may never come
    p.location("goal")
    p.edge("a", "pend", sync="kick?", assign="x := 0")
    p.edge("pend", "goal", sync="done!")
    e = net.automaton("E")
    e.location("e", initial=True)
    e.edge("e", "e", sync="kick!")
    e.edge("e", "e", sync="done?")
    return net.build()


def output_choice_game():
    """The plant chooses between a good and a bad forced output."""
    net = NetworkBuilder("choice")
    net.clock("x")
    net.input_channel("kick")
    net.output_channel("good", "badout")
    p = net.automaton("P")
    p.location("a", initial=True)
    p.location("pend", invariant="x <= 2")
    p.location("goal")
    p.location("trap")
    p.edge("a", "pend", sync="kick?", assign="x := 0")
    p.edge("pend", "goal", sync="good!")
    p.edge("pend", "trap", sync="badout!")
    e = net.automaton("E")
    e.location("e", initial=True)
    for c in ("good", "badout"):
        e.edge("e", "e", sync=f"{c}?")
    e.edge("e", "e", sync="kick!")
    return net.build()


class TestBasicGames:
    def test_simple_reach_winning(self):
        sys_, res = solve(simple_reach(), "control: A<> P.goal")
        assert res.winning

    def test_unreachable_goal_losing(self):
        net = NetworkBuilder("never")
        net.clock("x")
        net.input_channel("go")
        p = net.automaton("P")
        p.location("a", initial=True)
        p.location("goal")
        p.edge("a", "a", sync="go?")
        e = net.automaton("E")
        e.location("e", initial=True)
        e.edge("e", "e", sync="go!")
        sys_, res = solve(net.build(), "control: A<> P.goal")
        assert not res.winning

    def test_initially_satisfied_goal(self):
        sys_, res = solve(simple_reach(), "control: A<> P.a")
        assert res.winning

    def test_clock_constrained_goal(self):
        sys_, res = solve(simple_reach(), "control: A<> P.goal && x <= 10")
        assert res.winning

    def test_unsatisfiable_clock_goal(self):
        # x >= 2 is needed to move, and the goal wants x < 1 at arrival.
        sys_, res = solve(simple_reach(), "control: A<> P.goal && x < 1")
        assert not res.winning


class TestSpoiler:
    def test_window_before_spoiler_wins(self):
        # Controller can go at w in [1, 3]; spoiler fires from w >= 3.
        sys_, res = solve(spoiler_game("w >= 1 && w <= 3"), "control: A<> P.goal")
        assert res.winning

    def test_window_after_spoiler_loses(self):
        # Controller can only go from w >= 4, but the plant may fire bad!
        # anywhere in w >= 3 — in particular before 4.
        sys_, res = solve(spoiler_game("w >= 4"), "control: A<> P.goal")
        assert not res.winning

    def test_tie_at_boundary_favours_opponent(self):
        # Both enabled exactly at w == 3: opponent wins the race.
        sys_, res = solve(spoiler_game("w >= 3 && w <= 3"), "control: A<> P.goal")
        assert not res.winning


class TestForcedOutputs:
    def test_invariant_forces_output(self):
        sys_, res = solve(forced_output_game(), "control: A<> P.goal")
        assert res.winning

    def test_without_invariant_not_forced(self):
        sys_, res = solve(quiescent_trap_game(), "control: A<> P.goal")
        assert not res.winning

    def test_plant_output_choice_defeats(self):
        sys_, res = solve(output_choice_game(), "control: A<> P.goal")
        assert not res.winning

    def test_plant_output_choice_both_goals(self):
        # If both outcomes are goals, the forced choice is harmless.
        sys_, res = solve(
            output_choice_game(), "control: A<> P.goal || P.trap"
        )
        assert res.winning


class TestSolverVariants:
    @pytest.mark.parametrize("factory,query,expected", [
        (simple_reach, "control: A<> P.goal", True),
        (forced_output_game, "control: A<> P.goal", True),
        (quiescent_trap_game, "control: A<> P.goal", False),
        (output_choice_game, "control: A<> P.goal", False),
    ])
    def test_on_the_fly_agrees_with_two_phase(self, factory, query, expected):
        _, two_phase = solve(factory(), query, on_the_fly=False)
        _, otf = solve(factory(), query, on_the_fly=True)
        assert two_phase.winning == otf.winning == expected

    def test_on_the_fly_explores_less_on_positive(self):
        from repro.models.lep import TP2, lep_network

        sys_ = System(lep_network(4))
        otf = OnTheFlySolver(sys_, parse_query(TP2)).solve()
        full = TwoPhaseSolver(sys_, parse_query(TP2)).solve()
        assert otf.winning and full.winning
        assert otf.nodes_explored < full.nodes_explored

    def test_wrong_query_kind_rejected(self):
        sys_ = System(simple_reach())
        with pytest.raises(GameError):
            TwoPhaseSolver(sys_, parse_query("control: A[] x >= 0"))


class TestWinningSets:
    def test_win_layers_monotone(self):
        sys_, res = solve(forced_output_game(), "control: A<> P.goal")
        for entry in res.wins.values():
            steps = [step for step, _ in entry.layers]
            assert steps == sorted(steps)

    def test_win_within_zone(self):
        sys_, res = solve(spoiler_game("w >= 1 && w <= 3"), "control: A<> P.goal")
        from repro.dbm import Federation

        for node in res.graph.nodes:
            win = res.win_of(node)
            assert Federation.from_zone(node.zone).includes(win)

    def test_initial_win_requires_point(self):
        # The game is won from the zero valuation specifically.
        sys_, res = solve(spoiler_game("w >= 1 && w <= 3"), "control: A<> P.goal")
        init_win = res.win_of(res.graph.initial)
        assert init_win.contains(sys_.initial_concrete().clocks)
