"""Kernel backend seam: registry, dispatch, and minimal-form interning.

Covers the selection/fallback behavior of :mod:`repro.dbm.backends`
(environment variable, ``auto`` probing, unavailable-backend fallback,
counters), the ``REPRO_BATCH_MIN`` dispatch override, per-backend
exactness differentials on the hot kernels, and the minimal-constraint
form promoted into :mod:`repro.dbm.minform` (round-trip and
key-stability properties, plus the explorer's zone-object interning
built on it).
"""

import random
import warnings

import numpy as np
import pytest
from hypothesis import given, settings

from repro.dbm import DBM, minimal_constraints, verified_minimal_constraints
from repro.dbm import backends as backends_mod
from repro.dbm import stack as sk
from repro.dbm.backends.base import BackendUnavailable, KernelBackend
from repro.dbm.backends.numba_backend import python_kernels
from repro.gen.zones import random_zone
from repro.graph.explorer import SimulationGraph
from repro.semantics.system import System
from repro.ta.builder import NetworkBuilder
from repro.util import counters
from tests.zone_strategies import DIM, diagonal_zones, zones

AVAILABLE = backends_mod.available_backends()
UNDER_TEST = AVAILABLE + ["numba-py"]


def instance_of(name):
    if name == "numba-py":
        return python_kernels()
    return backends_mod.resolve(name)


@pytest.fixture(autouse=True)
def _clean_backend_state(monkeypatch):
    """Each test starts from an unresolved selection and a clean env."""
    monkeypatch.delenv(backends_mod.ENV_VAR, raising=False)
    monkeypatch.delenv("REPRO_BATCH_MIN", raising=False)
    previous = backends_mod.set_backend(None)
    yield
    backends_mod.set_backend(None)


# ----------------------------------------------------------------------
# Registry / selection
# ----------------------------------------------------------------------


def test_numpy_always_available_and_default():
    assert "numpy" in AVAILABLE
    backend = backends_mod.active()
    assert backend.name == "numpy"
    assert not backend.compiled
    assert isinstance(backend, KernelBackend)


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(backends_mod.ENV_VAR, "numpy")
    backends_mod.set_backend(None)
    assert backends_mod.active().name == "numpy"


def test_auto_resolves_to_some_available_backend():
    backend = backends_mod.resolve("auto")
    assert backend.name in AVAILABLE


def test_unavailable_explicit_backend_falls_back_with_warning():
    counters.reset()
    backends_mod._warned_fallback = False
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        backend = backends_mod.resolve("no-such-backend")
    assert backend.name == "numpy"
    assert counters.export()["counts"]["dbm.backend_fallbacks"] == 1
    assert any("no-such-backend" in str(w.message) for w in caught)


def test_resolution_and_dispatch_counters():
    counters.reset()
    with backends_mod.use_backend(backends_mod.resolve("numpy")):
        sk.close(np.stack([DBM.universal(3).m.copy()]))
    exported = counters.export()["counts"]
    assert exported["dbm.backend_selected_numpy"] == 1
    assert exported["dbm.backend_numpy"] >= 1


def test_use_backend_restores_previous():
    before = backends_mod.active().name
    with backends_mod.use_backend(python_kernels()) as installed:
        assert backends_mod.active() is installed
    assert backends_mod.active().name == before


def test_every_available_backend_satisfies_protocol():
    for name in UNDER_TEST:
        backend = instance_of(name)
        assert isinstance(backend, KernelBackend)
        assert backend.counter.startswith("dbm.backend_")


# ----------------------------------------------------------------------
# Dispatch threshold
# ----------------------------------------------------------------------


def test_batch_min_default_and_override(monkeypatch):
    assert sk.batch_min() == sk.BATCH_MIN
    monkeypatch.setenv("REPRO_BATCH_MIN", "7")
    assert sk.batch_min() == 7
    monkeypatch.setenv("REPRO_BATCH_MIN", "0")
    assert sk.batch_min() == 1  # clamped to at least one
    monkeypatch.setenv("REPRO_BATCH_MIN", "junk")
    assert sk.batch_min() == sk.BATCH_MIN


def test_federation_records_dispatch_decisions(monkeypatch):
    from repro.dbm import Federation, le

    counters.reset()
    strips = [
        DBM.from_constraints(3, [(1, 0, le(b)), (0, 1, le(-b + 1))])
        for b in (2, 4, 6, 8)
    ]
    small = Federation(3, strips[:2])
    big = Federation(3, strips)
    assert len(small) == 2 < sk.batch_min() <= len(big) == 4
    small.intersect_zone(strips[0])  # below threshold: scalar path
    big.intersect_zone(strips[0])  # above threshold: batched path
    exported = counters.export()["counts"]
    assert exported.get("federation.scalar_dispatch", 0) >= 1
    assert exported.get("federation.batched_dispatch", 0) >= 1


# ----------------------------------------------------------------------
# Per-backend kernel differentials
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend_name", UNDER_TEST)
def test_backend_close_matches_reference(backend_name):
    backend = instance_of(backend_name)
    rng = random.Random(7)
    for _ in range(25):
        dim = rng.randint(2, 5)
        zs = [random_zone(rng, dim) for _ in range(rng.randint(1, 5))]
        zs = [z for z in zs if not z.is_empty()] or [DBM.universal(dim)]
        raw = np.stack([z.m for z in zs])
        for _ in range(rng.randint(0, 4)):
            i, j = rng.randrange(dim), rng.randrange(dim)
            if i != j:
                raw[rng.randrange(len(zs)), i, j] = rng.randint(-9, 17)
        ref_m, got_m = raw.copy(), raw.copy()
        ref_ok = sk._close_ref(ref_m)
        got_ok = backend.close(got_m)
        assert np.array_equal(ref_ok, got_ok)
        assert np.array_equal(ref_m[ref_ok], got_m[ref_ok])


@pytest.mark.parametrize("backend_name", UNDER_TEST)
def test_backend_fused_post_matches_reference(backend_name):
    backend = instance_of(backend_name)
    rng = random.Random(11)
    for _ in range(25):
        dim = rng.randint(3, 5)
        zs = []
        while len(zs) < rng.randint(1, 4):
            z = random_zone(rng, dim)
            if not z.is_empty():
                zs.append(z)
        stack = np.stack([z.m for z in zs])
        from repro.dbm import bound

        cons = lambda n: [
            (i, j, bound(rng.randint(-4, 8), rng.random() < 0.5))
            for i, j in [
                (rng.randrange(dim), rng.randrange(dim))
                for _ in range(rng.randint(0, n))
            ]
            if i != j
        ]
        guard, inv = cons(3), cons(3)
        resets = rng.sample(range(1, dim), rng.randint(0, dim - 1))
        shifts = [
            (c, rng.randint(0, 4))
            for c in rng.sample(range(1, dim), rng.randint(0, dim - 1))
        ]
        delay = rng.random() < 0.5
        ref_m, got_m = stack.copy(), stack.copy()
        ref_ok = sk._hidden_post_step_ref(
            ref_m, guard, resets, shifts, inv, delay
        )
        got_ok = backend.hidden_post_step(
            got_m, guard, resets, shifts, inv, delay
        )
        assert np.array_equal(ref_ok, got_ok)
        assert np.array_equal(ref_m[ref_ok], got_m[ref_ok])
        assert backend.any_hidden_post(
            stack.copy(), guard, resets, shifts, inv
        ) == sk._any_hidden_post_ref(stack.copy(), guard, resets, shifts, inv)


@pytest.mark.parametrize("backend_name", UNDER_TEST)
def test_backend_subsumption_matches_reference(backend_name):
    backend = instance_of(backend_name)
    rng = random.Random(13)
    for _ in range(25):
        dim = rng.randint(2, 5)

        def stack_of(n):
            zs = []
            while len(zs) < n:
                z = random_zone(rng, dim)
                if not z.is_empty():
                    zs.append(z)
            return np.stack([z.m for z in zs])

        new = stack_of(rng.randint(1, 5))
        seen = stack_of(rng.randint(1, 4)) if rng.random() < 0.8 else None
        assert np.array_equal(
            sk._inclusion_matrix_ref(new, new),
            backend.inclusion_matrix(new, new),
        )
        assert sk._reduce_indices_ref(new) == backend.reduce_indices(new)
        ref_keep, ref_drop = sk._subsume_frontier_ref(new.copy(), seen)
        got_keep, got_drop = backend.subsume_frontier(new.copy(), seen)
        assert np.array_equal(ref_keep, got_keep)
        assert np.array_equal(ref_drop, got_drop)


@pytest.mark.parametrize(
    "backend_name", [n for n in UNDER_TEST if n != "numpy"]
)
def test_estimate_session_identical_across_backends(backend_name):
    """End-to-end: a monitor session agrees exactly with the numpy run."""
    from fractions import Fraction

    from repro.semantics import StateEstimate

    net = NetworkBuilder("pair")
    net.clock("x", "y")
    net.input_channel("go")
    net.output_channel("done", "hop")
    net.interface("go", "done")
    a = net.automaton("A")
    a.location("Idle", initial=True)
    a.location("Busy", "x <= 3")
    a.location("End")
    a.edge("Idle", "Busy", sync="go?", assign="x := 0")
    a.edge("Busy", "End", sync="hop!", guard="x >= 1", assign="y := 0")
    network = net.build()

    def drive():
        estimate = StateEstimate(System(network), max_states=256)
        trace = []
        trace.append(estimate.observe("go", "input"))
        trace.append(estimate.max_quiescence())
        trace.append(estimate.advance(Fraction(1, 2)))
        trace.append(estimate.max_quiescence())
        trace.append(estimate.enabled_labels("output"))
        trace.append(
            sorted(
                (m.locs, m.vars, m.zone.hash_key())
                for m in estimate.states
            )
        )
        return trace

    reference = drive()
    with backends_mod.use_backend(instance_of(backend_name)):
        assert drive() == reference


# ----------------------------------------------------------------------
# Minimal-constraint form (repro.dbm.minform)
# ----------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(zones())
def test_minform_round_trip(zone):
    if zone.is_empty():
        return
    cons = minimal_constraints(zone)
    rebuilt = DBM.from_constraints(zone.dim, cons)
    assert rebuilt.hash_key() == zone.hash_key()
    assert len(cons) <= len(zone.nontrivial_constraints())


@settings(max_examples=80, deadline=None)
@given(diagonal_zones())
def test_minform_round_trip_diagonal(zone):
    if zone.is_empty():
        return
    cons = verified_minimal_constraints(zone)
    assert DBM.from_constraints(zone.dim, cons).hash_key() == zone.hash_key()


@settings(max_examples=60, deadline=None)
@given(zones())
def test_minimal_key_stability(zone):
    """Equal zones (however constructed) share one minimal key."""
    key = zone.minimal_key()
    assert key == zone.minimal_key()  # memo is stable
    if zone.is_empty():
        assert key == DBM.empty(zone.dim).minimal_key()
        return
    rebuilt = DBM.from_constraints(
        zone.dim, minimal_constraints(zone)
    )
    assert rebuilt.minimal_key() == key
    full = DBM.from_constraints(zone.dim, zone.nontrivial_constraints())
    assert full.minimal_key() == key


def test_minimal_key_distinguishes_zones():
    from repro.dbm import le

    a = DBM.from_constraints(DIM, [(1, 0, le(4))])
    b = DBM.from_constraints(DIM, [(1, 0, le(5))])
    assert a.minimal_key() != b.minimal_key()
    assert a.minimal_key() != DBM.empty(DIM).minimal_key()


def test_minimal_key_smaller_than_matrix_key():
    from repro.dbm import le

    zone = DBM.from_constraints(6, [(1, 0, le(4)), (0, 2, le(-1))])
    assert len(zone.minimal_key()) < len(zone.hash_key())


def test_warm_reexports_minform():
    from repro.game import warm

    assert warm.minimal_constraints is minimal_constraints


# ----------------------------------------------------------------------
# Explorer zone interning
# ----------------------------------------------------------------------


def _loop_network():
    net = NetworkBuilder("loop")
    net.clock("x")
    net.output_channel("tick")
    a = net.automaton("A")
    a.location("L", "x <= 2", initial=True)
    a.edge("L", "L", sync="tick!", guard="x >= 1", assign="x := 0")
    return net.build()


def test_explorer_interns_equal_zones():
    graph = SimulationGraph(System(_loop_network()))
    graph.explore_all()
    ids = {}
    for node in graph.nodes:
        ids.setdefault(node.zone.minimal_key(), set()).add(
            id(node.zone)
        )
    for key, objects in ids.items():
        assert len(objects) == 1, "equal zones must share one DBM object"


def test_explorer_interning_preserves_graph_shape():
    reference = SimulationGraph(System(_loop_network()))
    reference.explore_all()
    again = SimulationGraph(System(_loop_network()))
    again.explore_all()
    assert reference.node_count == again.node_count
    assert reference.edge_count == again.edge_count
