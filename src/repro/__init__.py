"""repro — game-theoretic real-time system testing.

A from-scratch reproduction of:

    A. David, K. G. Larsen, S. Li, B. Nielsen.
    "A Game-Theoretic Approach to Real-Time System Testing." DATE 2008.

The library models uncontrollable real-time systems as Timed I/O Game
Automata, synthesizes winning strategies for TCTL test purposes with a
built-in timed-game solver (an UPPAAL-TIGA analogue over a DBM/federation
kernel), and executes those strategies as test cases against black-box
implementations under the tioco conformance relation.

Quickstart::

    from repro import NetworkBuilder, System, parse_query
    from repro import solve_reachability_game, Strategy

    # build a TIOGA network (see repro.models.smartlight for a full one)
    system = System(network)
    result = solve_reachability_game(system, parse_query("control: A<> IUT.Goal"))
    strategy = Strategy(result)

Execute the strategy against an implementation — in-process::

    from repro import SessionConfig, SimulatedImplementation, execute_test
    imp = SimulatedImplementation(System(plant_network), EagerPolicy())
    run = execute_test(strategy, System(plant_network), imp,
                       config=SessionConfig(max_states=512))

or over the network: ``python -m repro.server --port 0`` accepts any
peer speaking the newline-JSON protocol (see :mod:`repro.server`), and
both drivers replay the same sans-IO :class:`TestSession`, so verdicts
agree by construction.
"""

from .dbm import DBM, Federation
from .expr.env import Declarations
from .expr.parser import parse_assignments, parse_expression
from .game.cooperative import CooperativeStrategy, solve_cooperative
from .game.export import PackedStrategy, load_strategy, save_strategy
from .game.safety import (
    SafetyGameSolver,
    SafetyResult,
    SafetyStrategy,
    solve_safety_game,
)
from .game.solver import (
    GameError,
    GameResult,
    OnTheFlySolver,
    TwoPhaseSolver,
    solve_reachability_game,
)
from .game.strategy import Decision, Strategy, Verdictish
from .graph.explorer import ExplorationLimit, SimulationGraph
from .graph.reachability import check_invariant, check_reachable, find_deadlocks
from .semantics.state import ConcreteState, SymbolicState
from .semantics.system import Move, System
from .ta.builder import AutomatonBuilder, NetworkBuilder
from .ta.model import Network, ModelError
from .ta.validate import validate_plant
from .tctl.goals import GoalPredicate
from .tctl.query import Query, parse_query
from .testing import (
    CampaignReport,
    EagerPolicy,
    LazyPolicy,
    QuiescentPolicy,
    RandomPolicy,
    RelativizedMonitor,
    SessionConfig,
    SimulatedImplementation,
    TestCampaign,
    TestExecutor,
    TestSession,
    TiocoMonitor,
    execute_test,
    replay_trace,
)
from .testing.trace import FAIL, INCONCLUSIVE, PASS, TestRun, TimedTrace

# Random model generation + differential testing (kept last: it builds on
# every layer above).
from . import gen  # noqa: E402  (cycle-safe: repro core is fully loaded)

# The network driver (repro.server) re-exports resolve lazily so that
# library users don't pay its asyncio import footprint: the extra
# GC-tracked objects measurably slow allocation-heavy zone kernels.
_SERVER_EXPORTS = ("IUTClient", "ServerConfig", "TestServer", "run_remote_test")


def __getattr__(name):
    if name in _SERVER_EXPORTS:
        from . import server

        value = getattr(server, name)
        globals()[name] = value  # cache: next access skips __getattr__
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_SERVER_EXPORTS))

__version__ = "1.2.0"

__all__ = [
    "AutomatonBuilder",
    "CampaignReport",
    "ConcreteState",
    "CooperativeStrategy",
    "DBM",
    "Decision",
    "Declarations",
    "EagerPolicy",
    "ExplorationLimit",
    "FAIL",
    "Federation",
    "GameError",
    "GameResult",
    "GoalPredicate",
    "INCONCLUSIVE",
    "IUTClient",
    "LazyPolicy",
    "ModelError",
    "Move",
    "Network",
    "NetworkBuilder",
    "OnTheFlySolver",
    "PASS",
    "PackedStrategy",
    "Query",
    "QuiescentPolicy",
    "RandomPolicy",
    "RelativizedMonitor",
    "SafetyGameSolver",
    "SafetyResult",
    "SafetyStrategy",
    "ServerConfig",
    "SessionConfig",
    "SimulatedImplementation",
    "SimulationGraph",
    "Strategy",
    "SymbolicState",
    "System",
    "TestCampaign",
    "TestExecutor",
    "TestRun",
    "TestServer",
    "TestSession",
    "TimedTrace",
    "TiocoMonitor",
    "TwoPhaseSolver",
    "Verdictish",
    "check_invariant",
    "check_reachable",
    "execute_test",
    "find_deadlocks",
    "gen",
    "load_strategy",
    "parse_assignments",
    "parse_expression",
    "parse_query",
    "replay_trace",
    "run_remote_test",
    "save_strategy",
    "solve_cooperative",
    "solve_reachability_game",
    "solve_safety_game",
    "validate_plant",
]
