"""repro — game-theoretic real-time system testing.

A from-scratch reproduction of:

    A. David, K. G. Larsen, S. Li, B. Nielsen.
    "A Game-Theoretic Approach to Real-Time System Testing." DATE 2008.

The library models uncontrollable real-time systems as Timed I/O Game
Automata, synthesizes winning strategies for TCTL test purposes with a
built-in timed-game solver (an UPPAAL-TIGA analogue over a DBM/federation
kernel), and executes those strategies as test cases against black-box
implementations under the tioco conformance relation.

Quickstart::

    from repro import NetworkBuilder, System, parse_query
    from repro import solve_reachability_game, Strategy

    # build a TIOGA network (see repro.models.smartlight for a full one)
    system = System(network)
    result = solve_reachability_game(system, parse_query("control: A<> IUT.Goal"))
    strategy = Strategy(result)
"""

from .dbm import DBM, Federation
from .expr.env import Declarations
from .expr.parser import parse_assignments, parse_expression
from .game.cooperative import CooperativeStrategy, solve_cooperative
from .game.export import PackedStrategy, load_strategy, save_strategy
from .game.safety import (
    SafetyGameSolver,
    SafetyResult,
    SafetyStrategy,
    solve_safety_game,
)
from .game.solver import (
    GameError,
    GameResult,
    OnTheFlySolver,
    TwoPhaseSolver,
    solve_reachability_game,
)
from .game.strategy import Decision, Strategy, Verdictish
from .graph.explorer import ExplorationLimit, SimulationGraph
from .graph.reachability import check_invariant, check_reachable, find_deadlocks
from .semantics.state import ConcreteState, SymbolicState
from .semantics.system import Move, System
from .ta.builder import AutomatonBuilder, NetworkBuilder
from .ta.model import Network, ModelError
from .ta.validate import validate_plant
from .tctl.goals import GoalPredicate
from .tctl.query import Query, parse_query
from .testing import (
    CampaignReport,
    EagerPolicy,
    LazyPolicy,
    QuiescentPolicy,
    RandomPolicy,
    RelativizedMonitor,
    SimulatedImplementation,
    TestCampaign,
    TestExecutor,
    TiocoMonitor,
    execute_test,
    replay_trace,
)
from .testing.trace import FAIL, INCONCLUSIVE, PASS, TestRun, TimedTrace

# Random model generation + differential testing (kept last: it builds on
# every layer above).
from . import gen  # noqa: E402  (cycle-safe: repro core is fully loaded)

__version__ = "1.1.0"
