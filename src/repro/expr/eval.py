"""Evaluation of integer/boolean expressions over discrete states.

Clocks never appear here: guards are split into clock atoms and integer
atoms by :mod:`repro.expr.clocksplit`, and only the integer part reaches
this evaluator.  Booleans are represented as ints (0/1), matching UPPAAL's
coercion rules closely enough for the models in this project.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from .ast import (
    ArrayIndex,
    Assignment,
    Binary,
    BoolLiteral,
    Expr,
    Field,
    IntLiteral,
    Name,
    Quantifier,
    Unary,
)
from .env import Declarations


class EvalError(ValueError):
    """Raised on bad name references, type misuse, or division by zero."""


LocationTest = Callable[[str, str], bool]


class Context:
    """Everything needed to evaluate an expression.

    ``location_test(process, location)`` resolves dotted atoms like
    ``IUT.Bright``; it may be None when such atoms are illegal (e.g. in
    edge guards).
    """

    __slots__ = ("decls", "state", "bindings", "location_test")

    def __init__(
        self,
        decls: Declarations,
        state: Tuple[int, ...],
        location_test: Optional[LocationTest] = None,
        bindings: Optional[Dict[str, int]] = None,
    ):
        self.decls = decls
        self.state = state
        self.location_test = location_test
        self.bindings = bindings or {}

    def with_binding(self, name: str, value: int) -> "Context":
        """A child context with one extra quantifier binding."""
        child = Context(self.decls, self.state, self.location_test, dict(self.bindings))
        child.bindings[name] = value
        return child


def evaluate(expr: Expr, ctx: Context) -> int:
    """Evaluate to an int (booleans are 0/1)."""
    if isinstance(expr, IntLiteral):
        return expr.value
    if isinstance(expr, BoolLiteral):
        return 1 if expr.value else 0
    if isinstance(expr, Name):
        return _resolve_name(expr.ident, ctx)
    if isinstance(expr, ArrayIndex):
        return _resolve_array(expr, ctx)
    if isinstance(expr, Field):
        return _resolve_field(expr, ctx)
    if isinstance(expr, Unary):
        value = evaluate(expr.operand, ctx)
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return 0 if value else 1
        raise EvalError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, Binary):
        return _eval_binary(expr, ctx)
    if isinstance(expr, Quantifier):
        return _eval_quantifier(expr, ctx)
    raise EvalError(f"cannot evaluate {expr!r}")


def evaluate_bool(expr: Expr, ctx: Context) -> bool:
    """Evaluate as a boolean (nonzero = true)."""
    return evaluate(expr, ctx) != 0


def _eval_binary(expr: Binary, ctx: Context) -> int:
    op = expr.op
    if op == "&&":
        return 1 if (evaluate(expr.lhs, ctx) and evaluate(expr.rhs, ctx)) else 0
    if op == "||":
        return 1 if (evaluate(expr.lhs, ctx) or evaluate(expr.rhs, ctx)) else 0
    if op == "imply":
        return 1 if (not evaluate(expr.lhs, ctx) or evaluate(expr.rhs, ctx)) else 0
    lhs = evaluate(expr.lhs, ctx)
    rhs = evaluate(expr.rhs, ctx)
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if rhs == 0:
            raise EvalError("division by zero")
        return int(lhs / rhs) if (lhs < 0) != (rhs < 0) else lhs // rhs
    if op == "%":
        if rhs == 0:
            raise EvalError("modulo by zero")
        return lhs - rhs * (int(lhs / rhs) if (lhs < 0) != (rhs < 0) else lhs // rhs)
    if op == "==":
        return 1 if lhs == rhs else 0
    if op == "!=":
        return 1 if lhs != rhs else 0
    if op == "<":
        return 1 if lhs < rhs else 0
    if op == "<=":
        return 1 if lhs <= rhs else 0
    if op == ">":
        return 1 if lhs > rhs else 0
    if op == ">=":
        return 1 if lhs >= rhs else 0
    raise EvalError(f"unknown operator {op!r}")


def _eval_quantifier(expr: Quantifier, ctx: Context) -> int:
    low = evaluate(expr.low, ctx)
    high = evaluate(expr.high, ctx)
    if expr.kind == "forall":
        for value in range(low, high + 1):
            if not evaluate_bool(expr.body, ctx.with_binding(expr.binder, value)):
                return 0
        return 1
    for value in range(low, high + 1):
        if evaluate_bool(expr.body, ctx.with_binding(expr.binder, value)):
            return 1
    return 0


def _resolve_name(ident: str, ctx: Context) -> int:
    if ident in ctx.bindings:
        return ctx.bindings[ident]
    decls = ctx.decls
    if ident in decls.constants:
        return decls.constants[ident]
    var = decls.int_vars.get(ident)
    if var is not None:
        return ctx.state[var.slot]
    # Named range bounds synthesized by the parser: "<Type>.__low__".
    if ident.endswith(".__low__") or ident.endswith(".__high__"):
        type_name, _, which = ident.rpartition(".")
        bounds = decls.range_types.get(type_name)
        if bounds is None:
            raise EvalError(f"unknown range type {type_name!r}")
        return bounds[0] if which == "__low__" else bounds[1]
    if decls.clock_index(ident) is not None:
        raise EvalError(f"clock {ident!r} used in an integer expression")
    if ident in decls.arrays:
        raise EvalError(f"array {ident!r} used without an index")
    raise EvalError(f"unknown identifier {ident!r}")


def _resolve_array(expr: ArrayIndex, ctx: Context) -> int:
    if not isinstance(expr.array, Name):
        raise EvalError(f"cannot index {expr.array}")
    arr = ctx.decls.arrays.get(expr.array.ident)
    if arr is None:
        raise EvalError(f"unknown array {expr.array.ident!r}")
    index = evaluate(expr.index, ctx)
    if not (0 <= index < arr.size):
        raise EvalError(f"{arr.name}[{index}] out of bounds (size {arr.size})")
    return ctx.state[arr.offset + index]


def _resolve_field(expr: Field, ctx: Context) -> int:
    if ctx.location_test is None:
        raise EvalError(f"location test {expr} not allowed here")
    if not isinstance(expr.base, Name):
        raise EvalError(f"malformed location test {expr}")
    return 1 if ctx.location_test(expr.base.ident, expr.field) else 0


# ----------------------------------------------------------------------
# Assignments
# ----------------------------------------------------------------------


def apply_assignments(
    assignments: Sequence[Assignment],
    ctx: Context,
) -> Tuple[int, ...]:
    """Apply integer assignments sequentially, returning the new state.

    Each assignment sees the effects of the previous ones (UPPAAL order).
    Range violations raise :class:`OverflowError`.
    """
    state = list(ctx.state)
    decls = ctx.decls
    for assign in assignments:
        local = Context(decls, tuple(state), ctx.location_test, dict(ctx.bindings))
        value = evaluate(assign.value, local)
        target = assign.target
        if isinstance(target, Name):
            var = decls.int_vars.get(target.ident)
            if var is None:
                raise EvalError(f"cannot assign to {target.ident!r}")
            state[var.slot] = var.clamp_check(value)
        elif isinstance(target, ArrayIndex):
            if not isinstance(target.array, Name):
                raise EvalError(f"cannot assign to {target}")
            arr = decls.arrays.get(target.array.ident)
            if arr is None:
                raise EvalError(f"unknown array {target.array.ident!r}")
            index = evaluate(target.index, local)
            state[arr.offset + index] = arr.clamp_check(value, index)
        else:
            raise EvalError(f"invalid assignment target {target}")
    return tuple(state)


# ----------------------------------------------------------------------
# Static bounds (for extrapolation constants)
# ----------------------------------------------------------------------


def static_int_bound(expr: Expr, decls: Declarations) -> int:
    """An upper bound on ``|value|`` of an integer expression, over all
    reachable variable values (using declared ranges).  Conservative."""
    if isinstance(expr, IntLiteral):
        return abs(expr.value)
    if isinstance(expr, BoolLiteral):
        return 1
    if isinstance(expr, Name):
        if expr.ident in decls.constants:
            return abs(decls.constants[expr.ident])
        var = decls.int_vars.get(expr.ident)
        if var is not None:
            return max(abs(var.low), abs(var.high))
        if expr.ident.endswith(".__low__") or expr.ident.endswith(".__high__"):
            type_name, _, _ = expr.ident.rpartition(".")
            low, high = decls.range_types[type_name]
            return max(abs(low), abs(high))
        raise EvalError(f"cannot bound identifier {expr.ident!r}")
    if isinstance(expr, ArrayIndex):
        if isinstance(expr.array, Name) and expr.array.ident in decls.arrays:
            arr = decls.arrays[expr.array.ident]
            return max(abs(arr.low), abs(arr.high))
        raise EvalError(f"cannot bound {expr}")
    if isinstance(expr, Unary):
        return static_int_bound(expr.operand, decls)
    if isinstance(expr, Binary):
        lhs = static_int_bound(expr.lhs, decls)
        rhs = static_int_bound(expr.rhs, decls)
        if expr.op in ("+", "-"):
            return lhs + rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op in ("/", "%"):
            return lhs
        return 1  # comparisons / logic yield 0 or 1
    if isinstance(expr, Quantifier):
        return 1
    raise EvalError(f"cannot bound {expr!r}")
