"""Recursive-descent parser for expressions and assignment lists.

Grammar (precedence, loosest first)::

    expr        := imply_expr
    imply_expr  := or_expr ('imply' or_expr)*          (right-assoc)
    or_expr     := and_expr (('||' | 'or') and_expr)*
    and_expr    := not_expr (('&&' | 'and') not_expr)*
    not_expr    := ('!' | 'not') not_expr | quantifier | comparison
    quantifier  := ('forall' | 'exists') '(' ident ':' range ')' not_expr
    range       := ident | 'int' '[' expr ',' expr ']'
    comparison  := additive (compop additive)?
    additive    := multiplicative (('+' | '-') multiplicative)*
    multiplicative := unary (('*' | '/' | '%') unary)*
    unary       := '-' unary | postfix
    postfix     := primary ('[' expr ']' | '.' ident)*
    primary     := int | 'true' | 'false' | ident | '(' expr ')'

    assignments := assignment (',' assignment)*
    assignment  := postfix (':=' | '=') expr

Quantifier ranges can name a declared scalar-set type (resolved by the
evaluator via the declaration table) or give explicit bounds with
``int[lo, hi]``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (
    ArrayIndex,
    Assignment,
    Binary,
    BoolLiteral,
    Expr,
    Field,
    IntLiteral,
    Name,
    Quantifier,
    Unary,
)
from .lexer import TokenStream


class ParseError(ValueError):
    """Raised on malformed expression syntax."""


#: Memoized parses.  AST nodes are frozen dataclasses, so sharing one
#: tree among all users of the same source text is safe; model builders
#: and the random-instance generator parse the same guard strings over
#: and over.  Bounded to keep adversarial workloads from hoarding memory.
_PARSE_CACHE: dict = {}
_ASSIGN_CACHE: dict = {}
_PARSE_CACHE_LIMIT = 16384


def parse_expression(text: str) -> Expr:
    """Parse a single boolean/integer expression (memoized per text)."""
    cached = _PARSE_CACHE.get(text)
    if cached is not None:
        return cached
    stream = TokenStream.of(text)
    expr = _parse_expr(stream)
    if not stream.at_end():
        raise ParseError(
            f"trailing input at position {stream.current.pos} in {text!r}"
        )
    if len(_PARSE_CACHE) >= _PARSE_CACHE_LIMIT:
        _PARSE_CACHE.clear()
    _PARSE_CACHE[text] = expr
    return expr


def parse_assignments(text: str) -> List[Assignment]:
    """Parse a comma-separated assignment list (empty string allowed)."""
    text = text.strip()
    if not text:
        return []
    cached = _ASSIGN_CACHE.get(text)
    if cached is not None:
        return list(cached)
    stream = TokenStream.of(text)
    assignments = [_parse_assignment(stream)]
    while stream.match("op", ","):
        assignments.append(_parse_assignment(stream))
    if not stream.at_end():
        raise ParseError(
            f"trailing input at position {stream.current.pos} in {text!r}"
        )
    if len(_ASSIGN_CACHE) >= _PARSE_CACHE_LIMIT:
        _ASSIGN_CACHE.clear()
    _ASSIGN_CACHE[text] = tuple(assignments)
    return assignments


def _parse_assignment(stream: TokenStream) -> Assignment:
    target = _parse_postfix(stream)
    if not isinstance(target, (Name, ArrayIndex)):
        raise ParseError(f"invalid assignment target {target}")
    if stream.match("op", ":=") is None and stream.match("op", "=") is None:
        raise ParseError(
            f"expected ':=' at position {stream.current.pos} in {stream.source!r}"
        )
    value = _parse_expr(stream)
    return Assignment(target, value)


def _parse_expr(stream: TokenStream) -> Expr:
    return _parse_imply(stream)


def _parse_imply(stream: TokenStream) -> Expr:
    lhs = _parse_or(stream)
    if stream.match("kw", "imply") or stream.match("op", "->"):
        rhs = _parse_imply(stream)  # right associative
        return Binary("imply", lhs, rhs)
    return lhs


def _parse_or(stream: TokenStream) -> Expr:
    expr = _parse_and(stream)
    while stream.match("op", "||") or stream.match("kw", "or"):
        rhs = _parse_and(stream)
        expr = Binary("||", expr, rhs)
    return expr


def _parse_and(stream: TokenStream) -> Expr:
    expr = _parse_not(stream)
    while stream.match("op", "&&") or stream.match("kw", "and"):
        rhs = _parse_not(stream)
        expr = Binary("&&", expr, rhs)
    return expr


def _parse_not(stream: TokenStream) -> Expr:
    if stream.match("op", "!") or stream.match("kw", "not"):
        return Unary("!", _parse_not(stream))
    quantified = _parse_quantifier(stream)
    if quantified is not None:
        return quantified
    return _parse_comparison(stream)


def _parse_quantifier(stream: TokenStream) -> Optional[Expr]:
    kind_token = stream.match("kw", "forall") or stream.match("kw", "exists")
    if kind_token is None:
        return None
    stream.expect("op", "(")
    binder = stream.expect("ident").text
    stream.expect("op", ":")
    low, high = _parse_range(stream)
    stream.expect("op", ")")
    body = _parse_not(stream)
    return Quantifier(kind_token.text, binder, low, high, body)


def _parse_range(stream: TokenStream) -> Tuple[Expr, Expr]:
    if stream.current.kind == "ident" and stream.current.text == "int":
        stream.advance()
        stream.expect("op", "[")
        low = _parse_expr(stream)
        stream.expect("op", ",")
        high = _parse_expr(stream)
        stream.expect("op", "]")
        return low, high
    # A named range type: the evaluator resolves its bounds.
    name = stream.expect("ident").text
    return Name(f"{name}.__low__"), Name(f"{name}.__high__")


def _parse_comparison(stream: TokenStream) -> Expr:
    lhs = _parse_additive(stream)
    for op in ("==", "!=", "<=", ">=", "<", ">"):
        if stream.match("op", op):
            rhs = _parse_additive(stream)
            return Binary(op, lhs, rhs)
    return lhs


def _parse_additive(stream: TokenStream) -> Expr:
    expr = _parse_multiplicative(stream)
    while True:
        if stream.match("op", "+"):
            expr = Binary("+", expr, _parse_multiplicative(stream))
        elif stream.match("op", "-"):
            expr = Binary("-", expr, _parse_multiplicative(stream))
        else:
            return expr


def _parse_multiplicative(stream: TokenStream) -> Expr:
    expr = _parse_unary(stream)
    while True:
        matched = None
        for op in ("*", "/", "%"):
            if stream.match("op", op):
                matched = op
                break
        if matched is None:
            return expr
        expr = Binary(matched, expr, _parse_unary(stream))


def _parse_unary(stream: TokenStream) -> Expr:
    if stream.match("op", "-"):
        return Unary("-", _parse_unary(stream))
    return _parse_postfix(stream)


def _parse_postfix(stream: TokenStream) -> Expr:
    expr = _parse_primary(stream)
    while True:
        if stream.match("op", "["):
            index = _parse_expr(stream)
            stream.expect("op", "]")
            expr = ArrayIndex(expr, index)
        elif stream.match("op", "."):
            field = stream.expect("ident").text
            expr = Field(expr, field)
        else:
            return expr


def _parse_primary(stream: TokenStream) -> Expr:
    token = stream.current
    if token.kind == "int":
        stream.advance()
        return IntLiteral(int(token.text))
    if token.kind == "kw" and token.text in ("true", "false"):
        stream.advance()
        return BoolLiteral(token.text == "true")
    if token.kind == "ident":
        stream.advance()
        return Name(token.text)
    if stream.match("op", "("):
        expr = _parse_expr(stream)
        stream.expect("op", ")")
        return expr
    raise ParseError(
        f"unexpected token {token.text!r} at position {token.pos}"
        f" in {stream.source!r}"
    )
