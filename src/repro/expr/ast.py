"""AST node types for the expression language.

Nodes are small frozen dataclasses.  The same AST is used for edge guards,
location invariants, edge assignments, and test-purpose predicates; which
constructs are legal where is enforced by the consumers (e.g. invariants
reject disjunction, assignments reject clocks on the right-hand side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

Expr = Union[
    "IntLiteral",
    "BoolLiteral",
    "Name",
    "ArrayIndex",
    "Field",
    "Unary",
    "Binary",
    "Quantifier",
]


@dataclass(frozen=True)
class IntLiteral:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BoolLiteral:
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class Name:
    """A reference to a variable, constant, clock, or quantifier binding."""

    ident: str

    def __str__(self) -> str:
        return self.ident


@dataclass(frozen=True)
class ArrayIndex:
    array: Expr
    index: Expr

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


@dataclass(frozen=True)
class Field:
    """Dotted access, used for location tests like ``IUT.Bright``."""

    base: Expr
    field: str

    def __str__(self) -> str:
        return f"{self.base}.{self.field}"


@dataclass(frozen=True)
class Unary:
    op: str  # '-', '!'
    operand: Expr

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class Binary:
    op: str  # '+','-','*','/','%','==','!=','<','<=','>','>=','&&','||','imply'
    lhs: Expr
    rhs: Expr

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class Quantifier:
    kind: str  # 'forall' | 'exists'
    binder: str
    low: Expr
    high: Expr
    body: Expr

    def __str__(self) -> str:
        return f"{self.kind} ({self.binder} : [{self.low}, {self.high}]) {self.body}"


@dataclass(frozen=True)
class Assignment:
    """One assignment ``target := value`` (``=`` and ``:=`` are synonyms)."""

    target: Expr  # Name or ArrayIndex
    value: Expr

    def __str__(self) -> str:
        return f"{self.target} := {self.value}"


COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")
LOGICAL = ("&&", "||", "imply")
ARITHMETIC = ("+", "-", "*", "/", "%")


def walk(expr: Expr):
    """Yield every node of the expression tree (pre-order)."""
    yield expr
    if isinstance(expr, (IntLiteral, BoolLiteral, Name)):
        return
    if isinstance(expr, ArrayIndex):
        yield from walk(expr.array)
        yield from walk(expr.index)
    elif isinstance(expr, Field):
        yield from walk(expr.base)
    elif isinstance(expr, Unary):
        yield from walk(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk(expr.lhs)
        yield from walk(expr.rhs)
    elif isinstance(expr, Quantifier):
        yield from walk(expr.low)
        yield from walk(expr.high)
        yield from walk(expr.body)


def names_in(expr: Expr) -> List[str]:
    """All plain identifiers referenced by the expression."""
    return [node.ident for node in walk(expr) if isinstance(node, Name)]


def conjuncts(expr: Expr) -> List[Expr]:
    """Flatten a conjunction ``a && b && c`` into ``[a, b, c]``."""
    if isinstance(expr, Binary) and expr.op == "&&":
        return conjuncts(expr.lhs) + conjuncts(expr.rhs)
    return [expr]


def make_conjunction(parts: List[Expr]) -> Expr:
    """Rebuild a conjunction from parts (``true`` for the empty list)."""
    if not parts:
        return BoolLiteral(True)
    result = parts[0]
    for part in parts[1:]:
        result = Binary("&&", result, part)
    return result
