"""Declarations and discrete-variable state.

A :class:`Declarations` table holds everything name resolution needs:
integer constants, bounded integer variables, bounded integer arrays,
clocks, and named index ranges (scalar-set types like ``BufferId``).

Variable values live in a flat immutable tuple (:class:`DiscreteState`
is just that tuple plus helper methods via the layout), which makes
discrete states hashable keys for passed-list lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


class DeclarationError(ValueError):
    """Raised on duplicate or inconsistent declarations."""


@dataclass(frozen=True)
class IntVar:
    name: str
    low: int
    high: int
    init: int
    slot: int

    def clamp_check(self, value: int) -> int:
        """Return ``value`` or raise OverflowError if out of range."""
        if not (self.low <= value <= self.high):
            raise OverflowError(
                f"assignment out of range: {self.name} := {value}"
                f" (declared int[{self.low},{self.high}])"
            )
        return value


@dataclass(frozen=True)
class IntArray:
    name: str
    size: int
    low: int
    high: int
    init: Tuple[int, ...]
    offset: int

    def clamp_check(self, value: int, index: int) -> int:
        """Bounds-check the index and range-check the value."""
        if not (0 <= index < self.size):
            raise IndexError(f"{self.name}[{index}] out of bounds (size {self.size})")
        if not (self.low <= value <= self.high):
            raise OverflowError(
                f"assignment out of range: {self.name}[{index}] := {value}"
                f" (declared int[{self.low},{self.high}])"
            )
        return value


class Declarations:
    """A mutable declaration table, frozen implicitly once states are built."""

    def __init__(self) -> None:
        self.constants: Dict[str, int] = {}
        self.int_vars: Dict[str, IntVar] = {}
        self.arrays: Dict[str, IntArray] = {}
        self.clocks: List[str] = []
        self.range_types: Dict[str, Tuple[int, int]] = {}
        self._slots = 0

    # ------------------------------------------------------------------
    # Declaring
    # ------------------------------------------------------------------

    def _check_fresh(self, name: str) -> None:
        if (
            name in self.constants
            or name in self.int_vars
            or name in self.arrays
            or name in self.clocks
            or name in self.range_types
        ):
            raise DeclarationError(f"duplicate declaration of {name!r}")

    def add_constant(self, name: str, value: int) -> None:
        """Declare an integer constant."""
        self._check_fresh(name)
        self.constants[name] = int(value)

    def add_int(self, name: str, low: int = -(1 << 15), high: int = 1 << 15,
                init: int = 0) -> None:
        """Declare a bounded integer variable."""
        self._check_fresh(name)
        if not (low <= init <= high):
            raise DeclarationError(f"initial value of {name} outside range")
        self.int_vars[name] = IntVar(name, low, high, init, self._slots)
        self._slots += 1

    def add_array(self, name: str, size: int, low: int = -(1 << 15),
                  high: int = 1 << 15, init: Optional[Sequence[int]] = None) -> None:
        """Declare a fixed-size array of bounded integers."""
        self._check_fresh(name)
        if size <= 0:
            raise DeclarationError(f"array {name} must have positive size")
        values = tuple(init) if init is not None else tuple([0] * size)
        if len(values) != size:
            raise DeclarationError(f"array {name} initializer length mismatch")
        for v in values:
            if not (low <= v <= high):
                raise DeclarationError(f"initial value of {name} outside range")
        self.arrays[name] = IntArray(name, size, low, high, values, self._slots)
        self._slots += size

    def add_clock(self, name: str) -> int:
        """Declare a clock; returns its 1-based DBM index."""
        self._check_fresh(name)
        self.clocks.append(name)
        return len(self.clocks)

    def add_range_type(self, name: str, low: int, high: int) -> None:
        """Declare a named index range, e.g. ``BufferId = [0, n-1]``."""
        self._check_fresh(name)
        if low > high:
            raise DeclarationError(f"range type {name} is empty")
        self.range_types[name] = (low, high)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def clock_index(self, name: str) -> Optional[int]:
        """1-based DBM index of a clock, or None if not a clock."""
        try:
            return self.clocks.index(name) + 1
        except ValueError:
            return None

    @property
    def clock_count(self) -> int:
        return len(self.clocks)

    @property
    def dbm_dim(self) -> int:
        return len(self.clocks) + 1

    @property
    def slot_count(self) -> int:
        return self._slots

    def initial_state(self) -> Tuple[int, ...]:
        """The initial variable valuation as a flat tuple."""
        values = [0] * self._slots
        for var in self.int_vars.values():
            values[var.slot] = var.init
        for arr in self.arrays.values():
            values[arr.offset : arr.offset + arr.size] = arr.init
        return tuple(values)

    def state_to_dict(self, state: Tuple[int, ...]) -> Dict[str, object]:
        """Pretty mapping of a discrete state for debugging / printing."""
        out: Dict[str, object] = {}
        for var in self.int_vars.values():
            out[var.name] = state[var.slot]
        for arr in self.arrays.values():
            out[arr.name] = list(state[arr.offset : arr.offset + arr.size])
        return out
