"""Expression language: lexing, parsing, evaluation, and guard splitting."""

from .ast import (
    ArrayIndex,
    Assignment,
    Binary,
    BoolLiteral,
    Expr,
    Field,
    IntLiteral,
    Name,
    Quantifier,
    Unary,
    conjuncts,
    make_conjunction,
    names_in,
    walk,
)
from .clocksplit import (
    TRUE_GUARD,
    ClockAtom,
    GuardError,
    SplitGuard,
    split_guard,
    update_max_constants,
)
from .env import DeclarationError, Declarations, IntArray, IntVar
from .eval import (
    Context,
    EvalError,
    apply_assignments,
    evaluate,
    evaluate_bool,
    static_int_bound,
)
from .lexer import LexError, Token, TokenStream, tokenize
from .parser import ParseError, parse_assignments, parse_expression
