"""Tokenizer for the guard / assignment / query expression language.

The language is a small UPPAAL-flavoured expression syntax: integer
arithmetic, boolean connectives (``&&``, ``||``, ``!``, ``and``, ``or``,
``not``, ``imply``), comparisons, array indexing, dotted location tests
(``Proc.Loc``), bounded quantifiers (``forall (i : Range) ...``) and
assignments (``x := 0, n = n + 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


class LexError(ValueError):
    """Raised on an unrecognized character in an expression."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'int', 'ident', 'op', 'kw', 'eof'
    text: str
    pos: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}@{self.pos})"


KEYWORDS = {
    "and",
    "or",
    "not",
    "imply",
    "forall",
    "exists",
    "true",
    "false",
}

# Multi-character operators first so maximal munch works.
OPERATORS = [
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    ":=",
    "->",
    "!",
    "<",
    ">",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "(",
    ")",
    "[",
    "]",
    ".",
    ",",
    ":",
    "?",
]


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; always ends with an ``eof`` token."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isdigit():
            start = i
            while i < n and text[i].isdigit():
                i += 1
            tokens.append(Token("int", text[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            kind = "kw" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, start))
            continue
        matched: Optional[str] = None
        for op in OPERATORS:
            if text.startswith(op, i):
                matched = op
                break
        if matched is None:
            raise LexError(f"unexpected character {ch!r} at position {i} in {text!r}")
        tokens.append(Token("op", matched, i))
        i += len(matched)
    tokens.append(Token("eof", "", n))
    return tokens


class TokenStream:
    """A cursor over a token list with one-token lookahead helpers."""

    def __init__(self, tokens: List[Token], source: str = ""):
        self._tokens = tokens
        self._index = 0
        self.source = source

    @classmethod
    def of(cls, text: str) -> "TokenStream":
        return cls(tokenize(text), text)

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def peek(self, offset: int = 0) -> Token:
        """Look ahead without consuming (clamped at EOF)."""
        idx = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def advance(self) -> Token:
        """Consume and return the current token."""
        token = self.current
        if token.kind != "eof":
            self._index += 1
        return token

    def match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        """Consume the current token iff it matches; else return None."""
        token = self.current
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        """Consume a required token or raise :class:`LexError`."""
        token = self.match(kind, text)
        if token is None:
            want = text or kind
            raise LexError(
                f"expected {want!r} at position {self.current.pos}"
                f" in {self.source!r}, found {self.current.text!r}"
            )
        return token

    def at_end(self) -> bool:
        """True once only EOF remains."""
        return self.current.kind == "eof"
