"""Splitting guards into integer atoms and clock atoms.

Edge guards and location invariants are conjunctions of atoms.  Each atom
either involves no clocks (an *integer atom*, evaluated by
:mod:`repro.expr.eval`) or is a *clock atom* of one of the shapes::

    x ~ E      E ~ x      x - y ~ E      E ~ x - y

with ``~ ∈ {<, <=, ==, >=, >}``, ``x``/``y`` clocks, and ``E`` an integer
expression (clock-free; evaluated per discrete state).  Anything else —
disjunctions over clocks, ``!=`` on clocks, arithmetic mixing clocks and
variables — is rejected, mirroring UPPAAL's guard syntax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .ast import Binary, Expr, Name, Unary, conjuncts, names_in
from .env import Declarations
from .eval import Context, evaluate, static_int_bound


class GuardError(ValueError):
    """Raised when clocks are used in an unsupported guard shape."""


@dataclass(frozen=True)
class ClockAtom:
    """A single clock constraint ``x_i - x_j ~ rhs`` (j may be 0)."""

    i: int
    j: int
    op: str  # '<', '<=', '==', '>=', '>'
    rhs: Expr

    def constraints(self, ctx: Context) -> List[Tuple[int, int, int]]:
        """Encoded DBM constraints for this atom in a discrete context."""
        from ..dbm.bounds import MAX_BOUND_CONST

        k = evaluate(self.rhs, ctx)
        if not -MAX_BOUND_CONST <= k <= MAX_BOUND_CONST:
            raise GuardError(
                f"clock bound constant {k} exceeds the supported range"
                f" ±{MAX_BOUND_CONST}"
            )
        i, j = self.i, self.j
        if self.op == "<":
            return [(i, j, k << 1)]
        if self.op == "<=":
            return [(i, j, (k << 1) | 1)]
        if self.op == ">":
            return [(j, i, (-k) << 1)]
        if self.op == ">=":
            return [(j, i, ((-k) << 1) | 1)]
        if self.op == "==":
            return [(i, j, (k << 1) | 1), (j, i, ((-k) << 1) | 1)]
        raise GuardError(f"unsupported clock comparison {self.op!r}")

    def negated(self) -> "ClockAtom":
        """The complement atom (``==`` has no single complement atom)."""
        flip = {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}
        if self.op not in flip:
            raise GuardError(f"cannot negate clock atom with {self.op!r}")
        return ClockAtom(self.i, self.j, flip[self.op], self.rhs)

    @property
    def is_upper_bound(self) -> bool:
        """True for atoms of the form ``x < E`` / ``x <= E`` (j == 0)."""
        return self.j == 0 and self.op in ("<", "<=")

    @property
    def is_diagonal(self) -> bool:
        return self.i != 0 and self.j != 0


@dataclass(frozen=True)
class SplitGuard:
    """A guard split into its integer part and its clock part."""

    int_atoms: Tuple[Expr, ...]
    clock_atoms: Tuple[ClockAtom, ...]

    def int_holds(self, ctx: Context) -> bool:
        """Whether every integer atom holds in the discrete context."""
        from .eval import evaluate_bool

        return all(evaluate_bool(atom, ctx) for atom in self.int_atoms)

    def clock_constraints(self, ctx: Context) -> List[Tuple[int, int, int]]:
        """Encoded DBM constraints of all clock atoms in the context."""
        out: List[Tuple[int, int, int]] = []
        for atom in self.clock_atoms:
            out.extend(atom.constraints(ctx))
        return out


TRUE_GUARD = SplitGuard((), ())


def _clock_operand(expr: Expr, decls: Declarations) -> Optional[Tuple[int, int]]:
    """If ``expr`` is a clock or clock difference, return DBM indices (i, j)."""
    if isinstance(expr, Name):
        idx = decls.clock_index(expr.ident)
        if idx is not None:
            return idx, 0
        return None
    if isinstance(expr, Binary) and expr.op == "-":
        if isinstance(expr.lhs, Name) and isinstance(expr.rhs, Name):
            i = decls.clock_index(expr.lhs.ident)
            j = decls.clock_index(expr.rhs.ident)
            if i is not None and j is not None:
                return i, j
            if (i is None) != (j is None):
                raise GuardError(
                    f"mixed clock/integer difference {expr} not supported"
                )
    return None


def _mentions_clock(expr: Expr, decls: Declarations) -> bool:
    return any(decls.clock_index(name) is not None for name in names_in(expr))


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}


def split_guard(expr: Optional[Expr], decls: Declarations) -> SplitGuard:
    """Split a guard conjunction; raises :class:`GuardError` on bad shapes."""
    if expr is None:
        return TRUE_GUARD
    int_atoms: List[Expr] = []
    clock_atoms: List[ClockAtom] = []
    for atom in conjuncts(expr):
        if not _mentions_clock(atom, decls):
            int_atoms.append(atom)
            continue
        clock_atoms.append(_parse_clock_atom(atom, decls))
    return SplitGuard(tuple(int_atoms), tuple(clock_atoms))


def _parse_clock_atom(atom: Expr, decls: Declarations) -> ClockAtom:
    if isinstance(atom, Unary) and atom.op == "!":
        inner = _parse_clock_atom(atom.operand, decls)
        return inner.negated()
    if not isinstance(atom, Binary) or atom.op not in ("<", "<=", "==", ">=", ">"):
        raise GuardError(
            f"clocks may only appear in comparison atoms, got {atom}"
        )
    lhs_clocks = _clock_operand(atom.lhs, decls)
    rhs_clocks = _clock_operand(atom.rhs, decls)
    if lhs_clocks is not None and not _mentions_clock(atom.rhs, decls):
        return ClockAtom(lhs_clocks[0], lhs_clocks[1], atom.op, atom.rhs)
    if rhs_clocks is not None and not _mentions_clock(atom.lhs, decls):
        return ClockAtom(rhs_clocks[0], rhs_clocks[1], _FLIP[atom.op], atom.lhs)
    raise GuardError(f"unsupported clock atom {atom}")


def update_max_constants(
    atoms: Sequence[ClockAtom], decls: Declarations, max_consts: List[int]
) -> None:
    """Raise per-clock maximum constants to cover the given atoms.

    ``max_consts`` has one entry per DBM index (index 0 unused).
    """
    for atom in atoms:
        bound = static_int_bound(atom.rhs, decls)
        for idx in (atom.i, atom.j):
            if idx != 0:
                max_consts[idx] = max(max_consts[idx], bound)
