"""The worker pool: an order-preserving, counter-merging parallel map.

Determinism contract
====================

``starmap(fn, tasks, jobs)`` returns ``[fn(*t) for t in tasks]`` — the
same values in the same order for every ``jobs`` value — provided ``fn``
derives all its randomness from its arguments (the repo-wide seed
discipline).  Scheduling only decides *where* a task runs, never what it
computes, and the parent reorders results by task index before returning.
Anything order-sensitive (shrinking, report formatting, rng reuse) stays
in the caller, serial.

Worker-side :mod:`repro.util.counters` state is captured per chunk and
merged into the parent's counters; the merge is commutative, so the
aggregate — unlike the scheduling — is reproducible too (per-counter
*values* may differ across ``jobs`` settings because per-process memo
caches are split differently; callers treat counters as profiling, not
as part of the deterministic payload).

Fork/spawn safety
=================

The pool uses the platform's default start method (fork on Linux, spawn
on macOS/Windows).  The only callables that cross the process boundary
are module-level functions of importable modules — :func:`_run_chunk`
here and the caller-supplied ``fn`` — so both start methods work, and
``python -m repro.gen.cli`` style entry points are safe because nothing
is pickled out of ``__main__``.
"""

from __future__ import annotations

import os
from multiprocessing import get_context
from typing import Callable, List, Optional, Sequence, Tuple

from ..util import counters


def auto_jobs() -> int:
    """Worker count for ``--jobs auto``: the usable CPUs of this process."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def parse_jobs(value: str) -> int:
    """Parse a ``--jobs`` argument: a positive integer or ``auto``."""
    text = str(value).strip().lower()
    if text == "auto":
        return auto_jobs()
    try:
        jobs = int(text)
    except ValueError:
        raise ValueError(f"invalid jobs value {value!r} (expected N or 'auto')")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_jobs(jobs: int, task_count: int) -> int:
    """Clamp a worker count to the work available."""
    return max(1, min(jobs, task_count))


def _run_task(payload) -> Tuple[int, object, dict]:
    """Worker entry point for :func:`steal_map`: one indexed task.

    Like :func:`_run_chunk` but at single-task granularity — the unit
    idle workers pull from the shared queue — so the counter export is
    exactly that task's op profile (the corpus uses it as a per-instance
    coverage signal).
    """
    fn, index, args = payload
    counters.reset()
    result = fn(*args)
    return index, result, counters.export()


def _run_chunk(payload) -> Tuple[List[Tuple[int, object]], dict]:
    """Worker entry point: run one chunk of indexed tasks.

    Resets this worker's counters first so the export is exactly the
    chunk's own op profile (chunks never share a worker's counter state;
    the parent merges every chunk, so nothing is lost or double-counted).
    """
    fn, indexed = payload
    counters.reset()
    results = [(index, fn(*args)) for index, args in indexed]
    return results, counters.export()


def _chunk_payloads(fn, tasks: Sequence[tuple], jobs: int, chunk_size: int):
    """Contiguous chunks of (index, task) pairs, small enough to balance."""
    payloads = []
    for start in range(0, len(tasks), chunk_size):
        indexed = [
            (index, tasks[index])
            for index in range(start, min(start + chunk_size, len(tasks)))
        ]
        payloads.append((fn, indexed))
    return payloads


def starmap(
    fn: Callable,
    tasks: Sequence[tuple],
    jobs: int = 1,
    *,
    chunk_size: Optional[int] = None,
    on_result: Optional[Callable[[object], None]] = None,
) -> List[object]:
    """``[fn(*t) for t in tasks]``, sharded over ``jobs`` processes.

    ``fn`` must be a module-level callable and every task tuple must be
    picklable.  Results always come back in task order; ``on_result``
    fires once per task *as results arrive* (completion order — use it
    for progress, not for anything the deterministic output depends on).

    With ``jobs <= 1`` (or a single task) everything runs in-process:
    no pool, no pickling, counters accrue directly — the serial
    reference the parallel path is differentially tested against.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs, len(tasks))
    if jobs <= 1:
        out = []
        for args in tasks:
            result = fn(*args)
            out.append(result)
            if on_result is not None:
                on_result(result)
        return out
    if chunk_size is None:
        # Small chunks for load balance, but at least a few tasks per
        # dispatch so per-chunk pickling overhead stays amortized.
        chunk_size = max(1, min(8, -(-len(tasks) // (jobs * 4))))
    payloads = _chunk_payloads(fn, tasks, jobs, chunk_size)
    results: List[object] = [None] * len(tasks)
    ctx = get_context()
    pool = ctx.Pool(processes=jobs)
    try:
        for chunk_results, exported in pool.imap_unordered(_run_chunk, payloads):
            counters.merge(exported)
            for index, result in chunk_results:
                results[index] = result
                if on_result is not None:
                    on_result(result)
        pool.close()
        pool.join()
    finally:
        pool.terminate()
    return results


def steal_map(
    fn: Callable,
    tasks: Sequence[tuple],
    jobs: int = 1,
    *,
    on_result: Optional[Callable[[int, object], None]] = None,
) -> List[object]:
    """Work-stealing ``starmap``: single-task dispatch from a shared queue.

    Same determinism contract as :func:`starmap` — ``[fn(*t) for t in
    tasks]`` in task order for every ``jobs`` value — but tasks are
    handed to workers **one at a time** (``imap_unordered`` with
    chunksize 1 over a shared queue): an idle worker immediately steals
    the next pending task, so one solver-heavy task never straggles a
    pre-assigned chunk of cheap neighbours.  Preferred over the chunked
    dispatch whenever per-task cost is wildly uneven (differential fuzz
    instances, mutant sweeps); the per-task dispatch/pickling overhead
    only matters when tasks are tiny *and* uniform.

    ``on_result`` — unlike :func:`starmap`'s — receives ``(index,
    result)`` as results arrive in completion order, which is what an
    incremental campaign checkpoint needs (results must be journaled
    under their task index to be resumable in any completion order).
    Per-task worker counters merge into the parent exactly like the
    chunked path's.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs, len(tasks))
    if jobs <= 1:
        out = []
        for index, args in enumerate(tasks):
            result = fn(*args)
            out.append(result)
            if on_result is not None:
                on_result(index, result)
        return out
    payloads = [(fn, index, args) for index, args in enumerate(tasks)]
    results: List[object] = [None] * len(tasks)
    ctx = get_context()
    pool = ctx.Pool(processes=jobs)
    try:
        for index, result, exported in pool.imap_unordered(
            _run_task, payloads, chunksize=1
        ):
            counters.merge(exported)
            results[index] = result
            if on_result is not None:
                on_result(index, result)
        pool.close()
        pool.join()
    finally:
        pool.terminate()
    return results
