"""The worker pool: an order-preserving, counter-merging parallel map.

Determinism contract
====================

``starmap(fn, tasks, jobs)`` returns ``[fn(*t) for t in tasks]`` — the
same values in the same order for every ``jobs`` value — provided ``fn``
derives all its randomness from its arguments (the repo-wide seed
discipline).  Scheduling only decides *where* a task runs, never what it
computes, and the parent reorders results by task index before returning.
Anything order-sensitive (shrinking, report formatting, rng reuse) stays
in the caller, serial.

Worker-side :mod:`repro.util.counters` state is captured per chunk and
merged into the parent's counters; the merge is commutative, so the
aggregate — unlike the scheduling — is reproducible too (per-counter
*values* may differ across ``jobs`` settings because per-process memo
caches are split differently; callers treat counters as profiling, not
as part of the deterministic payload).

Fork/spawn safety
=================

The pool uses the platform's default start method (fork on Linux, spawn
on macOS/Windows).  The only callables that cross the process boundary
are module-level functions of importable modules — :func:`_run_chunk`
here and the caller-supplied ``fn`` — so both start methods work, and
``python -m repro.gen.cli`` style entry points are safe because nothing
is pickled out of ``__main__``.

Fault tolerance (:func:`steal_map` only)
========================================

The work-stealing pool owns its worker processes, so it can survive
what ``multiprocessing.Pool`` cannot: a worker that dies mid-task
(requeued to a replacement worker, up to ``retries`` extra attempts), a
task that hangs (``task_timeout`` kills the straggling worker and
requeues), and a task that fails every attempt (handed to the
``quarantine`` callback instead of sinking the campaign).  Because
results are journaled under their task index, a retried task that
eventually succeeds leaves the returned list — and any report built
from it — byte-identical to an undisturbed run.  ``KeyboardInterrupt``
terminates the pool promptly and re-raises after the results already
delivered through ``on_result`` (the exit-130 contract of the fuzz
CLI).  The ``par.worker.crash`` / ``par.worker.hang`` /
``par.worker.error`` sites of :mod:`repro.faults` fire inside the
worker loop, so the whole recovery path is deterministic to chaos-test.
"""

from __future__ import annotations

import os
import pickle
import time
from multiprocessing import get_context
from typing import Callable, List, Optional, Sequence, Tuple

from .. import faults
from ..util import counters


class TaskCrash(RuntimeError):
    """A worker process died (or timed out) while holding a task."""


class PoolDeathError(RuntimeError):
    """The pool could not keep any workers alive."""


def auto_jobs() -> int:
    """Worker count for ``--jobs auto``: the usable CPUs of this process."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def parse_jobs(value: str) -> int:
    """Parse a ``--jobs`` argument: a positive integer or ``auto``."""
    text = str(value).strip().lower()
    if text == "auto":
        return auto_jobs()
    try:
        jobs = int(text)
    except ValueError:
        raise ValueError(f"invalid jobs value {value!r} (expected N or 'auto')")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_jobs(jobs: int, task_count: int) -> int:
    """Clamp a worker count to the work available."""
    return max(1, min(jobs, task_count))


def _run_task(payload) -> Tuple[int, object, dict]:
    """Worker entry point for :func:`steal_map`: one indexed task.

    Like :func:`_run_chunk` but at single-task granularity — the unit
    idle workers pull from the shared queue — so the counter export is
    exactly that task's op profile (the corpus uses it as a per-instance
    coverage signal).
    """
    fn, index, args = payload
    counters.reset()
    result = fn(*args)
    return index, result, counters.export()


def _run_chunk(payload) -> Tuple[List[Tuple[int, object]], dict]:
    """Worker entry point: run one chunk of indexed tasks.

    Resets this worker's counters first so the export is exactly the
    chunk's own op profile (chunks never share a worker's counter state;
    the parent merges every chunk, so nothing is lost or double-counted).
    """
    fn, indexed = payload
    counters.reset()
    results = [(index, fn(*args)) for index, args in indexed]
    return results, counters.export()


def _chunk_payloads(fn, tasks: Sequence[tuple], jobs: int, chunk_size: int):
    """Contiguous chunks of (index, task) pairs, small enough to balance."""
    payloads = []
    for start in range(0, len(tasks), chunk_size):
        indexed = [
            (index, tasks[index])
            for index in range(start, min(start + chunk_size, len(tasks)))
        ]
        payloads.append((fn, indexed))
    return payloads


def starmap(
    fn: Callable,
    tasks: Sequence[tuple],
    jobs: int = 1,
    *,
    chunk_size: Optional[int] = None,
    on_result: Optional[Callable[[object], None]] = None,
) -> List[object]:
    """``[fn(*t) for t in tasks]``, sharded over ``jobs`` processes.

    ``fn`` must be a module-level callable and every task tuple must be
    picklable.  Results always come back in task order; ``on_result``
    fires once per task *as results arrive* (completion order — use it
    for progress, not for anything the deterministic output depends on).

    With ``jobs <= 1`` (or a single task) everything runs in-process:
    no pool, no pickling, counters accrue directly — the serial
    reference the parallel path is differentially tested against.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs, len(tasks))
    if jobs <= 1:
        out = []
        for args in tasks:
            result = fn(*args)
            out.append(result)
            if on_result is not None:
                on_result(result)
        return out
    if chunk_size is None:
        # Small chunks for load balance, but at least a few tasks per
        # dispatch so per-chunk pickling overhead stays amortized.
        chunk_size = max(1, min(8, -(-len(tasks) // (jobs * 4))))
    payloads = _chunk_payloads(fn, tasks, jobs, chunk_size)
    results: List[object] = [None] * len(tasks)
    ctx = get_context()
    pool = ctx.Pool(processes=jobs)
    try:
        for chunk_results, exported in pool.imap_unordered(_run_chunk, payloads):
            counters.merge(exported)
            for index, result in chunk_results:
                results[index] = result
                if on_result is not None:
                    on_result(result)
        pool.close()
        pool.join()
    finally:
        pool.terminate()
    return results


def _steal_worker(fn, task_q, result_q):
    """Long-lived worker loop: claim a task, run it, post the result.

    The claim message is posted *before* the task runs, so the parent
    always knows which task a dead worker was holding and can requeue
    it.  The :mod:`repro.faults` worker sites fire between claim and
    execution: ``par.worker.crash`` hard-kills the process (exercising
    death recovery), ``par.worker.hang`` sleeps past any
    ``task_timeout``, and ``par.worker.error`` raises in-band.
    Requeued attempts probe with ``retry=True``, so scheduled triggers
    never chase a task past its first attempt — bounded retries absorb
    them by construction — while ``*`` (a poison task) fires on every
    attempt and drives the quarantine path.  Both
    queues are ``SimpleQueue``s — puts are synchronous under a lock, no
    feeder thread — so an injected ``os._exit`` between puts can never
    leave a half-written message in the pipe.
    """
    while True:
        item = task_q.get()
        if item is None:
            return
        index, attempt, args = item
        pid = os.getpid()
        result_q.put(("claim", pid, index, attempt, None))
        try:
            retry = attempt > 1  # attempts are 1-based; 2+ are requeues
            if faults.should_fire("par.worker.crash", retry=retry):
                os._exit(70)
            if faults.should_fire("par.worker.hang", retry=retry):
                time.sleep(faults.hang_seconds())
            faults.fire("par.worker.error", retry=retry)
            counters.reset()
            result = fn(*args)
            message = ("ok", pid, index, attempt, (result, counters.export()))
            try:
                pickle.dumps(message)
            except Exception as exc:
                message = (
                    "err", pid, index, attempt,
                    RuntimeError(f"unpicklable task result: {exc}"),
                )
        except KeyboardInterrupt:
            return
        except BaseException as exc:
            try:
                pickle.dumps(exc)
                payload = exc
            except Exception:
                payload = RuntimeError(f"{type(exc).__name__}: {exc}")
            message = ("err", pid, index, attempt, payload)
        result_q.put(message)


def _poll(queue, timeout: float) -> bool:
    """True when ``queue`` has a message within ``timeout`` seconds."""
    reader = getattr(queue, "_reader", None)
    if reader is None:  # pragma: no cover - exotic platform fallback
        return True
    return reader.poll(timeout)


def steal_map(
    fn: Callable,
    tasks: Sequence[tuple],
    jobs: int = 1,
    *,
    on_result: Optional[Callable[[int, object], None]] = None,
    retries: int = 0,
    task_timeout: Optional[float] = None,
    quarantine: Optional[Callable[[int, BaseException], None]] = None,
) -> List[object]:
    """Work-stealing ``starmap``: single-task dispatch from a shared queue.

    Same determinism contract as :func:`starmap` — ``[fn(*t) for t in
    tasks]`` in task order for every ``jobs`` value — but tasks are
    handed to workers **one at a time** from a shared queue: an idle
    worker immediately steals the next pending task, so one solver-heavy
    task never straggles a pre-assigned chunk of cheap neighbours.
    Dispatch is windowed (at most ``2 * jobs`` undelivered tasks in the
    pipe, topped up as claims arrive) so a large campaign of fast tasks
    can never fill both pipe buffers and deadlock parent against
    workers.
    Preferred over the chunked dispatch whenever per-task cost is wildly
    uneven (differential fuzz instances, mutant sweeps); the per-task
    dispatch/pickling overhead only matters when tasks are tiny *and*
    uniform.

    ``on_result`` — unlike :func:`starmap`'s — receives ``(index,
    result)`` as results arrive in completion order, which is what an
    incremental campaign checkpoint needs (results must be journaled
    under their task index to be resumable in any completion order).
    Per-task worker counters merge into the parent exactly like the
    chunked path's.

    Fault tolerance (pooled path only; the serial path is the plain
    reference loop):

    * a worker that **dies** mid-task is detected by a liveness sweep,
      replaced, and its task requeued — up to ``retries`` extra
      attempts per task;
    * a task that exceeds ``task_timeout`` seconds has its worker
      killed and is requeued under the same retry budget;
    * a task whose attempts are exhausted goes to ``quarantine(index,
      error)`` if given (its slot in the returned list stays ``None``);
      otherwise the error — :class:`TaskCrash` for deaths/timeouts, the
      original exception for in-band failures — is raised.  The default
      (``retries=0``, no quarantine) therefore re-raises a task's first
      in-band exception exactly like the serial loop;
    * ``KeyboardInterrupt`` terminates every worker promptly and
      re-raises; results already delivered via ``on_result`` stand;
    * if replacement workers cannot be spawned, :class:`PoolDeathError`
      is raised instead of hanging.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs, len(tasks))
    if jobs <= 1:
        out = []
        for index, args in enumerate(tasks):
            result = fn(*args)
            out.append(result)
            if on_result is not None:
                on_result(index, result)
        return out

    total = len(tasks)
    results: List[object] = [None] * total
    completed = [False] * total
    failures = [0] * total
    done = 0
    claims: dict = {}  # pid -> (index, attempt, started_at)
    workers: dict = {}  # pid -> Process
    ctx = get_context()
    task_q = ctx.SimpleQueue()
    result_q = ctx.SimpleQueue()

    def spawn():
        try:
            proc = ctx.Process(
                target=_steal_worker, args=(fn, task_q, result_q), daemon=True
            )
            proc.start()
        except Exception as exc:
            raise PoolDeathError(f"could not start pool worker: {exc}") from exc
        workers[proc.pid] = proc

    dispatched = [False] * total
    in_queue = 0  # parent's estimate of undelivered messages in task_q
    cursor = 0  # next fresh task to dispatch
    window = max(2 * jobs, 4)

    def enqueue(index: int, attempt: int):
        nonlocal in_queue
        dispatched[index] = True
        in_queue += 1
        task_q.put((index, attempt, tasks[index]))

    def feed():
        """Keep at most ``window`` undelivered fresh tasks in the pipe.

        Pre-queueing every task can deadlock once both pipe buffers
        fill — the parent blocks in ``put`` while workers block posting
        results nobody is reading — so fresh tasks are dispatched
        lazily as claim messages drain the queue.
        """
        nonlocal cursor
        while cursor < total and in_queue < window:
            enqueue(cursor, 1)
            cursor += 1

    def settle(index: int, error: BaseException):
        """A task attempt failed: requeue, quarantine, or raise."""
        nonlocal done
        failures[index] += 1
        if failures[index] <= retries:
            counters.inc("par.task_retries")
            enqueue(index, failures[index] + 1)
            return
        if quarantine is not None:
            counters.inc("par.task_quarantined")
            completed[index] = True
            done += 1
            quarantine(index, error)
            return
        raise error

    def sweep():
        """Liveness pass: dead workers, hung tasks, lost claims."""
        nonlocal done
        for pid, proc in list(workers.items()):
            if proc.is_alive():
                continue
            workers.pop(pid)
            proc.join()
            counters.inc("par.worker_deaths")
            claim = claims.pop(pid, None)
            if claim is not None:
                index, attempt, _ = claim
                if not completed[index]:
                    settle(
                        index,
                        TaskCrash(
                            f"worker died running task {index}"
                            f" (attempt {attempt})"
                        ),
                    )
            if done < total:
                spawn()
        if task_timeout is not None:
            now = time.monotonic()
            for pid, (index, attempt, started) in list(claims.items()):
                if now - started <= task_timeout:
                    continue
                claims.pop(pid)
                proc = workers.pop(pid, None)
                if proc is not None and proc.is_alive():
                    proc.terminate()
                    proc.join(1.0)
                    if proc.is_alive():  # pragma: no cover - stubborn child
                        proc.kill()
                        proc.join(1.0)
                counters.inc("par.task_timeouts")
                if not completed[index]:
                    settle(
                        index,
                        TaskCrash(
                            f"task {index} exceeded task_timeout="
                            f"{task_timeout}s (attempt {attempt})"
                        ),
                    )
                if done < total:
                    spawn()

    feed()
    for _ in range(jobs):
        spawn()

    idle_sweeps = 0
    try:
        while done < total:
            if not _poll(result_q, 0.2 if task_timeout else 0.5):
                sweep()
                # Two consecutive silent sweeps with healthy, unclaimed
                # workers mean a claim message was lost with its worker
                # (a crash in the narrow window between queue get and
                # claim put): requeue everything not completed and not
                # claimed.  Duplicates are harmless — completion is
                # recorded once per index, first result wins.
                if not claims:
                    idle_sweeps += 1
                    if idle_sweeps >= 2:
                        idle_sweeps = 0
                        # No claims outstanding and healthy workers
                        # sitting idle: the queue is drained (or its
                        # claims died with their workers), so the
                        # in-flight estimate resyncs to zero before the
                        # requeue.  Only tasks already dispatched need
                        # requeueing — fresh ones still flow via feed().
                        in_queue = 0
                        for index in range(total):
                            if dispatched[index] and not completed[index]:
                                counters.inc("par.task_requeues_lost")
                                enqueue(index, failures[index] + 1)
                        feed()
                continue
            idle_sweeps = 0
            kind, pid, index, attempt, payload = result_q.get()
            if kind == "claim":
                in_queue -= 1
                claims[pid] = (index, attempt, time.monotonic())
                feed()
                continue
            claims.pop(pid, None)
            if completed[index]:
                continue
            if kind == "ok":
                result, exported = payload
                counters.merge(exported)
                results[index] = result
                completed[index] = True
                done += 1
                if on_result is not None:
                    on_result(index, result)
            else:  # "err"
                settle(index, payload)
        for _ in range(len(workers)):
            task_q.put(None)
        deadline = time.monotonic() + 2.0
        for proc in workers.values():
            proc.join(max(0.0, deadline - time.monotonic()))
    finally:
        for proc in workers.values():
            if proc.is_alive():
                proc.terminate()
        for proc in workers.values():
            proc.join(2.0)
            if proc.is_alive():  # pragma: no cover - stubborn child
                proc.kill()
                proc.join(1.0)
    return results
