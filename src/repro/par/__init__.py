"""Parallel execution: seed-stable sharding of campaigns across cores.

The differential fuzz campaigns (:mod:`repro.gen`) and the
mutation-detection test campaigns (:mod:`repro.testing.campaign`) are
embarrassingly parallel — thousands of independent generate → solve →
conformance instances — but were strictly serial.  :mod:`repro.par`
provides the primitive both need: an order-preserving parallel map over
picklable task tuples, in two dispatch flavours — :func:`starmap`
(contiguous chunks, lowest overhead for uniform tasks) and
:func:`steal_map` (work-stealing single-task dispatch, so one
solver-heavy instance never straggles a chunk of cheap neighbours; the
campaign default).  Both

* keeps results **deterministic**: results come back in task order no
  matter which worker finished first, so a sharded campaign report is
  byte-identical to the serial one for the same seed;
* keeps profiling **visible**: each worker ships its
  :mod:`repro.util.counters` state home and the parent merges it, so
  op-level profiles survive the pool;
* is **fork/spawn-safe**: worker entry points are importable
  module-level functions (never closures), so the pool works under both
  start methods and under ``python -m`` entry points.

See :mod:`repro.par.pool` for the implementation and the determinism
contract.
"""

from .pool import (
    PoolDeathError,
    TaskCrash,
    auto_jobs,
    parse_jobs,
    resolve_jobs,
    starmap,
    steal_map,
)

__all__ = [
    "PoolDeathError",
    "TaskCrash",
    "auto_jobs",
    "parse_jobs",
    "resolve_jobs",
    "starmap",
    "steal_map",
]
