"""Timed (I/O game) automaton models, builders, and validation."""

from .builder import AutomatonBuilder, NetworkBuilder
from .model import (
    BROADCAST,
    INPUT,
    INTERNAL,
    OUTPUT,
    Automaton,
    Channel,
    Edge,
    Location,
    ModelError,
    Network,
)
