"""Timed (I/O game) automaton models, builders, and validation."""

from .builder import AutomatonBuilder, NetworkBuilder
from .model import (
    INPUT,
    INTERNAL,
    OUTPUT,
    Automaton,
    Channel,
    Edge,
    Location,
    ModelError,
    Network,
)
