"""Model validation: the paper's §2.2 restrictions on plant models.

The test method requires the plant TIOGA to be

* **deterministic** — no two simultaneously enabled edges with the same
  action lead to different states, and
* **strongly input-enabled** — every input action is accepted in every
  reachable state.

Both are semantic properties; we check them over the explored simulation
graph (exact up to the exploration bound).  The checks are used by the
test suite and available to library users as pre-flight diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..dbm import Federation
from ..graph.explorer import SimulationGraph
from ..semantics.system import System


@dataclass
class ValidationIssue:
    kind: str  # 'nondeterminism' | 'input-refusal' | 'urgent-timelock'
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


@dataclass
class ValidationReport:
    issues: List[ValidationIssue] = field(default_factory=list)
    nodes_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, kind: str, message: str) -> None:
        self.issues.append(ValidationIssue(kind, message))

    def __str__(self) -> str:
        if self.ok:
            return f"valid ({self.nodes_checked} symbolic states checked)"
        return "\n".join(str(i) for i in self.issues)


def check_determinism(
    system: System,
    *,
    open_system: bool = True,
    max_nodes: Optional[int] = 20_000,
) -> ValidationReport:
    """Check that same-label moves never overlap with different effects."""
    report = ValidationReport()
    graph = SimulationGraph(system, open_system=open_system, max_nodes=max_nodes)
    graph.explore_all()
    report.nodes_checked = graph.node_count
    channels = system.network.channels
    for node in graph.nodes:
        by_label: dict = {}
        for edge in node.out_edges:
            if edge.move.direction == "internal":
                continue
            channel = channels.get(edge.move.label)
            if channel is not None and channel.broadcast and (
                edge.move.direction == "input"
            ):
                # Broadcast receive halves in *different* automata fire
                # together in the closed semantics (fan-out, not choice),
                # so group per automaton: only same-automaton alternatives
                # on the same broadcast channel are a genuine choice.
                key = (edge.move.label, edge.move.edges[0][0])
            else:
                key = edge.move.label
            by_label.setdefault(key, []).append(edge)
        for key, edges in by_label.items():
            label = key if isinstance(key, str) else key[0]
            if len(edges) < 2:
                continue
            for a in range(len(edges)):
                for b in range(a + 1, len(edges)):
                    e1, e2 = edges[a], edges[b]
                    if e1.target.id == e2.target.id:
                        # Same symbolic successor: check the guard zones
                        # produce identical posts where they overlap.
                        pass
                    z1 = node.zone.constrained(
                        system.guard_constraints(e1.move, node.sym.vars)
                    )
                    z2 = node.zone.constrained(
                        system.guard_constraints(e2.move, node.sym.vars)
                    )
                    overlap = z1.intersect(z2)
                    if overlap.is_empty():
                        continue
                    s1 = system.post(node.sym, e1.move)
                    s2 = system.post(node.sym, e2.move)
                    if s1 is None or s2 is None:
                        continue
                    if (
                        s1.key != s2.key
                        or system.resets_of(e1.move) != system.resets_of(e2.move)
                    ):
                        report.add(
                            "nondeterminism",
                            f"action {label} has overlapping enabled edges with"
                            f" different effects at {node.sym.locs}"
                            f" (guards overlap on {overlap.to_string()})",
                        )
    return report


def check_input_enabledness(
    system: System,
    *,
    max_nodes: Optional[int] = 20_000,
) -> ValidationReport:
    """Check every input channel is accepted in every reachable state.

    Checks the *open-system* semantics of a plant model: for each node of
    the simulation graph and each input channel, the union of the guards
    of enabled receiving edges must cover the node's whole zone.
    """
    report = ValidationReport()
    graph = SimulationGraph(system, open_system=True, max_nodes=max_nodes)
    graph.explore_all()
    report.nodes_checked = graph.node_count
    inputs = set(system.network.channel_names("input"))
    for node in graph.nodes:
        if system.has_committed(node.sym.locs):
            continue  # committed processing states resolve instantly
        # Urgent states do NOT resolve silently: they settle as observable
        # waiting points (quiescence bound 0), so inputs must be accepted
        # there like anywhere else.
        covered = {name: Federation.empty(system.dim) for name in inputs}
        for edge in node.out_edges:
            if edge.move.direction != "input":
                continue
            if edge.move.label not in covered:
                # Broadcast receive halves: a disabled receiver never
                # blocks the cast, so no enabledness obligation.
                continue
            zone = node.zone.constrained(
                system.guard_constraints(edge.move, node.sym.vars)
            )
            covered[edge.move.label] = covered[edge.move.label].union_zone(zone)
        whole = Federation.from_zone(node.zone)
        for name in sorted(inputs):
            if not covered[name].includes(whole):
                missing = whole.subtract(covered[name])
                report.add(
                    "input-refusal",
                    f"input {name}? refused at {node.sym.locs} for clock"
                    f" valuations {missing.to_string()}",
                )
    return report


def check_urgent_escapes(system: System) -> ValidationReport:
    """Static check that urgent locations cannot freeze time forever.

    An urgent location blocks all delay, so if every outgoing edge can be
    disabled the model can reach an instant where nothing is enabled and
    time cannot pass — a timelock the monitors would report as a
    (spurious) quiescence violation.  The static criterion: every urgent
    location must keep at least one *unconditional* outgoing edge — no
    clock constraints (a clock window may already have passed on entry)
    and no integer guard (a variable state may never satisfy it).  This
    is a conservative approximation: it does not prove the escape's
    target invariant admits entry (generated models guarantee that via
    entry resets), and it may reject models whose guarded edges happen to
    cover all reachable valuations.
    """
    report = ValidationReport()
    for automaton in system.automata:
        for loc in automaton.location_list:
            if not loc.urgent:
                continue
            escapes = [
                edge
                for edge in automaton.out_edges(loc.name)
                if not edge.guard_split.clock_atoms
                and not edge.guard_split.int_atoms
            ]
            if not escapes:
                report.add(
                    "urgent-timelock",
                    f"urgent location {automaton.name}.{loc.name} has no"
                    f" unconditional (guard-free) outgoing edge; time can"
                    f" freeze with no enabled action",
                )
    return report


def validate_plant(system: System, *, max_nodes: Optional[int] = 20_000) -> ValidationReport:
    """Combined §2.2 checks for a plant model (determinism + enabledness +
    urgent-location escapes)."""
    report = check_determinism(system, max_nodes=max_nodes)
    enabled = check_input_enabledness(system, max_nodes=max_nodes)
    report.issues.extend(enabled.issues)
    report.nodes_checked = max(report.nodes_checked, enabled.nodes_checked)
    report.issues.extend(check_urgent_escapes(system).issues)
    return report
