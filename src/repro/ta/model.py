"""Timed (I/O game) automata and networks.

The model layer follows the paper's Definitions 1-3:

* a **TA** is locations + clocks + guarded edges + invariants;
* a **TGA** partitions actions into controllable and uncontrollable ones;
* a **TIOGA** is a TGA where inputs are exactly the controllable actions
  and outputs exactly the uncontrollable ones.

Here the partition is carried by *channels*: an ``input`` channel is
controllable (the tester offers it), an ``output`` channel is
uncontrollable (the plant decides).  Edges without a channel are internal
(``tau``) moves whose controllability is set explicitly (default:
uncontrollable, the conservative choice for a plant model).

A :class:`Network` is a set of automata communicating over shared
declarations by binary channel synchronization — or, on ``broadcast``
channels, by one-to-many synchronization — exactly like an UPPAAL system.
Networks are *prepared* once (guards split, invariants checked, constants
collected) and treated as immutable afterwards.

**Interface partitions.**  A network may additionally declare which of
its channels form the *observable boundary* to the outside world
(:meth:`Network.set_interface` / ``NetworkBuilder.interface``).  The
partition drives the *partial* semantics of
:meth:`repro.semantics.system.System.moves_from`: synchronizations whose
participants are all inside the network complete internally (hidden
moves), while boundary channels stay open for the environment.  When no
interface is declared the boundary defaults to the channels the network
cannot synchronize by itself — binary channels lacking an
emitter/receiver pair in two distinct automata — plus every broadcast
channel (broadcast emission is always audible to an environment, which
can never block or race the internal receivers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..expr.ast import Assignment, Expr, IntLiteral, Name
from ..expr.clocksplit import (
    TRUE_GUARD,
    ClockAtom,
    SplitGuard,
    split_guard,
    update_max_constants,
)
from ..expr.env import Declarations


class ModelError(ValueError):
    """Raised on structurally invalid models."""


INPUT = "input"
OUTPUT = "output"
INTERNAL = "internal"
BROADCAST = "broadcast"


@dataclass(frozen=True)
class Channel:
    """A synchronization channel.

    ``kind`` is ``input`` (controllable, offered by the tester/controller),
    ``output`` (uncontrollable, produced by the plant), ``internal``
    (hidden; controllability per edge), or ``broadcast`` (uncontrollable,
    observable, UPPAAL-style one-to-many synchronization: one emitter
    synchronizes with *every* automaton that has an enabled receiving
    edge, and emission never blocks on missing receivers).

    Broadcast receiving edges may not carry clock guards (only integer
    guards): the set of participating receivers must be a function of the
    discrete state alone, or a single symbolic move could not represent
    the synchronization.  :meth:`Network.prepare` enforces this.
    """

    name: str
    kind: str

    @property
    def controllable(self) -> bool:
        return self.kind == INPUT

    @property
    def broadcast(self) -> bool:
        return self.kind == BROADCAST


@dataclass
class Location:
    name: str
    index: int
    invariant: Optional[Expr] = None
    committed: bool = False
    urgent: bool = False
    # Filled by Network.prepare():
    inv_split: SplitGuard = TRUE_GUARD

    def __repr__(self) -> str:
        return f"Location({self.name})"


@dataclass
class Edge:
    """One edge of one automaton.

    ``sync`` is ``(channel_name, '!'|'?')`` or None for internal edges.
    ``controllable`` is only meaningful for internal edges; synchronizing
    edges inherit controllability from the channel.
    """

    automaton: str
    source: str
    target: str
    guard: Optional[Expr] = None
    sync: Optional[Tuple[str, str]] = None
    assigns: Tuple[Assignment, ...] = ()
    controllable: bool = False
    # Filled by Network.prepare():
    guard_split: SplitGuard = TRUE_GUARD
    clock_resets: Tuple[Tuple[int, int], ...] = ()  # (clock index, value)
    int_assigns: Tuple[Assignment, ...] = ()
    index: int = -1

    def describe(self) -> str:
        parts = [f"{self.automaton}.{self.source} -> {self.automaton}.{self.target}"]
        if self.guard is not None:
            parts.append(f"[{self.guard}]")
        if self.sync is not None:
            parts.append(f"{self.sync[0]}{self.sync[1]}")
        if self.assigns:
            parts.append("{" + ", ".join(str(a) for a in self.assigns) + "}")
        return " ".join(parts)


class Automaton:
    """One timed automaton of a network."""

    def __init__(self, name: str):
        self.name = name
        self.locations: Dict[str, Location] = {}
        self.location_list: List[Location] = []
        self.initial: Optional[str] = None
        self.edges: List[Edge] = []

    def add_location(
        self,
        name: str,
        invariant: Optional[Expr] = None,
        *,
        initial: bool = False,
        committed: bool = False,
        urgent: bool = False,
    ) -> Location:
        if name in self.locations:
            raise ModelError(f"duplicate location {self.name}.{name}")
        loc = Location(name, len(self.location_list), invariant, committed, urgent)
        self.locations[name] = loc
        self.location_list.append(loc)
        if initial:
            if self.initial is not None:
                raise ModelError(f"automaton {self.name} has two initial locations")
            self.initial = name
        return loc

    def add_edge(self, edge: Edge) -> Edge:
        for endpoint in (edge.source, edge.target):
            if endpoint not in self.locations:
                raise ModelError(f"unknown location {self.name}.{endpoint}")
        self.edges.append(edge)
        return edge

    def location_index(self, name: str) -> int:
        return self.locations[name].index

    def out_edges(self, location: str) -> List[Edge]:
        return [e for e in self.edges if e.source == location]


class Network:
    """A closed network of automata over shared declarations."""

    def __init__(self, name: str, decls: Declarations):
        self.name = name
        self.decls = decls
        self.channels: Dict[str, Channel] = {}
        self.automata: List[Automaton] = []
        self._by_name: Dict[str, Automaton] = {}
        self._prepared = False
        self._interface: Optional[Tuple[str, ...]] = None
        #: Observable boundary channels (set by :meth:`prepare`).
        self.boundary: frozenset = frozenset()
        #: Channel name -> (emitting automata indices, receiving indices).
        self._chan_sides: Dict[str, Tuple[frozenset, frozenset]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_channel(self, name: str, kind: str) -> Channel:
        if name in self.channels:
            raise ModelError(f"duplicate channel {name}")
        if kind not in (INPUT, OUTPUT, INTERNAL, BROADCAST):
            raise ModelError(f"bad channel kind {kind!r}")
        channel = Channel(name, kind)
        self.channels[name] = channel
        return channel

    def add_automaton(self, automaton: Automaton) -> Automaton:
        if automaton.name in self._by_name:
            raise ModelError(f"duplicate automaton {automaton.name}")
        self.automata.append(automaton)
        self._by_name[automaton.name] = automaton
        return automaton

    def automaton(self, name: str) -> Automaton:
        return self._by_name[name]

    def set_interface(self, channels: Sequence[str]) -> "Network":
        """Declare the observable boundary for *partial* composition.

        ``channels`` is the subset of this network's channels observable
        at the boundary; every other channel is internalised (its
        synchronizations complete inside the network and become hidden
        moves under the partial semantics).  Declaring the empty
        interface internalises everything.  Must be called before
        :meth:`prepare`; validated there.
        """
        if self._prepared:
            raise ModelError(
                "interface partition must be declared before prepare()"
            )
        self._interface = tuple(dict.fromkeys(channels))
        return self

    @property
    def interface_declared(self) -> bool:
        """True iff :meth:`set_interface` was called explicitly."""
        return self._interface is not None

    # ------------------------------------------------------------------
    # Preparation
    # ------------------------------------------------------------------

    def prepare(self) -> "Network":
        """Split guards, classify assignments, and validate structure."""
        if self._prepared:
            return self
        decls = self.decls
        edge_counter = 0
        for automaton in self.automata:
            if automaton.initial is None:
                raise ModelError(f"automaton {automaton.name} has no initial location")
            for loc in automaton.location_list:
                loc.inv_split = split_guard(loc.invariant, decls)
                self._check_invariant(automaton, loc)
            for edge in automaton.edges:
                edge.guard_split = split_guard(edge.guard, decls)
                edge.clock_resets, edge.int_assigns = self._split_assigns(edge)
                if edge.sync is not None:
                    channel = self.channels.get(edge.sync[0])
                    if channel is None:
                        raise ModelError(
                            f"edge {edge.describe()} uses undeclared channel"
                        )
                    edge.controllable = channel.controllable
                    if (
                        channel.broadcast
                        and edge.sync[1] == "?"
                        and edge.guard_split.clock_atoms
                    ):
                        raise ModelError(
                            f"broadcast receiver {edge.describe()} carries a"
                            f" clock guard; broadcast receiving edges may only"
                            f" use integer guards"
                        )
                edge.index = edge_counter
                edge_counter += 1
        self._compute_partition()
        self._prepared = True
        return self

    def _compute_partition(self) -> None:
        """Compute channel sides and the boundary; validate an explicit one."""
        emit: Dict[str, set] = {name: set() for name in self.channels}
        recv: Dict[str, set] = {name: set() for name in self.channels}
        for a_idx, automaton in enumerate(self.automata):
            for edge in automaton.edges:
                if edge.sync is None:
                    continue
                side = emit if edge.sync[1] == "!" else recv
                side[edge.sync[0]].add(a_idx)
        self._chan_sides = {
            name: (frozenset(emit[name]), frozenset(recv[name]))
            for name in self.channels
        }
        if self._interface is not None:
            for name in self._interface:
                if name not in self.channels:
                    raise ModelError(
                        f"interface declares undeclared channel {name!r}"
                    )
            self.boundary = frozenset(self._interface)
        else:
            self.boundary = frozenset(
                name
                for name, channel in self.channels.items()
                if channel.broadcast or not self.channel_pairable(name)
            )

    def _check_invariant(self, automaton: Automaton, loc: Location) -> None:
        for atom in loc.inv_split.clock_atoms:
            if not atom.is_upper_bound:
                raise ModelError(
                    f"invariant of {automaton.name}.{loc.name} must be a"
                    f" conjunction of clock upper bounds (x < E or x <= E)"
                )

    def _split_assigns(
        self, edge: Edge
    ) -> Tuple[Tuple[Tuple[int, int], ...], Tuple[Assignment, ...]]:
        resets: List[Tuple[int, int]] = []
        ints: List[Assignment] = []
        for assign in edge.assigns:
            target = assign.target
            if isinstance(target, Name):
                clock = self.decls.clock_index(target.ident)
                if clock is not None:
                    if not isinstance(assign.value, IntLiteral) or assign.value.value < 0:
                        raise ModelError(
                            f"clock assignment must be a non-negative constant:"
                            f" {assign} on {edge.describe()}"
                        )
                    resets.append((clock, assign.value.value))
                    continue
            ints.append(assign)
        return tuple(resets), tuple(ints)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        return self.decls.dbm_dim

    def clock_names(self) -> List[str]:
        return ["0"] + list(self.decls.clocks)

    def initial_locations(self) -> Tuple[int, ...]:
        return tuple(a.location_index(a.initial) for a in self.automata)

    def location_names(self, locs: Sequence[int]) -> List[str]:
        return [
            f"{a.name}.{a.location_list[locs[k]].name}"
            for k, a in enumerate(self.automata)
        ]

    def max_constants(self, extra_atoms: Sequence[ClockAtom] = ()) -> List[int]:
        """Per-clock maximum constants (ExtraM input), covering every guard,
        invariant, and any extra atoms (e.g. from the test purpose).

        The model-wide scan is memoized (networks are frozen once
        prepared); only the extra atoms are folded in per call."""
        base = getattr(self, "_max_consts_base", None)
        if base is None:
            base = [0] * self.dim
            for automaton in self.automata:
                for loc in automaton.location_list:
                    update_max_constants(loc.inv_split.clock_atoms, self.decls, base)
                for edge in automaton.edges:
                    update_max_constants(edge.guard_split.clock_atoms, self.decls, base)
            self._max_consts_base = base
        max_consts = list(base)
        update_max_constants(tuple(extra_atoms), self.decls, max_consts)
        return max_consts

    def has_diagonal_constraints(self) -> bool:
        cached = getattr(self, "_has_diagonal", None)
        if cached is None:
            cached = False
            for automaton in self.automata:
                for loc in automaton.location_list:
                    if any(a.is_diagonal for a in loc.inv_split.clock_atoms):
                        cached = True
                for edge in automaton.edges:
                    if any(a.is_diagonal for a in edge.guard_split.clock_atoms):
                        cached = True
            self._has_diagonal = cached
        return cached

    def channel_names(self, kind: Optional[str] = None) -> List[str]:
        return [
            c.name for c in self.channels.values() if kind is None or c.kind == kind
        ]

    def channel_sides(self, name: str) -> Tuple[frozenset, frozenset]:
        """(emitting, receiving) automaton index sets of a channel.

        Computed once by :meth:`prepare`; the static sides decide which
        synchronizations the *partial* semantics can complete internally.
        """
        return self._chan_sides[name]

    def channel_pairable(self, name: str) -> bool:
        """Whether the network can complete a sync on ``name`` by itself.

        Binary channels need an emitter and a receiver in two *distinct*
        automata; a broadcast channel needs only an emitter (emission
        never blocks on missing receivers).
        """
        emitters, receivers = self._chan_sides[name]
        if self.channels[name].broadcast:
            return bool(emitters)
        return any(i != j for i in emitters for j in receivers)

    def internalised_channels(self) -> frozenset:
        """Channels hidden by the partition *and* actually pairable.

        These are exactly the channels whose syncs complete internally
        (as hidden moves) under the partial semantics; a non-boundary
        channel the network cannot pair is simply dead, as in the closed
        product.
        """
        return frozenset(
            name
            for name in self.channels
            if name not in self.boundary and self.channel_pairable(name)
        )

    def structural_text(self) -> str:
        """A canonical plain-text description of the network's structure.

        Covers declarations, channels, locations (with invariants and
        flags), and edges (guards, syncs, assignments) in declaration
        order.  Two structurally identical networks produce identical
        text; used by :meth:`structural_hash` and the determinism
        regression tests of :mod:`repro.gen`.
        """
        lines: List[str] = [f"network {self.name}"]
        decls = self.decls
        for name in sorted(decls.constants):
            lines.append(f"const {name} = {decls.constants[name]}")
        for name in decls.clocks:
            lines.append(f"clock {name}")
        for var in decls.int_vars.values():
            lines.append(f"int {var.name} [{var.low},{var.high}] = {var.init}")
        for arr in decls.arrays.values():
            lines.append(
                f"array {arr.name}[{arr.size}] [{arr.low},{arr.high}]"
                f" = {list(arr.init)}"
            )
        for channel in self.channels.values():
            lines.append(f"chan {channel.name} : {channel.kind}")
        if self._interface is not None:
            lines.append(f"interface [{', '.join(sorted(self._interface))}]")
        for automaton in self.automata:
            lines.append(f"automaton {automaton.name} init={automaton.initial}")
            for loc in automaton.location_list:
                flags = "".join(
                    flag
                    for flag, on in (("C", loc.committed), ("U", loc.urgent))
                    if on
                )
                lines.append(
                    f"  loc {loc.name} inv=[{loc.invariant}] flags=[{flags}]"
                )
            for edge in automaton.edges:
                lines.append(f"  edge {edge.describe()}")
        return "\n".join(lines)

    def structural_hash(self) -> str:
        """A stable hex digest of :meth:`structural_text`.

        Independent of ``PYTHONHASHSEED`` and of the process (sha256 over
        the canonical text), so it can be printed in CI failures and
        compared across runs: same generator seed ⇒ same hash.
        """
        import hashlib

        return hashlib.sha256(self.structural_text().encode("utf-8")).hexdigest()
