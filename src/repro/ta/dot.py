"""Graphviz (DOT) export of automata, networks, and winning strategies.

Purely textual (no graphviz dependency): render with ``dot -Tpdf``.
Conventions follow the paper's figures — solid edges for controllable
actions (inputs), dashed edges for uncontrollable ones (outputs and
plant-internal moves), double circles for initial locations.

Networks that declare an *interface partition* additionally render it:
sync edges on boundary channels are drawn bold (``penwidth=2``), edges on
internalised channels dashed and grey (their synchronizations complete
inside the plant and are hidden at the test interface), and the network
graph carries a caption listing the partition — so a composed plant's
observability is visible at a glance.
"""

from __future__ import annotations

from typing import List, Optional

from .model import Automaton, Network


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _edge_label(edge) -> str:
    parts = []
    if edge.guard is not None:
        parts.append(str(edge.guard))
    if edge.sync is not None:
        parts.append(f"{edge.sync[0]}{edge.sync[1]}")
    if edge.assigns:
        parts.append(", ".join(str(a) for a in edge.assigns))
    return "\\n".join(_escape(p) for p in parts)


def automaton_to_dot(
    automaton: Automaton,
    network: Optional[Network] = None,
    *,
    name: Optional[str] = None,
    subgraph: bool = False,
) -> str:
    """DOT source for one automaton (optionally as a cluster subgraph)."""
    title = name or automaton.name
    prefix = f"{automaton.name}_"
    lines: List[str] = []
    if subgraph:
        lines.append(f'subgraph "cluster_{_escape(title)}" {{')
        lines.append(f'label="{_escape(title)}";')
    else:
        lines.append(f'digraph "{_escape(title)}" {{')
        lines.append("rankdir=LR;")
    for loc in automaton.location_list:
        attrs = []
        label = loc.name
        if loc.invariant is not None:
            label += f"\\n{_escape(str(loc.invariant))}"
        attrs.append(f'label="{label}"')
        if loc.name == automaton.initial:
            attrs.append("shape=doublecircle")
        else:
            attrs.append("shape=circle")
        if loc.committed:
            attrs.append('style=filled fillcolor="#ffdddd"')
        elif loc.urgent:
            attrs.append('style=filled fillcolor="#ddddff"')
        lines.append(f'"{prefix}{loc.name}" [{" ".join(attrs)}];')
    for edge in automaton.edges:
        style = "solid"
        extra = ""
        if network is not None:
            controllable = edge.controllable
            hidden = False
            if edge.sync is not None:
                channel = network.channels.get(edge.sync[0])
                if channel is not None:
                    controllable = channel.controllable
                    if channel.broadcast:
                        # One-to-many synchronization: draw bold so the
                        # fan-out stands out in network figures.
                        extra = " penwidth=2"
                    if network.interface_declared:
                        if channel.name in network.boundary:
                            # Observable at the interface partition.
                            extra = " penwidth=2"
                        else:
                            # Internalised: the sync completes inside the
                            # plant, hidden from the test interface.
                            hidden = True
                            extra = ' color="#888888"'
            style = "dashed" if (hidden or not controllable) else "solid"
        label = _edge_label(edge)
        lines.append(
            f'"{prefix}{edge.source}" -> "{prefix}{edge.target}"'
            f' [label="{label}" style={style}{extra}];'
        )
    lines.append("}")
    return "\n".join(lines)


def network_to_dot(network: Network) -> str:
    """DOT source with one cluster per automaton, paper-figure style."""
    lines = [f'digraph "{_escape(network.name)}" {{', "rankdir=LR;", "compound=true;"]
    if network.interface_declared:
        boundary = ", ".join(sorted(network.boundary)) or "(none)"
        internal = ", ".join(sorted(network.internalised_channels()))
        caption = f"boundary: {boundary}"
        if internal:
            caption += f"\\ninternal: {internal}"
        lines.append(f'label="{_escape(network.name)}\\n{caption}";')
        lines.append("labelloc=t;")
    for automaton in network.automata:
        lines.append(automaton_to_dot(automaton, network, subgraph=True))
    lines.append("}")
    return "\n".join(lines)


def strategy_to_dot(strategy) -> str:
    """DOT source of a winning strategy's decision graph.

    Nodes are the strategy's symbolic states (location vectors); solid
    edges are the strategy's controllable decisions, dashed edges the
    plant moves the strategy is prepared to observe.
    """
    result = strategy.result
    network = strategy.system.network
    lines = ['digraph "strategy" {', "rankdir=LR;"]
    for node_id, ns in strategy.per_node.items():
        node = ns.node
        if node is None:
            continue
        locs = " ".join(network.location_names(node.sym.locs))
        goal_mark = " (goal)" if not ns.goal.is_empty() else ""
        lines.append(
            f'"n{node.id}" [label="{_escape(locs)}{goal_mark}"'
            f' shape={"doubleoctagon" if goal_mark else "box"}];'
        )
    for node_id, ns in strategy.per_node.items():
        node = ns.node
        if node is None:
            continue
        for edge in node.out_edges:
            if edge.target.id not in strategy.per_node:
                continue
            style = "solid" if edge.move.controllable else "dashed"
            lines.append(
                f'"n{node.id}" -> "n{edge.target.id}"'
                f' [label="{_escape(edge.move.label)}" style={style}];'
            )
    lines.append("}")
    return "\n".join(lines)
