"""Fluent builders for networks of timed I/O game automata.

Example::

    net = NetworkBuilder("smartlight")
    net.constant("Tidle", 20)
    net.clock("x")
    net.input_channel("touch")
    net.output_channel("bright")

    iut = net.automaton("IUT")
    iut.location("Off", initial=True)
    iut.location("L5", invariant="Tp <= 2")
    iut.edge("Off", "L5", guard="x >= Tidle", sync="touch?", assign="x := 0")

    network = net.build()

Guard / invariant / assignment strings use the expression language of
:mod:`repro.expr`; ``sync`` strings are ``"chan!"`` or ``"chan?"``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..expr.ast import Assignment, Expr
from ..expr.env import Declarations
from ..expr.parser import parse_assignments, parse_expression
from .model import (
    BROADCAST,
    INPUT,
    INTERNAL,
    OUTPUT,
    Automaton,
    Edge,
    ModelError,
    Network,
)

#: Guards/invariants accept either source strings or pre-built ASTs, so
#: programmatic constructors (e.g. :mod:`repro.gen`) can skip the parser.
ExprLike = Union[str, Expr]
AssignLike = Union[str, Sequence[Assignment]]


def _as_expression(value: Optional[ExprLike]) -> Optional[Expr]:
    if value is None:
        return None
    if isinstance(value, str):
        return parse_expression(value) if value.strip() else None
    return value


def _as_assignments(value: Optional[AssignLike]) -> Tuple[Assignment, ...]:
    if value is None:
        return ()
    if isinstance(value, str):
        return tuple(parse_assignments(value)) if value.strip() else ()
    return tuple(value)


def _parse_sync(sync: Optional[str]) -> Optional[Tuple[str, str]]:
    if sync is None:
        return None
    sync = sync.strip()
    if not sync or sync[-1] not in "!?":
        raise ModelError(f"sync must end in '!' or '?': {sync!r}")
    return sync[:-1], sync[-1]


class AutomatonBuilder:
    """Builder for one automaton inside a :class:`NetworkBuilder`."""

    def __init__(self, network: "NetworkBuilder", name: str):
        self._network = network
        self._automaton = Automaton(name)

    @property
    def name(self) -> str:
        return self._automaton.name

    def location(
        self,
        name: str,
        invariant: Optional[ExprLike] = None,
        *,
        initial: bool = False,
        committed: bool = False,
        urgent: bool = False,
    ) -> "AutomatonBuilder":
        self._automaton.add_location(
            name,
            _as_expression(invariant),
            initial=initial,
            committed=committed,
            urgent=urgent,
        )
        return self

    def has_location(self, name: str) -> bool:
        return name in self._automaton.locations

    def location_names(self) -> List[str]:
        return [loc.name for loc in self._automaton.location_list]

    def edge(
        self,
        source: str,
        target: str,
        *,
        guard: Optional[ExprLike] = None,
        sync: Optional[str] = None,
        assign: Optional[AssignLike] = None,
        controllable: bool = False,
    ) -> "AutomatonBuilder":
        guard_expr = _as_expression(guard)
        assigns = _as_assignments(assign)
        self._automaton.add_edge(
            Edge(
                automaton=self._automaton.name,
                source=source,
                target=target,
                guard=guard_expr,
                sync=_parse_sync(sync),
                assigns=assigns,
                controllable=controllable,
            )
        )
        return self


class NetworkBuilder:
    """Builder for a whole network (declarations + channels + automata)."""

    def __init__(self, name: str):
        self.name = name
        self.decls = Declarations()
        self._channels: List[Tuple[str, str]] = []
        self._automata: List[AutomatonBuilder] = []
        self._interface: Optional[Tuple[str, ...]] = None

    # Declarations -----------------------------------------------------

    def constant(self, name: str, value: int) -> "NetworkBuilder":
        self.decls.add_constant(name, value)
        return self

    def clock(self, *names: str) -> "NetworkBuilder":
        for name in names:
            self.decls.add_clock(name)
        return self

    def int_var(
        self, name: str, low: int = -(1 << 15), high: int = 1 << 15, init: int = 0
    ) -> "NetworkBuilder":
        self.decls.add_int(name, low, high, init)
        return self

    def int_array(
        self,
        name: str,
        size: int,
        low: int = -(1 << 15),
        high: int = 1 << 15,
        init: Optional[Sequence[int]] = None,
    ) -> "NetworkBuilder":
        self.decls.add_array(name, size, low, high, init)
        return self

    def range_type(self, name: str, low: int, high: int) -> "NetworkBuilder":
        self.decls.add_range_type(name, low, high)
        return self

    # Channels ----------------------------------------------------------

    def input_channel(self, *names: str) -> "NetworkBuilder":
        for name in names:
            self._channels.append((name, INPUT))
        return self

    def output_channel(self, *names: str) -> "NetworkBuilder":
        for name in names:
            self._channels.append((name, OUTPUT))
        return self

    def internal_channel(self, *names: str) -> "NetworkBuilder":
        for name in names:
            self._channels.append((name, INTERNAL))
        return self

    def broadcast_channel(self, *names: str) -> "NetworkBuilder":
        for name in names:
            self._channels.append((name, BROADCAST))
        return self

    def interface(self, *names: str) -> "NetworkBuilder":
        """Declare the observable boundary channels (partial composition).

        Channels *not* listed are internalised: their synchronizations
        complete inside the network under the partial semantics.  Repeat
        calls accumulate; the first call — even with no names — marks the
        interface as declared, so a single bare ``interface()`` yields an
        empty boundary (a fully internalised plant).  See
        :meth:`repro.ta.model.Network.set_interface`.
        """
        self._interface = (self._interface or ()) + names
        return self

    # Automata ----------------------------------------------------------

    def automaton(self, name: str) -> AutomatonBuilder:
        builder = AutomatonBuilder(self, name)
        self._automata.append(builder)
        return builder

    # Build ---------------------------------------------------------------

    def build(self) -> Network:
        network = Network(self.name, self.decls)
        for name, kind in self._channels:
            network.add_channel(name, kind)
        for builder in self._automata:
            network.add_automaton(builder._automaton)
        if self._interface is not None:
            network.set_interface(self._interface)
        return network.prepare()
