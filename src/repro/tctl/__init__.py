"""Test purposes: TCTL-subset queries and goal-predicate evaluation."""

from .goals import GoalPredicate
from .query import INVARIANT, REACH, REACH_GAME, SAFETY_GAME, Query, parse_query
