"""Test-purpose queries: the ``control:`` TCTL subset of UPPAAL-TIGA.

Supported forms::

    control: A<> φ      -- reachability game (the paper's test purposes)
    control: A[] φ      -- safety game (extension)
    E<> φ               -- plain reachability (model sanity checks)
    A[] φ               -- plain invariant

φ is a state predicate over locations (``IUT.Bright``), integer variables
(including arrays and ``forall``/``exists``), and clocks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..expr.ast import Expr
from ..expr.parser import ParseError, parse_expression

REACH_GAME = "control_reach"
SAFETY_GAME = "control_safe"
REACH = "reach"
INVARIANT = "invariant"

_PATTERNS = [
    (re.compile(r"^\s*control\s*:\s*A\s*<>\s*"), REACH_GAME),
    (re.compile(r"^\s*control\s*:\s*A\s*\[\]\s*"), SAFETY_GAME),
    (re.compile(r"^\s*E\s*<>\s*"), REACH),
    (re.compile(r"^\s*A\s*\[\]\s*"), INVARIANT),
]


@dataclass(frozen=True)
class Query:
    kind: str
    predicate: Expr
    source: str

    @property
    def is_game(self) -> bool:
        return self.kind in (REACH_GAME, SAFETY_GAME)

    def __str__(self) -> str:
        return self.source


def parse_query(text: str) -> Query:
    """Parse a query string into its kind and state predicate."""
    for pattern, kind in _PATTERNS:
        match = pattern.match(text)
        if match:
            predicate = parse_expression(text[match.end() :])
            return Query(kind, predicate, text.strip())
    raise ParseError(
        f"unsupported query {text!r}: expected 'control: A<> ...',"
        f" 'control: A[] ...', 'E<> ...' or 'A[] ...'"
    )
