"""Evaluating state predicates into zone federations.

A test-purpose predicate mixes discrete atoms (locations, integer
variables, quantifiers) with clock constraints, combined by arbitrary
boolean structure.  For a fixed discrete state the predicate denotes a
*set of clock valuations*; this module computes it as a
:class:`~repro.dbm.Federation` by structural recursion with polarity
(negation normal form on the fly):

* discrete atoms evaluate to ``true``/``false`` → universal/empty;
* clock atoms become zones (negation flips the comparison; a negated
  clock equality becomes the union of the two strict sides);
* ``&&`` intersects, ``||`` unions, quantifiers expand over their range.
"""

from __future__ import annotations

from typing import List, Optional

from ..dbm import DBM, Federation
from ..expr.ast import Binary, Expr, Quantifier, Unary, walk
from ..expr.clocksplit import ClockAtom, GuardError, _mentions_clock, _parse_clock_atom
from ..expr.eval import Context, evaluate, evaluate_bool
from ..semantics.state import SymbolicState
from ..semantics.system import System


def normalize_process_fields(expr: Expr, system: System) -> Expr:
    """Rewrite ``Proc.var`` atoms to plain variable references.

    The paper writes process-scoped variables (``IUT.betterInfo``); our
    declarations are global, so a dotted reference whose field is *not* a
    location of the process but *is* a declared variable is rewritten to
    the bare variable name.  Location tests are left untouched.
    """
    from ..expr.ast import ArrayIndex, Binary, Field, Name, Quantifier, Unary

    def rewrite(node: Expr) -> Expr:
        if isinstance(node, Field) and isinstance(node.base, Name):
            proc = node.base.ident
            automaton = next(
                (a for a in system.automata if a.name == proc), None
            )
            if automaton is not None and node.field in automaton.locations:
                return node
            decls = system.decls
            if node.field in decls.int_vars or node.field in decls.constants:
                return Name(node.field)
            return node
        if isinstance(node, Unary):
            return Unary(node.op, rewrite(node.operand))
        if isinstance(node, Binary):
            return Binary(node.op, rewrite(node.lhs), rewrite(node.rhs))
        if isinstance(node, ArrayIndex):
            return ArrayIndex(rewrite(node.array), rewrite(node.index))
        if isinstance(node, Quantifier):
            return Quantifier(
                node.kind, node.binder, rewrite(node.low), rewrite(node.high),
                rewrite(node.body),
            )
        return node

    return rewrite(expr)


class GoalPredicate:
    """A compiled state predicate, evaluable per symbolic state."""

    def __init__(self, system: System, predicate: Expr):
        self.system = system
        self.predicate = normalize_process_fields(predicate, system)
        self.dim = system.dim
        # The predicate's clock-set denotation depends only on the
        # discrete state — and only on the variable slots the predicate
        # actually reads — so it is computed once per (locs, projected
        # vars) and intersected with each node's zone.  Many graph nodes
        # share a discrete state and predicate evaluation walks the
        # whole AST.
        self._discrete_cache: dict = {}
        self._project_vars = system._projector([self.predicate])

    # ------------------------------------------------------------------

    def federation(self, sym: SymbolicState) -> Federation:
        """The subset of ``sym.zone`` satisfying the predicate."""
        key = (sym.locs, self._project_vars(sym.vars))
        fed = self._discrete_cache.get(key)
        if fed is None:
            ctx = self.system.query_ctx(sym.locs, sym.vars)
            fed = self._eval(self.predicate, ctx, positive=True)
            self._discrete_cache[key] = fed
        return fed.intersect_zone(sym.zone)

    def holds_discretely(self, sym: SymbolicState) -> bool:
        """True if the predicate holds for *some* valuation in the zone."""
        return not self.federation(sym).is_empty()

    def clock_atoms(self) -> List[ClockAtom]:
        """All clock atoms syntactically present (for max constants)."""
        decls = self.system.decls
        atoms: List[ClockAtom] = []
        for node in walk(self.predicate):
            if isinstance(node, Binary) and node.op in ("<", "<=", "==", ">=", ">"):
                if _mentions_clock(node, decls):
                    try:
                        atoms.append(_parse_clock_atom(node, decls))
                    except GuardError:
                        pass
        return atoms

    # ------------------------------------------------------------------

    def _eval(self, expr: Expr, ctx: Context, positive: bool) -> Federation:
        decls = self.system.decls
        if isinstance(expr, Unary) and expr.op == "!":
            return self._eval(expr.operand, ctx, not positive)
        if isinstance(expr, Binary) and expr.op in ("&&", "||", "imply"):
            op = expr.op
            if op == "imply":
                # a imply b  ==  !a || b
                lhs = self._eval(expr.lhs, ctx, not positive)
                rhs = self._eval(expr.rhs, ctx, positive)
                combine_union = positive
            else:
                lhs = self._eval(expr.lhs, ctx, positive)
                rhs = self._eval(expr.rhs, ctx, positive)
                combine_union = (op == "||") == positive
            if combine_union:
                return lhs.union(rhs)
            return lhs.intersect(rhs)
        if isinstance(expr, Quantifier):
            low = evaluate(expr.low, ctx)
            high = evaluate(expr.high, ctx)
            is_union = (expr.kind == "exists") == positive
            result: Optional[Federation] = None
            for value in range(low, high + 1):
                part = self._eval(
                    expr.body, ctx.with_binding(expr.binder, value), positive
                )
                if result is None:
                    result = part
                elif is_union:
                    result = result.union(part)
                else:
                    result = result.intersect(part)
            if result is None:  # empty range
                return (
                    Federation.empty(self.dim)
                    if is_union
                    else Federation.universal(self.dim)
                )
            return result
        # Atom: clock or discrete.
        if _mentions_clock(expr, decls):
            return self._clock_atom_federation(expr, ctx, positive)
        value = evaluate_bool(expr, ctx)
        if value == positive:
            return Federation.universal(self.dim)
        return Federation.empty(self.dim)

    def _clock_atom_federation(
        self, expr: Expr, ctx: Context, positive: bool
    ) -> Federation:
        atom = _parse_clock_atom(expr, ctx.decls)
        if positive:
            atoms = [atom]
        elif atom.op == "==":
            # not (x == k)  ->  x < k  or  x > k
            lt_atom = ClockAtom(atom.i, atom.j, "<", atom.rhs)
            gt_atom = ClockAtom(atom.i, atom.j, ">", atom.rhs)
            fed = Federation.empty(self.dim)
            for part in (lt_atom, gt_atom):
                zone = DBM.universal(self.dim).constrained(part.constraints(ctx))
                fed = fed.union_zone(zone)
            return fed
        else:
            atoms = [atom.negated()]
        fed = Federation.universal(self.dim)
        for part in atoms:
            fed = fed.constrained(part.constraints(ctx))
        return fed
