"""Forward exploration of the simulation graph (zone graph).

Nodes are symbolic states ``(discrete state, delay-closed zone)``; edges
carry the :class:`~repro.semantics.system.Move` that produced them, so the
game solver can replay them for both ``post`` and ``pred``.

Inclusion subsumption: a freshly computed symbolic state whose zone is
contained in an existing node's zone (same discrete state) is folded into
that node.  With ExtraM extrapolation (diagonal-free models) the graph is
finite; for models with diagonal guards extrapolation is disabled and
termination relies on bounded clocks (checked by the caller via
``max_nodes``).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..dbm import DBM
from ..semantics.state import DiscreteKey, SymbolicState
from ..semantics.system import CLOSED, OPEN, Move, System


class _ZoneIndex:
    """Append-only stack of zone matrices with a batched superset probe.

    Interning does one subsumption scan per freshly computed symbolic
    state; with many nodes per discrete key that is the explorer's inner
    loop.  Keeping the key's zones stacked in one ``(cap, dim, dim)``
    buffer turns the scan into a single broadcast comparison.
    """

    __slots__ = ("buf", "count")

    def __init__(self, dim: int):
        self.buf = np.empty((4, dim, dim), dtype=np.int64)
        self.count = 0

    def add(self, matrix: Optional[np.ndarray]) -> None:
        """Append a zone matrix; None appends a never-matching sentinel
        (used for empty zones, whose matrix comparison is meaningless)."""
        if self.count == self.buf.shape[0]:
            grown = np.empty(
                (2 * self.count,) + self.buf.shape[1:], dtype=np.int64
            )
            grown[: self.count] = self.buf
            self.buf = grown
        if matrix is None:
            self.buf[self.count] = np.iinfo(np.int64).min
        else:
            self.buf[self.count] = matrix
        self.count += 1

    def find_superset(self, matrix: np.ndarray) -> int:
        """Index of the first stored zone including ``matrix``, or -1."""
        if not self.count:
            return -1
        hits = (self.buf[: self.count] >= matrix).all(axis=(1, 2))
        idx = int(np.argmax(hits))
        return idx if hits[idx] else -1


class ExplorationLimit(RuntimeError):
    """Raised when exploration exceeds its node or time budget."""


@dataclass
class GraphEdge:
    source: "GraphNode"
    move: Move
    target: "GraphNode"

    def __repr__(self) -> str:
        return f"GraphEdge({self.source.id} -{self.move.label}-> {self.target.id})"


@dataclass
class GraphNode:
    id: int
    sym: SymbolicState
    out_edges: List[GraphEdge] = field(default_factory=list)
    in_edges: List[GraphEdge] = field(default_factory=list)

    @property
    def key(self) -> DiscreteKey:
        return self.sym.key

    @property
    def zone(self) -> DBM:
        return self.sym.zone

    def __hash__(self) -> int:
        return self.id

    def __repr__(self) -> str:
        return f"GraphNode({self.id}, locs={self.sym.locs})"


class SimulationGraph:
    """The explored portion of a network's simulation graph."""

    def __init__(
        self,
        system: System,
        *,
        open_system: bool = False,
        mode: Optional[str] = None,
        extrapolate: bool = True,
        extra_max_consts: Optional[Sequence[int]] = None,
        max_nodes: Optional[int] = None,
        time_limit: Optional[float] = None,
    ):
        self.system = system
        #: Move-enumeration mode (closed | open | partial); the legacy
        #: ``open_system`` flag maps to OPEN.
        self.mode = mode if mode is not None else (OPEN if open_system else CLOSED)
        self.max_nodes = max_nodes
        self.time_limit = time_limit
        self.nodes: List[GraphNode] = []
        self._by_key: Dict[DiscreteKey, List[GraphNode]] = {}
        self._zone_index: Dict[DiscreteKey, _ZoneIndex] = {}
        # Exact-zone memo: a state reached over k edges is interned k
        # times with byte-identical zones; remembering the resolved node
        # skips extrapolation and the subsumption scan for repeats.
        self._intern_memo: Dict[tuple, GraphNode] = {}
        # Canonical-zone table keyed by the minimal constraint form
        # (:meth:`repro.dbm.DBM.minimal_key`): equal post-extrapolation
        # zones reached at *different* discrete states collapse to one
        # DBM object, sharing matrix storage and memoized keys across
        # the graph's lifetime.
        self._zone_intern: Dict[bytes, DBM] = {}
        self._expanded: Dict[int, bool] = {}
        self._counter = itertools.count()
        network = system.network
        if extrapolate and not network.has_diagonal_constraints():
            base = network.max_constants()
            if extra_max_consts is not None:
                base = [max(a, b) for a, b in zip(base, extra_max_consts)]
            self.max_consts: Optional[List[int]] = base
        else:
            self.max_consts = None
        self.initial = self._intern(system.initial_symbolic())

    # ------------------------------------------------------------------
    # Node interning
    # ------------------------------------------------------------------

    def _intern(self, sym: SymbolicState) -> GraphNode:
        memo_key = (sym.key, sym.zone.hash_key())
        memoized = self._intern_memo.get(memo_key)
        if memoized is not None:
            return memoized
        if self.max_consts is not None:
            sym = SymbolicState(sym.locs, sym.vars, sym.zone.extrapolate(self.max_consts))
        zone = self._zone_intern.setdefault(sym.zone.minimal_key(), sym.zone)
        if zone is not sym.zone:
            sym = SymbolicState(sym.locs, sym.vars, zone)
        index = self._zone_index.get(sym.key)
        node: Optional[GraphNode] = None
        if index is not None:
            if sym.zone.is_empty():
                # Empty zones fold into any existing node of the key.
                for existing in self._by_key[sym.key]:
                    if existing.zone.includes(sym.zone):
                        node = existing
                        break
            else:
                hit = index.find_superset(sym.zone.m)
                if hit >= 0:
                    node = self._by_key[sym.key][hit]
        if node is not None:
            self._intern_memo[memo_key] = node
            return node
        node = GraphNode(next(self._counter), sym)
        self.nodes.append(node)
        self._by_key.setdefault(sym.key, []).append(node)
        if index is None:
            index = self._zone_index[sym.key] = _ZoneIndex(sym.zone.dim)
        index.add(None if sym.zone.is_empty() else sym.zone.m)
        self._intern_memo[memo_key] = node
        if self.max_nodes is not None and len(self.nodes) > self.max_nodes:
            raise ExplorationLimit(
                f"simulation graph exceeded {self.max_nodes} nodes"
            )
        return node

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    def moves_from(self, node: GraphNode) -> List[Move]:
        """Enabled moves at a node (closed, open, or partial semantics)."""
        sym = node.sym
        return self.system.moves_from(sym.locs, sym.vars, self.mode)

    def expand(self, node: GraphNode) -> List[GraphEdge]:
        """Compute (once) and return the outgoing edges of a node."""
        if self._expanded.get(node.id):
            return node.out_edges
        self._expanded[node.id] = True
        for move in self.moves_from(node):
            post = self.system.post(node.sym, move)
            if post is None:
                continue
            post = self.system.delay_closure(post)
            target = self._intern(post)
            edge = GraphEdge(node, move, target)
            node.out_edges.append(edge)
            target.in_edges.append(edge)
        return node.out_edges

    def explore_all(
        self, on_node: Optional[Callable[[GraphNode], None]] = None
    ) -> "SimulationGraph":
        """Breadth-first exhaustive exploration (respecting limits)."""
        deadline = None if self.time_limit is None else time.monotonic() + self.time_limit
        frontier = [self.initial]
        seen = {self.initial.id}
        while frontier:
            if deadline is not None and time.monotonic() > deadline:
                raise ExplorationLimit("simulation graph exploration timed out")
            next_frontier: List[GraphNode] = []
            for node in frontier:
                if on_node is not None:
                    on_node(node)
                for edge in self.expand(node):
                    if edge.target.id not in seen:
                        seen.add(edge.target.id)
                        next_frontier.append(edge.target)
            frontier = next_frontier
        return self

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return sum(len(n.out_edges) for n in self.nodes)
