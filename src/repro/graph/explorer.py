"""Forward exploration of the simulation graph (zone graph).

Nodes are symbolic states ``(discrete state, delay-closed zone)``; edges
carry the :class:`~repro.semantics.system.Move` that produced them, so the
game solver can replay them for both ``post`` and ``pred``.

Inclusion subsumption: a freshly computed symbolic state whose zone is
contained in an existing node's zone (same discrete state) is folded into
that node.  With ExtraM extrapolation (diagonal-free models) the graph is
finite; for models with diagonal guards extrapolation is disabled and
termination relies on bounded clocks (checked by the caller via
``max_nodes``).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..dbm import DBM
from ..semantics.state import DiscreteKey, SymbolicState
from ..semantics.system import Move, System


class ExplorationLimit(RuntimeError):
    """Raised when exploration exceeds its node or time budget."""


@dataclass
class GraphEdge:
    source: "GraphNode"
    move: Move
    target: "GraphNode"

    def __repr__(self) -> str:
        return f"GraphEdge({self.source.id} -{self.move.label}-> {self.target.id})"


@dataclass
class GraphNode:
    id: int
    sym: SymbolicState
    out_edges: List[GraphEdge] = field(default_factory=list)
    in_edges: List[GraphEdge] = field(default_factory=list)

    @property
    def key(self) -> DiscreteKey:
        return self.sym.key

    @property
    def zone(self) -> DBM:
        return self.sym.zone

    def __hash__(self) -> int:
        return self.id

    def __repr__(self) -> str:
        return f"GraphNode({self.id}, locs={self.sym.locs})"


class SimulationGraph:
    """The explored portion of a network's simulation graph."""

    def __init__(
        self,
        system: System,
        *,
        open_system: bool = False,
        extrapolate: bool = True,
        extra_max_consts: Optional[Sequence[int]] = None,
        max_nodes: Optional[int] = None,
        time_limit: Optional[float] = None,
    ):
        self.system = system
        self.open_system = open_system
        self.max_nodes = max_nodes
        self.time_limit = time_limit
        self.nodes: List[GraphNode] = []
        self._by_key: Dict[DiscreteKey, List[GraphNode]] = {}
        self._expanded: Dict[int, bool] = {}
        self._counter = itertools.count()
        network = system.network
        if extrapolate and not network.has_diagonal_constraints():
            base = network.max_constants()
            if extra_max_consts is not None:
                base = [max(a, b) for a, b in zip(base, extra_max_consts)]
            self.max_consts: Optional[List[int]] = base
        else:
            self.max_consts = None
        self.initial = self._intern(system.initial_symbolic())

    # ------------------------------------------------------------------
    # Node interning
    # ------------------------------------------------------------------

    def _intern(self, sym: SymbolicState) -> GraphNode:
        if self.max_consts is not None:
            sym = SymbolicState(sym.locs, sym.vars, sym.zone.extrapolate(self.max_consts))
        existing = self._by_key.get(sym.key, [])
        for node in existing:
            if node.zone.includes(sym.zone):
                return node
        node = GraphNode(next(self._counter), sym)
        self.nodes.append(node)
        self._by_key.setdefault(sym.key, []).append(node)
        if self.max_nodes is not None and len(self.nodes) > self.max_nodes:
            raise ExplorationLimit(
                f"simulation graph exceeded {self.max_nodes} nodes"
            )
        return node

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    def moves_from(self, node: GraphNode) -> List[Move]:
        """Enabled moves at a node (open or closed semantics)."""
        sym = node.sym
        if self.open_system:
            return self.system.open_moves_from(sym.locs, sym.vars)
        return self.system.moves_from(sym.locs, sym.vars)

    def expand(self, node: GraphNode) -> List[GraphEdge]:
        """Compute (once) and return the outgoing edges of a node."""
        if self._expanded.get(node.id):
            return node.out_edges
        self._expanded[node.id] = True
        for move in self.moves_from(node):
            post = self.system.post(node.sym, move)
            if post is None:
                continue
            post = self.system.delay_closure(post)
            target = self._intern(post)
            edge = GraphEdge(node, move, target)
            node.out_edges.append(edge)
            target.in_edges.append(edge)
        return node.out_edges

    def explore_all(
        self, on_node: Optional[Callable[[GraphNode], None]] = None
    ) -> "SimulationGraph":
        """Breadth-first exhaustive exploration (respecting limits)."""
        deadline = None if self.time_limit is None else time.monotonic() + self.time_limit
        frontier = [self.initial]
        seen = {self.initial.id}
        while frontier:
            if deadline is not None and time.monotonic() > deadline:
                raise ExplorationLimit("simulation graph exploration timed out")
            next_frontier: List[GraphNode] = []
            for node in frontier:
                if on_node is not None:
                    on_node(node)
                for edge in self.expand(node):
                    if edge.target.id not in seen:
                        seen.add(edge.target.id)
                        next_frontier.append(edge.target)
            frontier = next_frontier
        return self

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return sum(len(n.out_edges) for n in self.nodes)
