"""Plain (non-game) reachability and safety checking on the zone graph.

``E<> φ`` — is some state satisfying φ reachable?  ``A[] φ`` — do all
reachable states satisfy φ (checked as ``not E<> !φ``)?  These are used to
sanity-check models and test purposes (a ``control: A<> φ`` purpose can
only hold if φ is reachable at all) and by the test suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..dbm import Federation
from ..semantics.state import SymbolicState
from ..semantics.system import Move, System
from .explorer import ExplorationLimit, GraphNode, SimulationGraph

StateFederation = Callable[[SymbolicState], Federation]


@dataclass
class ReachabilityResult:
    holds: bool
    witness_node: Optional[GraphNode]
    nodes_explored: int
    trace: Optional[List[Tuple[Move, GraphNode]]] = None

    def __bool__(self) -> bool:
        return self.holds


def check_reachable(
    system: System,
    predicate: StateFederation,
    *,
    open_system: bool = False,
    max_nodes: Optional[int] = None,
    time_limit: Optional[float] = None,
    with_trace: bool = False,
) -> ReachabilityResult:
    """On-the-fly ``E<> φ``: stop at the first node intersecting φ."""
    graph = SimulationGraph(
        system,
        open_system=open_system,
        max_nodes=max_nodes,
        time_limit=time_limit,
    )
    deadline = None if time_limit is None else time.monotonic() + time_limit
    parent: dict = {graph.initial.id: None}
    frontier = [graph.initial]

    def build_trace(node: GraphNode) -> List[Tuple[Move, GraphNode]]:
        steps: List[Tuple[Move, GraphNode]] = []
        current = node
        while parent[current.id] is not None:
            edge = parent[current.id]
            steps.append((edge.move, current))
            current = edge.source
        steps.reverse()
        return steps

    while frontier:
        if deadline is not None and time.monotonic() > deadline:
            raise ExplorationLimit("reachability check timed out")
        next_frontier: List[GraphNode] = []
        for node in frontier:
            if not predicate(node.sym).is_empty():
                return ReachabilityResult(
                    True,
                    node,
                    graph.node_count,
                    build_trace(node) if with_trace else None,
                )
            for edge in graph.expand(node):
                if edge.target.id not in parent:
                    parent[edge.target.id] = edge
                    next_frontier.append(edge.target)
        frontier = next_frontier
    return ReachabilityResult(False, None, graph.node_count)


def find_deadlocks(
    system: System,
    *,
    open_system: bool = False,
    max_nodes: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> List[Tuple[GraphNode, "Federation"]]:
    """States where neither time nor any transition can progress.

    A deadlock point is a state at its invariant boundary (no positive
    delay possible) from which no move is enabled.  Such states make the
    paper's maximal-run semantics degenerate (runs just stop), so models
    are usually expected to be free of them; the LEP buffer's overflow
    edge exists precisely to avoid one.

    Returns ``(node, federation of deadlocked states)`` pairs.
    """
    from ..dbm import Federation, INF, decode

    graph = SimulationGraph(
        system, open_system=open_system, max_nodes=max_nodes, time_limit=time_limit
    )
    graph.explore_all()
    deadlocks: List[Tuple[GraphNode, Federation]] = []
    for node in graph.nodes:
        sym = node.sym
        # Boundary: where the invariant blocks further delay.
        if system.can_delay(sym.locs):
            inv = system.invariant_zone(sym.locs, sym.vars)
            boundary = Federation.empty(system.dim)
            for i in range(1, system.dim):
                enc = int(inv.m[i, 0])
                if enc >= INF:
                    continue
                value, strict = decode(enc)
                if strict:
                    continue
                face = sym.zone.constrained(
                    [(i, 0, (value << 1) | 1), (0, i, ((-value) << 1) | 1)]
                )
                if not face.is_empty():
                    boundary = boundary.union_zone(face)
        else:
            boundary = Federation.from_zone(sym.zone)
        if boundary.is_empty():
            continue
        # Remove states where some move is enabled (guard satisfied and
        # the successor admitted by the target's invariant).
        stuck = boundary
        for edge in node.out_edges:
            enabled = system.pred(
                sym, edge.move, Federation.from_zone(edge.target.zone)
            )
            stuck = stuck.subtract(enabled)
            if stuck.is_empty():
                break
        if not stuck.is_empty():
            deadlocks.append((node, stuck))
    return deadlocks


def check_invariant(
    system: System,
    predicate: StateFederation,
    *,
    open_system: bool = False,
    max_nodes: Optional[int] = None,
    time_limit: Optional[float] = None,
) -> ReachabilityResult:
    """``A[] φ`` via ``not E<> (zone \\ φ)``."""

    def violated(sym: SymbolicState) -> Federation:
        good = predicate(sym)
        return Federation.from_zone(sym.zone).subtract(good)

    result = check_reachable(
        system,
        violated,
        open_system=open_system,
        max_nodes=max_nodes,
        time_limit=time_limit,
    )
    return ReachabilityResult(
        not result.holds, result.witness_node, result.nodes_explored
    )
