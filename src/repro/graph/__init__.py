"""Zone-graph exploration and plain reachability checking."""

from .explorer import ExplorationLimit, GraphEdge, GraphNode, SimulationGraph
from .reachability import (
    ReachabilityResult,
    check_invariant,
    check_reachable,
    find_deadlocks,
)
