"""Seeded, deterministic fault injection — the chaos fabric.

Every layer that touches the outside world (the campaign pool, the test
server, the on-disk stores, the compiled kernel backends) carries named
*injection sites*: cheap probes that normally answer "no" and, under an
armed :class:`FaultPlan`, deterministically answer "yes" on scheduled
hits.  The code around each site supplies the fault behaviour (crash,
torn write, dropped connection, kernel error); the plan only decides
*when*.  That split keeps the fabric tiny and the schedule reproducible:
a plan is a pure function of its spec string, its seed, and the per-site
hit count inside one process.

Spec grammar (the ``REPRO_FAULTS`` environment variable)::

    spec    := clause (';' clause)*
    clause  := 'seed=' INT                 -- plan seed (for p= triggers)
             | site ':' trigger
    trigger := '*'                         -- every hit
             | INT (',' INT)*              -- these 1-based hits only
             | 'every=' INT                -- every Nth hit
             | 'p=' FLOAT                  -- seeded Bernoulli per hit

e.g. ``REPRO_FAULTS="par.worker.crash:2;dbm.cext.compute:every=7"``.

Site names are dotted and hierarchical; a clause arms every site it
names exactly *or* prefixes on a dot boundary (``corpus.store`` arms
``corpus.store.write``).  Each trigger bumps a
``faults.fired.<site>`` counter in :mod:`repro.util.counters`, so every
campaign report and server stat shows exactly which faults fired.

Probes at sites with retry semantics (the pool requeues a task after a
worker death) pass ``retry=True`` on re-attempts: scheduled triggers —
hit lists, ``every=``, ``p=`` — model transient faults and never fire
on a retry, so bounded retries absorb them *by construction*; ``*``
models a hard fault (a poison task) and fires on every attempt.

Disarmed cost is one module-global load and an ``is None`` test —
measured by ``benchmarks/test_bench_dbm_ops.py`` as a control.

Probabilistic triggers hash ``(seed, site, hit)`` rather than drawing
from shared RNG state, so two sites never perturb each other's schedule
and the decision for hit *n* of a site is the same in any process with
the same plan.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .util import counters

ENV_VAR = "REPRO_FAULTS"

#: How long the ``par.worker.hang`` site sleeps when it fires (seconds).
#: Tests shrink it via the REPRO_FAULTS_HANG environment variable so the
#: pool's task-timeout recovery can be exercised in milliseconds.
HANG_ENV = "REPRO_FAULTS_HANG"
HANG_SECONDS = 30.0


class InjectedFault(RuntimeError):
    """Raised by :func:`fire` when an armed site triggers."""

    def __init__(self, site: str):
        super().__init__(f"injected fault at {site}")
        self.site = site


class _Rule:
    """One parsed ``site:trigger`` clause."""

    __slots__ = ("pattern", "kind", "hits", "every", "prob")

    def __init__(self, pattern: str, kind: str, hits=(), every=0, prob=0.0):
        self.pattern = pattern
        self.kind = kind
        self.hits = frozenset(hits)
        self.every = every
        self.prob = prob

    def decide(self, hit: int, site: str, seed: int) -> bool:
        if self.kind == "always":
            return True
        if self.kind == "hits":
            return hit in self.hits
        if self.kind == "every":
            return hit % self.every == 0
        # "prob": hash (seed, site, hit) so sites never perturb each
        # other's schedule and any process replays the same decisions.
        digest = hashlib.sha256(f"{seed}:{site}:{hit}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < self.prob

    def describe(self) -> str:
        if self.kind == "always":
            return "*"
        if self.kind == "hits":
            return ",".join(str(h) for h in sorted(self.hits))
        if self.kind == "every":
            return f"every={self.every}"
        return f"p={self.prob}"


def _parse_trigger(pattern: str, text: str) -> _Rule:
    text = text.strip()
    if not text:
        raise ValueError(f"empty trigger for fault site {pattern!r}")
    if text == "*":
        return _Rule(pattern, "always")
    if text.startswith("every="):
        every = int(text[len("every="):])
        if every < 1:
            raise ValueError(f"every= must be >= 1 in {text!r}")
        return _Rule(pattern, "every", every=every)
    if text.startswith("p="):
        prob = float(text[len("p="):])
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"p= must be in [0, 1] in {text!r}")
        return _Rule(pattern, "prob", prob=prob)
    hits = [int(part) for part in text.split(",")]
    if any(h < 1 for h in hits):
        raise ValueError(f"hit indices are 1-based, got {text!r}")
    return _Rule(pattern, "hits", hits=hits)


class FaultPlan:
    """A deterministic schedule of fault triggers, keyed by site name.

    Mutable only in its per-site hit counters; the trigger decision for
    hit *n* of a site depends on nothing else, so two plans parsed from
    the same spec fire identically over identical site sequences.
    """

    def __init__(self, rules: List[_Rule], seed: int = 0, spec: str = ""):
        self.rules = rules
        self.seed = seed
        self.spec = spec
        self._hits: Dict[str, int] = {}
        self._match_cache: Dict[str, Optional[_Rule]] = {}

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        rules: List[_Rule] = []
        seed = 0
        for raw in spec.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[len("seed="):])
                continue
            if ":" not in clause:
                raise ValueError(
                    f"bad fault clause {clause!r} (expected site:trigger)"
                )
            pattern, trigger = clause.split(":", 1)
            pattern = pattern.strip()
            if not pattern:
                raise ValueError(f"empty site name in clause {clause!r}")
            rules.append(_parse_trigger(pattern, trigger))
        if not rules:
            raise ValueError(f"fault spec {spec!r} arms no sites")
        return cls(rules, seed=seed, spec=spec)

    def _match(self, site: str) -> Optional[_Rule]:
        try:
            return self._match_cache[site]
        except KeyError:
            pass
        found: Optional[_Rule] = None
        for rule in self.rules:
            if site == rule.pattern or site.startswith(rule.pattern + "."):
                found = rule
                break
        self._match_cache[site] = found
        return found

    def should_fire(self, site: str, *, retry: bool = False) -> bool:
        """Count a hit on ``site``; True when the schedule triggers.

        ``retry=True`` marks the probe as a re-attempt of work that
        already absorbed a fault (e.g. a requeued pool task).  Scheduled
        triggers (hit lists, ``every=``, ``p=``) model *transient*
        faults, so they never fire on a retry — and skip the hit
        counter, leaving the schedule where the fresh-work stream left
        it.  ``*`` models a *hard* fault (a poison task, saturation
        chaos) and fires regardless.  This split is what turns "retries
        absorb the schedule, the report is byte-identical" from a
        probability into a guarantee.
        """
        rule = self._match(site)
        if rule is None:
            return False
        if retry and rule.kind != "always":
            return False
        hit = self._hits[site] = self._hits.get(site, 0) + 1
        if not rule.decide(hit, site, self.seed):
            return False
        counters.inc("faults.fired")
        counters.inc(f"faults.fired.{site}")
        return True

    def hits(self, site: str) -> int:
        """How many times ``site`` has been evaluated under this plan."""
        return self._hits.get(site, 0)

    def describe(self) -> str:
        clauses = [f"{r.pattern}:{r.describe()}" for r in self.rules]
        if self.seed:
            clauses.insert(0, f"seed={self.seed}")
        return ";".join(clauses)


# ----------------------------------------------------------------------
# Process-global arming
# ----------------------------------------------------------------------
#
# The active plan is process-local state, initialised lazily from
# REPRO_FAULTS so spawned/forked pool workers arm themselves without
# any explicit hand-off.  ``install``/``injected`` override it (and
# restore on exit), which is what the always-on ``faults`` differential
# check relies on to run its own local schedules even when an ambient
# chaos plan is armed via the environment.

_PLAN: Optional[FaultPlan] = None
_INITIALIZED = False


def _ensure() -> Optional[FaultPlan]:
    global _PLAN, _INITIALIZED
    if not _INITIALIZED:
        spec = os.environ.get(ENV_VAR, "").strip()
        _PLAN = FaultPlan.parse(spec) if spec else None
        _INITIALIZED = True
    return _PLAN


def active() -> Optional[FaultPlan]:
    """The armed plan, if any (lazily read from ``REPRO_FAULTS``)."""
    return _PLAN if _INITIALIZED else _ensure()


def armed() -> bool:
    """True when a fault plan is armed in this process."""
    return active() is not None


def install(plan: Union[FaultPlan, str, None]) -> Optional[FaultPlan]:
    """Arm ``plan`` (a :class:`FaultPlan`, a spec string, or None to
    disarm) in this process; returns the installed plan."""
    global _PLAN, _INITIALIZED
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _PLAN = plan
    _INITIALIZED = True
    return plan


def should_fire(site: str, *, retry: bool = False) -> bool:
    """The injection probe: True when an armed plan triggers ``site``.

    The disarmed path is a global load and an ``is None`` test — cheap
    enough for per-frame and per-kernel-call sites.  ``retry=True``
    marks a re-attempt: scheduled triggers stay quiet, only ``*`` fires
    (see :meth:`FaultPlan.should_fire`).
    """
    plan = _PLAN if _INITIALIZED else _ensure()
    if plan is None:
        return False
    return plan.should_fire(site, retry=retry)


def fire(site: str, *, retry: bool = False) -> None:
    """Raise :class:`InjectedFault` when ``site`` triggers."""
    if should_fire(site, retry=retry):
        raise InjectedFault(site)


@contextmanager
def injected(
    spec: Union[FaultPlan, str, None], *, env: bool = False
) -> Iterator[Optional[FaultPlan]]:
    """Arm a plan for the dynamic extent of the block, then restore.

    With ``env=True`` the spec is also exported as ``REPRO_FAULTS`` so
    worker processes spawned inside the block arm themselves; the
    previous value is restored on exit.
    """
    global _PLAN, _INITIALIZED
    prev_plan, prev_init = _PLAN, _INITIALIZED
    plan = install(spec)
    prev_env: Tuple[bool, Optional[str]] = (False, None)
    if env:
        prev_env = (True, os.environ.get(ENV_VAR))
        os.environ[ENV_VAR] = plan.describe() if plan else ""
    try:
        yield plan
    finally:
        _PLAN, _INITIALIZED = prev_plan, prev_init
        if prev_env[0]:
            if prev_env[1] is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = prev_env[1]


def hang_seconds() -> float:
    """Sleep length for hang-style sites (test-shrinkable via env)."""
    try:
        return float(os.environ.get(HANG_ENV, HANG_SECONDS))
    except ValueError:
        return HANG_SECONDS
