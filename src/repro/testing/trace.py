"""Timed traces and test verdicts.

An observable timed trace (paper §2.2) is an alternating sequence of
delays and actions ``d1 a1 d2 a2 ... dk``.  We keep exact rational delays
and tag each action with its direction as seen at the plant interface
(``input`` = tester → plant, ``output`` = plant → tester).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Union


PASS = "pass"
FAIL = "fail"
INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class ActionStep:
    label: str
    direction: str  # 'input' | 'output'

    def __str__(self) -> str:
        mark = "?" if self.direction == "input" else "!"
        return f"{self.label}{mark}"


@dataclass(frozen=True)
class DelayStep:
    delay: Fraction

    def __str__(self) -> str:
        return str(self.delay)


Step = Union[ActionStep, DelayStep]


@dataclass
class TimedTrace:
    """A mutable timed trace being built up by the test executor."""

    steps: List[Step] = field(default_factory=list)

    def add_delay(self, delay: Fraction) -> None:
        if delay < 0:
            raise ValueError("negative delay")
        if delay == 0:
            return
        if self.steps and isinstance(self.steps[-1], DelayStep):
            last = self.steps.pop()
            self.steps.append(DelayStep(last.delay + delay))
        else:
            self.steps.append(DelayStep(delay))

    def add_action(self, label: str, direction: str) -> None:
        self.steps.append(ActionStep(label, direction))

    @property
    def total_time(self) -> Fraction:
        return sum(
            (s.delay for s in self.steps if isinstance(s, DelayStep)),
            Fraction(0),
        )

    @property
    def actions(self) -> List[ActionStep]:
        return [s for s in self.steps if isinstance(s, ActionStep)]

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        return " . ".join(str(s) for s in self.steps) if self.steps else "<empty>"


@dataclass
class TestRun:
    """The outcome of one execution of Algorithm 3.1."""

    verdict: str
    trace: TimedTrace
    reason: str = ""
    iterations: int = 0

    @property
    def passed(self) -> bool:
        return self.verdict == PASS

    @property
    def failed(self) -> bool:
        return self.verdict == FAIL

    def __str__(self) -> str:
        out = f"{self.verdict.upper()}: {self.trace}"
        if self.reason:
            out += f" ({self.reason})"
        return out
