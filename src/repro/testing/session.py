"""The transport-agnostic test session: Algorithm 3.1 as a state machine.

Historically the tester side of a conformance test — strategy decisions,
spec monitoring, trace building, verdicts — lived inside
:class:`~repro.testing.executor.TestExecutor`, welded to a synchronous
in-process :class:`~repro.testing.implementation.SimulatedImplementation`.
:class:`TestSession` extracts that core as a *sans-IO* state machine: it
never talks to an implementation itself, it emits :class:`SessionAction`
values describing the one IO step it needs next, and the driver feeds the
outcome back:

* :class:`SendInput` — deliver ``label`` (with value-passing ``updates``)
  to the implementation, then call :meth:`TestSession.on_input_result`;
* :class:`Wait` — let time pass, up to ``deadline`` time units, then
  call :meth:`TestSession.on_output` (an output arrived at ``delay <=
  deadline``) or :meth:`TestSession.on_elapsed` (``delay`` passed
  quietly — partial elapses re-enter the strategy, which is how the
  in-process driver reports an implementation-internal step and how a
  real-time driver reports a timer tick);
* :class:`Finish` — terminal; :attr:`TestSession.run` holds the
  :class:`~repro.testing.trace.TestRun`.

Two thin drivers share this core: the synchronous in-process
:class:`~repro.testing.executor.TestExecutor` and the asyncio network
server (:mod:`repro.server`), which multiplexes many sessions over
JSON-framed sockets.  Verdict parity between them is by construction —
both replay the same event stream into the same machine.

:class:`SessionConfig` is the single bag for the testing layer's knobs
(iteration/state budgets, monitor flavour, output-policy sweeps) that
used to be scattered as per-call keyword arguments across
``TestExecutor`` / ``execute_test`` / ``TestCampaign`` /
``MutationCampaign``; :func:`resolve_session_config` folds the legacy
kwargs in (with a :class:`DeprecationWarning`) for one release.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Optional, Tuple

from ..game.strategy import Verdictish
from ..semantics.compose import EstimateLimit
from ..semantics.state import ConcreteState
from ..semantics.system import Move, System
from .trace import FAIL, INCONCLUSIVE, PASS, TestRun, TimedTrace

__all__ = [
    "Finish",
    "SendInput",
    "SessionConfig",
    "SessionProtocolError",
    "TestSession",
    "Wait",
    "resolve_session_config",
]


class SessionProtocolError(RuntimeError):
    """The driver fed the session an event it was not waiting for."""


@dataclass(frozen=True)
class SessionConfig:
    """Every knob of a test session, in one picklable value.

    ``policies`` and ``repetitions`` only matter to drivers that *build*
    simulated implementations (campaigns, the server's parity harness);
    the session itself is policy-agnostic.  ``None`` policies means
    "driver's default sweep".
    """

    #: Strategy-decision budget; exhausting it is INCONCLUSIVE.
    max_iterations: int = 10_000
    #: Symbolic state-set budget of the spec monitor (estimated monitors
    #: only); exceeding it yields INCONCLUSIVE, never a crash.
    max_states: int = 256
    #: Monitor flavour: plain tioco over the plant spec (default) or the
    #: environment-relativized monitor over the composed arena.
    relativized: bool = False
    #: Output-policy sweep for simulated implementations, by name
    #: (``eager``/``lazy``/``quiescent``/``random:SEED``).
    policies: Optional[Tuple[str, ...]] = None
    #: Runs per (purpose, policy) combination in campaigns.
    repetitions: int = 1
    #: Wall-clock guard (seconds) a network driver applies per wait in
    #: virtual-clock mode; None = wait for the peer indefinitely.
    observe_timeout: Optional[float] = None

    def replace(self, **overrides) -> "SessionConfig":
        return replace(self, **overrides)


def resolve_session_config(
    config: Optional[SessionConfig] = None,
    *,
    _warn: bool = True,
    **legacy,
) -> SessionConfig:
    """Merge deprecated per-call kwargs into a :class:`SessionConfig`.

    ``legacy`` holds the old keyword surface (``max_iterations``,
    ``max_states``, ``policies``, ``repetitions``) with ``None`` meaning
    "not passed".  Passing any of them emits a :class:`DeprecationWarning`
    pointing at the ``config=SessionConfig(...)`` replacement; explicit
    legacy values override the config's fields so old call sites keep
    their exact behaviour for the shim release.
    """
    resolved = config or SessionConfig()
    overrides = {
        name: value for name, value in legacy.items() if value is not None
    }
    if overrides:
        if _warn:
            warnings.warn(
                f"passing {sorted(overrides)} as keyword arguments is"
                " deprecated; pass config=SessionConfig(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        if "policies" in overrides:
            overrides["policies"] = tuple(overrides["policies"])
        resolved = resolved.replace(**overrides)
    return resolved


# ----------------------------------------------------------------------
# Actions: what the session needs its driver to do next
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SendInput:
    """Deliver ``label`` to the IUT; answer with ``on_input_result``."""

    label: str
    #: Value-passing payload: ``(name, index_or_None, value)`` triples.
    updates: Tuple[tuple, ...] = ()


@dataclass(frozen=True)
class Wait:
    """Let up to ``deadline`` time units pass; answer with
    ``on_output(delay, label)`` or ``on_elapsed(delay)``, ``delay <=
    deadline``."""

    deadline: Fraction


@dataclass(frozen=True)
class Finish:
    """Terminal action: the verdict is in."""

    run: TestRun


SessionAction = object  # Union[SendInput, Wait, Finish]


class TestExecutionError(RuntimeError):
    """Internal inconsistency during test execution (not a verdict)."""


@dataclass
class TestSession:
    """One tioco test session over the paper's Algorithm 3.1.

    The strategy is defined over the *composed* specification (plant ∥
    environment); only moves that involve a plant automaton cross the
    test interface.  Environment-internal controllable moves merely
    update the tester's own composed state.  Value-passing inputs carry
    the emitting environment edge's shared-variable updates to the
    implementation and the monitor.

    Composed (multi-automaton) plants are driven through the partial
    semantics: the spec monitor auto-selects symbolic state-set tracking
    when the plant internalises synchronizations.  The strategy's *own*
    state tracking stays exact over the closed arena; when the arena
    hides timed syncs from the tester, a lost strategy maps to
    INCONCLUSIVE — never an unsound verdict, since PASS needs the goal
    and FAIL needs a (sound) monitor violation.
    """

    strategy: object  # Strategy | CooperativeStrategy
    spec_plant: System
    config: SessionConfig = field(default_factory=SessionConfig)

    def __post_init__(self) -> None:
        self.trace = TimedTrace()
        self.run: Optional[TestRun] = None
        self._monitor = None
        self._tester: Optional[ConcreteState] = None
        self._iteration = 0
        self._awaiting: Optional[SessionAction] = None
        self._pending_move: Optional[Move] = None
        self._started = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.run is not None

    @property
    def iterations(self) -> int:
        return self._iteration

    @property
    def tracked_states(self) -> int:
        """States the spec monitor currently tracks (budget accounting)."""
        if self._monitor is None:
            return 0
        return self._monitor.state_count

    @property
    def _plant_names(self):
        return {a.name for a in self.spec_plant.automata}

    # ------------------------------------------------------------------
    # Driver API
    # ------------------------------------------------------------------

    def start(self) -> SessionAction:
        """Build the monitor and return the first action."""
        if self._started:
            raise SessionProtocolError("session already started")
        self._started = True
        composed = self.strategy.system
        self._tester = self._settle_tau(composed, composed.initial_concrete())
        try:
            # Monitor construction may already run a hidden-move closure.
            self._monitor = self._build_monitor()
        except EstimateLimit as limit:
            return self._finish(
                TestRun(
                    INCONCLUSIVE,
                    self.trace,
                    f"state-estimate budget: {limit}",
                    0,
                )
            )
        return self._decide_loop()

    def on_input_result(self, accepted: bool) -> SessionAction:
        """The driver delivered the pending input; did the IUT take it?"""
        self._expect(SendInput)
        move = self._pending_move
        action: SendInput = self._awaiting
        self._awaiting = self._pending_move = None
        self.trace.add_action(action.label, "input")
        if not accepted:
            return self._finish(
                TestRun(
                    FAIL,
                    self.trace,
                    f"implementation refused input {action.label}?"
                    f" (violates input-enabledness)",
                )
            )
        try:
            observed = self._observe_input(
                action.label, move, list(action.updates)
            )
        except EstimateLimit as limit:
            return self._estimate_overflow(limit)
        if not observed:
            # The spec refusing its own strategy's input is a tracking
            # contradiction, not an IUT violation (the IUT accepted it).
            return self._tracking_fail(
                self._monitor.violation or "spec refused input"
            )
        composed = self.strategy.system
        nxt = composed.fire(self._tester, move)
        if nxt is None:
            raise TestExecutionError(
                f"strategy fired disabled move {action.label} at {self._tester}"
            )
        self._tester = self._settle_tau(composed, nxt)
        return self._decide_loop()

    def on_output(self, delay: Fraction, label: str) -> SessionAction:
        """An output ``label`` arrived ``delay`` time units into the wait."""
        wait = self._expect(Wait)
        self._check_delay(delay, wait.deadline)
        self._awaiting = None
        self.trace.add_delay(delay)
        try:
            if not self._monitor.advance(delay):
                return self._finish(
                    TestRun(
                        FAIL, self.trace, self._monitor.violation or "quiescence"
                    )
                )
            composed = self.strategy.system
            new_tester = self._delay_tester(composed, self._tester, delay)
            self.trace.add_action(label, "output")
            if not self._observe_output(label):
                return self._finish(
                    TestRun(
                        FAIL, self.trace, self._monitor.violation or "bad output"
                    )
                )
        except EstimateLimit as limit:
            return self._estimate_overflow(limit)
        if new_tester is None:
            return self._tracking_fail("tester time left the spec invariant")
        next_tester = self._tester_output(composed, new_tester, label)
        if next_tester is None:
            return self._tracking_fail(
                f"output {label}! not accepted by composed spec state"
            )
        self._tester = next_tester
        return self._decide_loop()

    def on_elapsed(self, delay: Fraction) -> SessionAction:
        """``delay`` time units passed without an observable action.

        Partial elapses (``delay < deadline``) are legal and re-enter the
        strategy: the in-process driver uses them for implementation-
        internal steps, network drivers for timer ticks.
        """
        wait = self._expect(Wait)
        self._check_delay(delay, wait.deadline)
        self._awaiting = None
        self.trace.add_delay(delay)
        try:
            if not self._monitor.advance(delay):
                return self._finish(
                    TestRun(
                        FAIL,
                        self.trace,
                        self._monitor.violation or "quiescence violation",
                    )
                )
        except EstimateLimit as limit:
            return self._estimate_overflow(limit)
        new_tester = self._delay_tester(
            self.strategy.system, self._tester, delay
        )
        if new_tester is None:
            return self._tracking_fail("tester time left the spec invariant")
        self._tester = new_tester
        return self._decide_loop()

    # ------------------------------------------------------------------
    # The decision loop (between IO points)
    # ------------------------------------------------------------------

    def _decide_loop(self) -> SessionAction:
        strategy = self.strategy
        composed = strategy.system
        while self._iteration < self.config.max_iterations:
            self._iteration += 1
            decision = strategy.decide(self._tester)
            if decision.kind == Verdictish.DONE:
                return self._finish(
                    TestRun(
                        PASS, self.trace, "goal state reached", self._iteration
                    )
                )
            if decision.kind == Verdictish.LOST:
                return self._finish(
                    TestRun(
                        INCONCLUSIVE,
                        self.trace,
                        "tester state left the winning region (internal"
                        " error)",
                        self._iteration,
                    )
                )
            if decision.kind == Verdictish.FIRE:
                move = decision.move
                if not self._involves_plant(move):
                    # Environment-internal controllable move: invisible at
                    # the plant interface; only the tester state changes.
                    nxt = composed.fire(self._tester, move)
                    if nxt is None:
                        raise TestExecutionError(
                            f"strategy fired disabled env move {move.label}"
                            f" at {self._tester}"
                        )
                    self._tester = self._settle_tau(composed, nxt)
                    continue
                self._pending_move = move
                self._awaiting = SendInput(
                    move.label,
                    tuple(self._plant_var_updates(self._tester, move)),
                )
                return self._awaiting
            # WAIT: decision.delay is the strategy's next scheduled action
            # time; None means "wait for the plant" (forced-output region).
            try:
                quiescence = self._monitor.max_quiescence()
            except EstimateLimit as limit:
                return self._estimate_overflow(limit)
            if decision.delay is not None:
                wait_for = decision.delay
            elif quiescence.bound is not None:
                wait_for = quiescence.bound + Fraction(1, 2)
            else:
                return self._finish(
                    TestRun(
                        INCONCLUSIVE,
                        self.trace,
                        "strategy waits forever and spec never forces an"
                        " output",
                    )
                )
            self._awaiting = Wait(wait_for)
            return self._awaiting
        return self._finish(
            TestRun(
                INCONCLUSIVE,
                self.trace,
                "iteration budget exhausted",
                self.config.max_iterations,
            )
        )

    # ------------------------------------------------------------------
    # Monitor plumbing
    # ------------------------------------------------------------------

    def _build_monitor(self):
        from .rtioco import RelativizedMonitor
        from .tioco import TiocoMonitor

        if self.config.relativized:
            return RelativizedMonitor(
                self.strategy.system, max_states=self.config.max_states
            )
        return TiocoMonitor(
            self.spec_plant, max_states=self.config.max_states
        )

    def _observe_input(self, label, move, updates) -> bool:
        if self.config.relativized:
            # The relativized monitor tracks the composed arena, so the
            # tester's own move is the most precise report (value-passing
            # variants sharing a label stay distinguished).
            return self._monitor.observe_move(move)
        return self._monitor.observe(label, "input", updates)

    def _observe_output(self, label) -> bool:
        if self.config.relativized:
            return self._monitor.observe_output(label)
        return self._monitor.observe(label, "output")

    # ------------------------------------------------------------------
    # Helpers (verbatim executor semantics)
    # ------------------------------------------------------------------

    def _expect(self, kind):
        if self.finished:
            raise SessionProtocolError("session already finished")
        if not isinstance(self._awaiting, kind):
            raise SessionProtocolError(
                f"session awaits {type(self._awaiting).__name__}, got a"
                f" {kind.__name__} event"
            )
        return self._awaiting

    @staticmethod
    def _check_delay(delay: Fraction, deadline: Fraction) -> None:
        if delay < 0:
            raise SessionProtocolError(f"negative delay {delay}")
        if delay > deadline:
            raise SessionProtocolError(
                f"delay {delay} exceeds the granted deadline {deadline}"
            )

    def _finish(self, run: TestRun) -> Finish:
        self.run = run
        self._awaiting = None
        return Finish(run)

    def _estimate_overflow(self, limit: EstimateLimit) -> Finish:
        # The composed spec's hidden-move closure blew its budget:
        # no verdict either way, never a crash.
        return self._finish(
            TestRun(
                INCONCLUSIVE, self.trace, f"state-estimate budget: {limit}", 0
            )
        )

    def _tracking_fail(self, reason: str) -> Finish:
        """A failure of the *tester's own* composed-state tracking.

        With a fully observable plant this is a genuine FAIL (the monitor
        checks passed, so the contradiction lies with the implementation).
        When the plant *runs under the partial semantics* (interface
        declared) and hides syncs, the tester's exact arena state may
        simply be stale — hidden moves fired at times it cannot know — so
        the only sound verdict is INCONCLUSIVE: FAIL must come from the
        (set-tracking, hence sound) conformance monitor alone.
        """
        if (
            self.spec_plant.network.interface_declared
            and self.spec_plant.partial_hides_syncs()
        ):
            return self._finish(
                TestRun(
                    INCONCLUSIVE,
                    self.trace,
                    f"tester lost track of the hidden-sync plant ({reason})",
                )
            )
        return self._finish(TestRun(FAIL, self.trace, reason))

    def _involves_plant(self, move: Move) -> bool:
        composed = self.strategy.system
        plant_names = self._plant_names
        return any(
            composed.automata[a_idx].name in plant_names
            for a_idx, _ in move.edges
        )

    def _plant_var_updates(self, tester: ConcreteState, move: Move):
        """Shared-variable effects of the move's environment-side edges.

        Returns ``[(name, index_or_None, value)]`` restricted to variables
        that exist (by name) in the plant specification.
        """
        from ..expr.eval import apply_assignments

        composed = self.strategy.system
        state = tester.vars
        plant_names = self._plant_names
        for a_idx, edge in move.edges:
            if composed.automata[a_idx].name in plant_names:
                continue
            if edge.int_assigns:
                state = apply_assignments(edge.int_assigns, composed.ctx(state))
        updates = []
        plant_decls = self.spec_plant.decls
        for name, var in composed.decls.int_vars.items():
            if name not in plant_decls.int_vars:
                continue
            if state[var.slot] != tester.vars[var.slot]:
                updates.append((name, None, state[var.slot]))
        for name, arr in composed.decls.arrays.items():
            if name not in plant_decls.arrays:
                continue
            for k in range(arr.size):
                if state[arr.offset + k] != tester.vars[arr.offset + k]:
                    updates.append((name, k, state[arr.offset + k]))
        return updates

    @staticmethod
    def _settle_tau(composed: System, state: ConcreteState) -> ConcreteState:
        """Resolve committed internal processing in the composed spec."""
        for _ in range(64):
            if composed.can_delay(state.locs):
                return state
            fired = False
            for move in composed.moves_from(state.locs, state.vars):
                if move.direction != "internal":
                    continue
                interval = composed.enabled_interval(state, move)
                if interval is None or not interval.contains(Fraction(0)):
                    continue
                nxt = composed.fire(state, move)
                if nxt is not None:
                    state = nxt
                    fired = True
                    break
            if not fired:
                return state
        raise TestExecutionError("internal-move settling did not converge")

    @classmethod
    def _delay_tester(
        cls, composed: System, tester: ConcreteState, d: Fraction
    ) -> Optional[ConcreteState]:
        if not composed.delay_ok(tester, d):
            return None
        return tester.delayed(d)

    @classmethod
    def _tester_output(
        cls, composed: System, tester: ConcreteState, label: str
    ) -> Optional[ConcreteState]:
        for move in composed.moves_from(tester.locs, tester.vars):
            if move.label != label or move.direction != "output":
                continue
            nxt = composed.fire(tester, move)
            if nxt is not None:
                return cls._settle_tau(composed, nxt)
        return None
