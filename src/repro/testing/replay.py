"""Offline conformance checking: replay recorded timed traces.

Test execution (Algorithm 3.1) checks tioco *online*; this module applies
the same check to a previously recorded :class:`TimedTrace` — useful for
log-based conformance analysis, regression triage of failing runs, and
for validating externally produced traces against a specification.

``replay_trace`` returns a :class:`ReplayResult` marking the first
violating step (if any); a trace "passes" replay when every delay and
action is admitted by ``s0 After σ`` as the trace is consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..semantics.system import System
from .tioco import TiocoMonitor
from .trace import ActionStep, DelayStep, TimedTrace


@dataclass
class ReplayResult:
    conformant: bool
    steps_consumed: int
    violation: Optional[str] = None
    violating_step: Optional[str] = None

    def __bool__(self) -> bool:
        return self.conformant

    def __str__(self) -> str:
        if self.conformant:
            return f"conformant ({self.steps_consumed} steps)"
        return (
            f"violation at step {self.steps_consumed}"
            f" ({self.violating_step}): {self.violation}"
        )


def replay_trace(spec: System, trace: TimedTrace) -> ReplayResult:
    """Check a recorded trace against an (open) plant specification.

    Inputs in the trace are offered to the spec (refusal = the spec is
    not input-enabled there, reported as a violation of the *trace*,
    since a §2.2-valid spec accepts every input); outputs and delays are
    checked exactly as the online monitor does.
    """
    monitor = TiocoMonitor(spec)
    for index, step in enumerate(trace.steps):
        if isinstance(step, DelayStep):
            ok = monitor.advance(step.delay)
        elif isinstance(step, ActionStep):
            ok = monitor.observe(step.label, step.direction)
        else:  # pragma: no cover - defensive
            return ReplayResult(False, index, f"unknown step {step!r}", str(step))
        if not ok:
            return ReplayResult(False, index, monitor.violation, str(step))
    return ReplayResult(True, len(trace.steps))


def parse_trace(text: str) -> TimedTrace:
    """Parse the textual trace format produced by ``str(TimedTrace)``.

    Steps are separated by ``.``; a step is either a rational delay
    (``3`` or ``5/2``) or an action ``label?`` (input) / ``label!``
    (output).
    """
    trace = TimedTrace()
    text = text.strip()
    if not text or text == "<empty>":
        return trace
    for raw in text.split("."):
        token = raw.strip()
        if not token:
            continue
        if token.endswith("?"):
            trace.add_action(token[:-1], "input")
        elif token.endswith("!"):
            trace.add_action(token[:-1], "output")
        else:
            trace.add_delay(Fraction(token))
    return trace
