"""In-process test execution — the synchronous driver over TestSession.

The tester logic of the paper's Algorithm 3.1 (strategy decisions, spec
monitoring, verdicts) lives in the transport-agnostic
:class:`~repro.testing.session.TestSession`; this module binds it to a
:class:`~repro.testing.implementation.SimulatedImplementation` with a
plain synchronous loop:

* :class:`~repro.testing.session.SendInput` → ``imp.give_input``;
* :class:`~repro.testing.session.Wait` → consult ``imp.next_output``:
  an output due within the deadline becomes ``on_output``, an internal
  step or a quiet deadline becomes ``on_elapsed``;
* :class:`~repro.testing.session.Finish` → the :class:`TestRun`.

The asyncio network server (:mod:`repro.server`) is the other driver
over the same session core — verdicts agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..game.strategy import Strategy
from ..semantics.system import System
from .implementation import SimulatedImplementation
from .session import (
    Finish,
    SendInput,
    SessionConfig,
    TestExecutionError,
    TestSession,
    Wait,
    resolve_session_config,
)
from .trace import TestRun

__all__ = ["TestExecutionError", "TestExecutor", "execute_test"]


@dataclass
class TestExecutor:
    """Binds together strategy, spec monitor, and implementation.

    A thin synchronous driver over :class:`TestSession`; see the session
    module for the semantics.  ``max_iterations`` / ``max_states`` are
    the legacy knob surface — prefer ``config=SessionConfig(...)``,
    which wins when provided.
    """

    strategy: Strategy
    spec_plant: System
    implementation: SimulatedImplementation
    max_iterations: int = 10_000
    #: Symbolic state-set budget of the spec monitor (estimated monitors
    #: only); exceeding it yields INCONCLUSIVE, never a crash.  Deep
    #: campaigns raise it instead of eating budget-skips.
    max_states: int = 256
    config: Optional[SessionConfig] = None

    def session(self) -> TestSession:
        """A fresh session over this executor's strategy and spec."""
        config = self.config
        if config is None:
            config = SessionConfig(
                max_iterations=self.max_iterations,
                max_states=self.max_states,
            )
        return TestSession(self.strategy, self.spec_plant, config)

    def run(self) -> TestRun:
        session = self.session()
        imp = self.implementation
        imp.reset()
        action = session.start()
        while not isinstance(action, Finish):
            if isinstance(action, SendInput):
                accepted = imp.give_input(action.label, list(action.updates))
                action = session.on_input_result(accepted)
                continue
            assert isinstance(action, Wait)
            pending = imp.next_output()
            if pending is not None and pending.delay <= action.deadline:
                # The implementation acts first (or simultaneously).
                d = pending.delay
                label = imp.advance(d)
                if label is None:
                    # Internal move of the implementation: nothing
                    # observed, but the elapsed time re-enters the
                    # strategy.
                    action = session.on_elapsed(d)
                else:
                    action = session.on_output(d, label)
                continue
            # Quiet until the tester's own schedule.
            imp.advance(action.deadline)
            action = session.on_elapsed(action.deadline)
        return action.run


def execute_test(
    strategy: Strategy,
    spec_plant: System,
    implementation: SimulatedImplementation,
    *,
    config: Optional[SessionConfig] = None,
    max_iterations: Optional[int] = None,
    max_states: Optional[int] = None,
) -> TestRun:
    """One-shot convenience wrapper around :class:`TestExecutor`.

    ``max_iterations`` / ``max_states`` are deprecated — pass
    ``config=SessionConfig(...)``.
    """
    resolved = resolve_session_config(
        config, max_iterations=max_iterations, max_states=max_states
    )
    executor = TestExecutor(
        strategy, spec_plant, implementation, config=resolved
    )
    return executor.run()
