"""Test execution with winning strategies — the paper's Algorithm 3.1.

The executor drives a black-box implementation with a winning strategy,
incrementally building a timed trace σ:

* consult the strategy at the current (composed spec) state;
* ``input i``  → send ``i`` to the implementation, σ := σ·i;
* ``delay d``  → wait; if an output ``o`` occurs at ``d' <= d``, check
  ``o ∈ Out(s0 After σ·d')`` via the tioco monitor — **fail** otherwise —
  and σ := σ·d'·o; else σ := σ·d;
* when σ reaches a goal state, **pass**.

Deviations from the listing are bookkeeping only: the tester additionally
tracks the composed (plant ∥ environment) state the strategy is defined
over, and quiescence violations (the spec forcing an output the
implementation never produced) are detected by bounding every wait with
the spec's maximal quiescence.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..game.strategy import Strategy, Verdictish
from ..semantics.compose import EstimateLimit
from ..semantics.state import ConcreteState
from ..semantics.system import Move, System
from .implementation import SimulatedImplementation
from .tioco import TiocoMonitor
from .trace import FAIL, INCONCLUSIVE, PASS, TestRun, TimedTrace


class TestExecutionError(RuntimeError):
    """Internal inconsistency during test execution (not a verdict)."""


@dataclass
class TestExecutor:
    """Binds together strategy, spec monitor, and implementation.

    The strategy is defined over the *composed* specification (plant ∥
    environment); only moves that involve a plant automaton cross the test
    interface.  Environment-internal controllable moves (e.g. the LEP
    controller instructing its chaotic network) merely update the tester's
    own state.  Value-passing inputs carry the emitting environment edge's
    shared-variable updates to the implementation and the monitor (the
    UPPAAL idiom for parameterized actions).

    Composed (multi-automaton) plants are driven through the partial
    semantics: the spec monitor auto-selects symbolic state-set tracking
    when the plant internalises synchronizations, and the simulated
    implementation runs hidden syncs as internal steps.  The strategy's
    *own* state tracking stays exact over the closed arena; when the
    arena hides timed syncs from the tester, a strategy may lose track of
    the plant and return INCONCLUSIVE — never an unsound verdict, since
    PASS needs the goal and FAIL needs a (sound) monitor violation.
    """

    strategy: Strategy
    spec_plant: System
    implementation: SimulatedImplementation
    max_iterations: int = 10_000
    #: Symbolic state-set budget of the spec monitor (estimated monitors
    #: only); exceeding it yields INCONCLUSIVE, never a crash.  Deep
    #: campaigns raise it instead of eating budget-skips.
    max_states: int = 256

    @property
    def _plant_names(self):
        return {a.name for a in self.spec_plant.automata}

    def _involves_plant(self, move: Move) -> bool:
        composed = self.strategy.system
        return any(
            composed.automata[a_idx].name in self._plant_names
            for a_idx, _ in move.edges
        )

    def _plant_var_updates(self, tester: ConcreteState, move: Move):
        """Shared-variable effects of the move's environment-side edges.

        Returns ``[(name, index_or_None, value)]`` restricted to variables
        that exist (by name) in the plant specification.
        """
        from ..expr.eval import apply_assignments

        composed = self.strategy.system
        state = tester.vars
        for a_idx, edge in move.edges:
            if composed.automata[a_idx].name in self._plant_names:
                continue
            if edge.int_assigns:
                state = apply_assignments(edge.int_assigns, composed.ctx(state))
        updates = []
        plant_decls = self.spec_plant.decls
        for name, var in composed.decls.int_vars.items():
            if name not in plant_decls.int_vars:
                continue
            if state[var.slot] != tester.vars[var.slot]:
                updates.append((name, None, state[var.slot]))
        for name, arr in composed.decls.arrays.items():
            if name not in plant_decls.arrays:
                continue
            for k in range(arr.size):
                if state[arr.offset + k] != tester.vars[arr.offset + k]:
                    updates.append((name, k, state[arr.offset + k]))
        return updates

    def run(self) -> TestRun:
        strategy = self.strategy
        composed = strategy.system
        imp = self.implementation
        imp.reset()
        tester = self._settle_tau(composed, composed.initial_concrete())
        trace = TimedTrace()
        try:
            # Monitor construction may already run a hidden-move closure.
            monitor = TiocoMonitor(self.spec_plant, max_states=self.max_states)
            return self._run_loop(strategy, monitor, imp, tester, trace)
        except EstimateLimit as limit:
            # The composed spec's hidden-move closure blew its budget:
            # no verdict either way, never a crash.
            return TestRun(
                INCONCLUSIVE, trace, f"state-estimate budget: {limit}", 0
            )

    def _run_loop(self, strategy, monitor, imp, tester, trace) -> TestRun:
        for iteration in range(1, self.max_iterations + 1):
            decision = strategy.decide(tester)
            if decision.kind == Verdictish.DONE:
                return TestRun(PASS, trace, "goal state reached", iteration)
            if decision.kind == Verdictish.LOST:
                return TestRun(
                    INCONCLUSIVE,
                    trace,
                    "tester state left the winning region (internal error)",
                    iteration,
                )
            if decision.kind == Verdictish.FIRE:
                result = self._fire(decision.move, monitor, imp, tester, trace)
                if isinstance(result, TestRun):
                    return result
                tester = result
                continue
            # WAIT: decision.delay is the strategy's next scheduled action
            # time; None means "wait for the plant" (forced-output region).
            result = self._wait(decision.delay, monitor, imp, tester, trace)
            if isinstance(result, TestRun):
                return result
            tester = result
        return TestRun(
            INCONCLUSIVE, trace, "iteration budget exhausted", self.max_iterations
        )

    # ------------------------------------------------------------------

    def _fire(
        self,
        move: Move,
        monitor: TiocoMonitor,
        imp: SimulatedImplementation,
        tester: ConcreteState,
        trace: TimedTrace,
    ):
        composed = self.strategy.system
        label = move.label
        if not self._involves_plant(move):
            # Environment-internal controllable move: invisible at the
            # plant interface; only the tester's own state changes.
            nxt = composed.fire(tester, move)
            if nxt is None:
                raise TestExecutionError(
                    f"strategy fired disabled env move {label} at {tester}"
                )
            return self._settle_tau(composed, nxt)
        updates = self._plant_var_updates(tester, move)
        if not imp.give_input(label, updates):
            trace.add_action(label, "input")
            return TestRun(
                FAIL,
                trace,
                f"implementation refused input {label}?"
                f" (violates input-enabledness)",
            )
        trace.add_action(label, "input")
        if not monitor.observe(label, "input", updates):
            # The spec refusing its own strategy's input is a tracking
            # contradiction, not an IUT violation (the IUT accepted it).
            return self._tracking_fail(
                trace, monitor.violation or "spec refused input"
            )
        nxt = composed.fire(tester, move)
        if nxt is None:
            raise TestExecutionError(
                f"strategy fired disabled move {label} at {tester}"
            )
        return self._settle_tau(composed, nxt)

    def _wait(
        self,
        scheduled: Optional[Fraction],
        monitor: TiocoMonitor,
        imp: SimulatedImplementation,
        tester: ConcreteState,
        trace: TimedTrace,
    ):
        composed = self.strategy.system
        quiescence = monitor.max_quiescence()
        # How long the tester is prepared to wait this round: either until
        # its next scheduled action, or (waiting for the plant) just past
        # the instant the spec forces an output.
        if scheduled is not None:
            wait_for = scheduled
        elif quiescence.bound is not None:
            wait_for = quiescence.bound + Fraction(1, 2)
        else:
            return TestRun(
                INCONCLUSIVE,
                trace,
                "strategy waits forever and spec never forces an output",
            )

        pending = imp.next_output()
        if pending is not None and pending.delay <= wait_for:
            # The implementation acts first (or simultaneously).
            d = pending.delay
            label = imp.advance(d)
            trace.add_delay(d)
            if not monitor.advance(d):
                return TestRun(FAIL, trace, monitor.violation or "quiescence")
            new_tester = self._delay_tester(composed, tester, d)
            if label is None:
                # Internal move of the implementation: nothing observed.
                return new_tester if new_tester is not None else self._tracking_fail(
                    trace, "tester time left the spec invariant"
                )
            trace.add_action(label, "output")
            if not monitor.observe(label, "output"):
                return TestRun(FAIL, trace, monitor.violation or "bad output")
            if new_tester is None:
                return self._tracking_fail(
                    trace, "tester time left the spec invariant"
                )
            next_tester = self._tester_output(composed, new_tester, label)
            if next_tester is None:
                return self._tracking_fail(
                    trace, f"output {label}! not accepted by composed spec state"
                )
            return next_tester

        # Quiet until the tester's own schedule.
        imp.advance(wait_for)
        trace.add_delay(wait_for)
        if not monitor.advance(wait_for):
            return TestRun(FAIL, trace, monitor.violation or "quiescence violation")
        new_tester = self._delay_tester(composed, tester, wait_for)
        if new_tester is None:
            return self._tracking_fail(
                trace, "tester time left the spec invariant"
            )
        return new_tester

    def _tracking_fail(self, trace: TimedTrace, reason: str) -> TestRun:
        """A failure of the *tester's own* composed-state tracking.

        With a fully observable plant this is a genuine FAIL (the monitor
        checks passed, so the contradiction lies with the implementation).
        When the plant *runs under the partial semantics* (interface
        declared) and hides syncs, the tester's exact arena state may
        simply be stale — hidden moves fired at times it cannot know — so
        the only sound verdict is INCONCLUSIVE: FAIL must come from the
        (set-tracking, hence sound) conformance monitor alone.  The guard
        mirrors the monitors' own mode selection: an undeclared network
        is driven in exact open mode, where tracking failures stay FAIL.
        """
        if (
            self.spec_plant.network.interface_declared
            and self.spec_plant.partial_hides_syncs()
        ):
            return TestRun(
                INCONCLUSIVE,
                trace,
                f"tester lost track of the hidden-sync plant ({reason})",
            )
        return TestRun(FAIL, trace, reason)

    @staticmethod
    def _settle_tau(composed: System, state: ConcreteState) -> ConcreteState:
        """Resolve committed internal processing in the composed spec."""
        from fractions import Fraction as F

        for _ in range(64):
            if composed.can_delay(state.locs):
                return state
            fired = False
            for move in composed.moves_from(state.locs, state.vars):
                if move.direction != "internal":
                    continue
                interval = composed.enabled_interval(state, move)
                if interval is None or not interval.contains(F(0)):
                    continue
                nxt = composed.fire(state, move)
                if nxt is not None:
                    state = nxt
                    fired = True
                    break
            if not fired:
                return state
        raise TestExecutionError("internal-move settling did not converge")

    @classmethod
    def _delay_tester(
        cls, composed: System, tester: ConcreteState, d: Fraction
    ) -> Optional[ConcreteState]:
        if not composed.delay_ok(tester, d):
            return None
        return tester.delayed(d)

    @classmethod
    def _tester_output(
        cls, composed: System, tester: ConcreteState, label: str
    ) -> Optional[ConcreteState]:
        for move in composed.moves_from(tester.locs, tester.vars):
            if move.label != label or move.direction != "output":
                continue
            nxt = composed.fire(tester, move)
            if nxt is not None:
                return cls._settle_tau(composed, nxt)
        return None


def execute_test(
    strategy: Strategy,
    spec_plant: System,
    implementation: SimulatedImplementation,
    *,
    max_iterations: int = 10_000,
    max_states: int = 256,
) -> TestRun:
    """One-shot convenience wrapper around :class:`TestExecutor`."""
    executor = TestExecutor(
        strategy, spec_plant, implementation, max_iterations, max_states
    )
    return executor.run()
