"""Simulated implementations under test.

The paper tests black boxes; here the black box is a *simulated
implementation*: an interpreter for a plant-shaped network (possibly a
mutant of the spec) that is **deterministic** and **output-urgent** — the
paper's test hypotheses (§2.5).  Determinism and urgency come from an
:class:`OutputPolicy` that, at every state, commits to *which* output to
produce and *when* (within the window the model allows); if the tester's
input arrives first, the schedule is recomputed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Protocol, Sequence, Tuple

from ..semantics.compose import apply_var_updates as _apply_var_updates
from ..semantics.state import ConcreteState
from ..semantics.system import OPEN, PARTIAL, DelayInterval, Move, System


@dataclass(frozen=True)
class ScheduledOutput:
    """An output the implementation has committed to produce."""

    move: Move
    delay: Fraction  # from "now"

    @property
    def label(self) -> str:
        return self.move.label


class OutputPolicy(Protocol):
    """Resolves output nondeterminism: which output, when."""

    def choose(
        self,
        state: ConcreteState,
        options: Sequence[Tuple[Move, DelayInterval]],
        forced_by: Optional[Fraction],
    ) -> Optional[ScheduledOutput]:
        """Pick an output and a firing delay, or None to stay quiescent.

        ``forced_by`` is the invariant bound: if not None, staying silent
        beyond it is impossible, so returning None means "wait until the
        boundary and then fire whatever the model forces" — the simulator
        converts that into the latest legal schedule.
        """
        ...


def _interval_pick_at_or_after(interval: DelayInterval, at: Fraction) -> Optional[Fraction]:
    """A delay in ``interval`` at or after ``at`` (None if none exists)."""
    candidate = at
    if candidate < interval.lo or (candidate == interval.lo and interval.lo_strict):
        candidate = interval.pick()
    if interval.contains(candidate):
        return candidate
    return None


class EagerPolicy:
    """Always produce the first enabled output as early as possible."""

    def choose(self, state, options, forced_by):
        best: Optional[ScheduledOutput] = None
        for move, interval in sorted(options, key=lambda o: o[0].label):
            delay = interval.pick()
            if best is None or delay < best.delay:
                best = ScheduledOutput(move, delay)
        return best


class LazyPolicy:
    """Produce outputs as late as the model (invariant) allows."""

    def choose(self, state, options, forced_by):
        best: Optional[ScheduledOutput] = None
        for move, interval in sorted(options, key=lambda o: o[0].label):
            if interval.hi is None:
                if forced_by is None:
                    continue  # never forced, stay quiescent on this one
                delay = forced_by
                if not interval.contains(delay):
                    delay = interval.pick()
            else:
                delay = interval.hi
                if interval.hi_strict:
                    delay = (max(interval.lo, Fraction(0)) + interval.hi) / 2
                    if not interval.contains(delay):
                        delay = interval.pick()
            if best is None or delay > best.delay:
                best = ScheduledOutput(move, delay)
        return best


class QuiescentPolicy:
    """Stay silent unless the invariant forces an output."""

    def choose(self, state, options, forced_by):
        if forced_by is None:
            return None
        for move, interval in sorted(options, key=lambda o: o[0].label):
            delay = _interval_pick_at_or_after(interval, forced_by)
            if delay is not None:
                return ScheduledOutput(move, delay)
        # Nothing fireable at the boundary: pick any enabled schedule.
        for move, interval in sorted(options, key=lambda o: o[0].label):
            return ScheduledOutput(move, interval.pick())
        return None


class RandomPolicy:
    """Seeded random choice of output and firing time (half-integer grid)."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def choose(self, state, options, forced_by):
        if not options:
            return None
        move, interval = self._rng.choice(list(options))
        lo = interval.lo
        hi = interval.hi
        if hi is None:
            hi = lo + 2
        if forced_by is not None and forced_by < hi:
            hi = forced_by
        # Sample on the half-integer grid inside [lo, hi].
        steps = int((hi - lo) * 2)
        candidates = [lo + Fraction(k, 2) for k in range(steps + 1)]
        candidates = [c for c in candidates if interval.contains(c)]
        if not candidates:
            candidates = [interval.pick()]
        return ScheduledOutput(move, self._rng.choice(candidates))


class SimulatedImplementation:
    """A deterministic, output-urgent TIOTS interpreter (the IMP).

    ``mode`` selects the move-enumeration semantics: the *partial*
    composition when the network declares an interface partition (a
    composed plant runs its internalised synchronizations as hidden
    internal steps, scheduled by the output policy like any other
    unobservable move), the legacy *open* semantics otherwise.
    """

    def __init__(self, system: System, policy: Optional[OutputPolicy] = None,
                 name: str = "IMP", mode: Optional[str] = None):
        self.system = system
        self.policy = policy or EagerPolicy()
        self.name = name
        if mode is None:
            mode = PARTIAL if system.network.interface_declared else OPEN
        self.mode = mode
        self.state: ConcreteState = system.initial_concrete()
        self._schedule: Optional[ScheduledOutput] = None
        self._reschedule()

    # ------------------------------------------------------------------

    def reset(self) -> None:
        self.state = self.system.initial_concrete()
        self._reschedule()

    def _output_options(self) -> List[Tuple[Move, DelayInterval]]:
        return self.system.move_options(
            self.state, mode=self.mode, directions=("output", "internal")
        )

    def _reschedule(self) -> None:
        options = self._output_options()
        bound, strict = self.system.max_delay(self.state)
        forced_by = None
        if bound is not None and not strict:
            forced_by = bound
        elif bound is not None and strict:
            forced_by = bound  # approximation: fire by the open bound
        self._schedule = (
            self.policy.choose(self.state, options, forced_by) if options else None
        )

    # ------------------------------------------------------------------
    # The black-box interface used by the test executor
    # ------------------------------------------------------------------

    def next_output(self) -> Optional[ScheduledOutput]:
        """The output that will occur if the tester stays silent."""
        return self._schedule

    def advance(self, d: Fraction) -> Optional[str]:
        """Let ``d`` time units pass; returns an output label if the
        implementation's scheduled output fires exactly at ``d``."""
        if d < 0:
            raise ValueError("negative delay")
        if self._schedule is not None and self._schedule.delay < d:
            raise ValueError(
                f"cannot advance {d}: output {self._schedule.label} due at"
                f" {self._schedule.delay}"
            )
        self.state = self.state.delayed(d)
        if self._schedule is not None:
            if self._schedule.delay == d:
                return self._emit()
            self._schedule = ScheduledOutput(
                self._schedule.move, self._schedule.delay - d
            )
        return None

    def _emit(self) -> Optional[str]:
        move = self._schedule.move
        nxt = self.system.fire(self.state, move)
        if nxt is None:  # schedule went stale (should not happen)
            self._reschedule()
            return None
        label = move.label if move.direction != "internal" else None
        self.state = nxt
        self._reschedule()
        return label

    def give_input(self, label: str, updates: Optional[list] = None) -> bool:
        """Tester offers an input now; False if the IMP refuses it.

        ``updates`` are ``(var_name, index_or_None, value)`` triples: the
        message payload of a value-passing input, applied to the shared
        variables before the receiving edge fires (UPPAAL emitter-first
        assignment order).
        """
        if updates:
            self.state = ConcreteState(
                self.state.locs,
                apply_var_updates(self.system, self.state.vars, updates),
                self.state.clocks,
            )
        matches = [
            move
            for move, _ in self.system.enabled_now(
                self.state, mode=self.mode, directions=("input",)
            )
            if move.label == label
        ]
        if not matches:
            return False
        nxt = self.system.fire(self.state, matches[0])
        if nxt is None:
            return False
        self.state = nxt
        self._reschedule()
        return True


def apply_var_updates(system: System, vars: tuple, updates) -> tuple:
    """Apply ``(name, index_or_None, value)`` updates to a variable tuple."""
    return _apply_var_updates(system.decls, vars, updates)
