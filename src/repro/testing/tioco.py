"""Online tioco conformance monitoring (paper Def. 5).

``i tioco s  iff  ∀σ ∈ TTr(s): Out(i After σ) ⊆ Out(s After σ)``

The monitor tracks ``s0 After σ`` for the *specification plant* while the
test executor builds σ incrementally, and answers two questions:

* may the plant delay (stay quiescent) for ``d`` more time units?
  (bounded by location invariants — a spec that *forces* an output by
  time T makes longer quiescence a conformance violation);
* may the plant emit output ``o`` right now?

The paper's test hypotheses make SPEC deterministic, so ``After σ`` is a
single state once the trace (with exact delays) is fixed; the monitor
keeps one exact :class:`ConcreteState` and raises on genuinely
nondeterministic specs (same action enabled via two different moves at
the same instant with different successors).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from ..semantics.state import ConcreteState
from ..semantics.system import Move, System


class SpecNondeterminism(RuntimeError):
    """The specification violated the determinism test hypothesis."""


@dataclass(frozen=True)
class Quiescence:
    """How long the spec allows silence: ``bound`` None means forever."""

    bound: Optional[Fraction]
    strict: bool

    def allows(self, d: Fraction) -> bool:
        if self.bound is None:
            return True
        return d < self.bound or (d == self.bound and not self.strict)


class TiocoMonitor:
    """Tracks ``s0 After σ`` of an open plant specification."""

    def __init__(self, spec: System):
        self.spec = spec
        self.state: ConcreteState = spec.initial_concrete()
        self.violation: Optional[str] = None
        self._settle()

    # ------------------------------------------------------------------

    def reset(self) -> None:
        self.state = self.spec.initial_concrete()
        self.violation = None
        self._settle()

    def _settle(self) -> None:
        """Silently resolve unobservable processing in frozen-time states.

        Deterministic specs resolve value-passing in committed locations
        (zero time, unobservable); the monitor state is always settled.

        **Urgent locations** freeze time the same way but grant no
        priority, so the settling rule is: an urgent (non-committed) state
        that offers an observable move at the current instant is already
        settled — time simply cannot pass (``max_quiescence`` is 0) until
        the implementation produces an output or the tester an input.
        Only internal moves without an observable competitor are resolved
        silently.  An urgent location with *only* sync edges therefore no
        longer strands the monitor: it waits at the frozen instant and
        resolves via :meth:`observe`.
        """
        for _ in range(64):
            if self.spec.can_delay(self.state.locs):
                return
            if not self.spec.has_committed(self.state.locs) and self.enabled_now(
                "output"
            ):
                return  # urgent-only freeze with an observable resolution
            internal = [
                move
                for move, _ in self.spec.enabled_now(
                    self.state, open_system=True, directions=("internal",)
                )
            ]
            if not internal:
                return
            if len(internal) > 1:
                successors = {self.spec.fire(self.state, m) for m in internal}
                if len(successors) > 1:
                    raise SpecNondeterminism(
                        "multiple internal moves enabled in a committed/urgent"
                        " state"
                    )
            nxt = self.spec.fire(self.state, internal[0])
            if nxt is None:
                return
            self.state = nxt
        raise SpecNondeterminism("internal-move settling did not converge")

    @property
    def ok(self) -> bool:
        return self.violation is None

    def _fail(self, reason: str) -> bool:
        self.violation = reason
        return False

    # ------------------------------------------------------------------
    # Out(state) pieces
    # ------------------------------------------------------------------

    def enabled_now(self, direction: Optional[str] = None) -> List[Tuple[Move, str]]:
        """Moves enabled at the current instant (optionally by direction)."""
        directions = None if direction is None else (direction,)
        return [
            (move, move.label)
            for move, _ in self.spec.enabled_now(
                self.state, open_system=True, directions=directions
            )
        ]

    def allowed_outputs(self) -> List[str]:
        """``Out(s After σ)`` restricted to actions (paper §2.2)."""
        return sorted({label for _, label in self.enabled_now("output")})

    def max_quiescence(self) -> Quiescence:
        """The largest delay in ``Out(s After σ)`` (invariant bound)."""
        bound, strict = self.spec.max_delay(self.state)
        return Quiescence(bound, strict)

    # ------------------------------------------------------------------
    # Trace extension
    # ------------------------------------------------------------------

    def advance(self, d: Fraction) -> bool:
        """Extend σ by a delay; False = quiescence not allowed by spec."""
        if not self.ok:
            return False
        if d == 0:
            return True
        if not self.max_quiescence().allows(d):
            return self._fail(
                f"implementation stayed quiescent for {d} time units but the"
                f" specification forces an action by"
                f" {self.max_quiescence().bound}"
            )
        self.state = self.state.delayed(d)
        return True

    def observe(self, label: str, direction: str, updates=None) -> bool:
        """Extend σ by an observed action; False = tioco violation.

        For value-passing inputs, ``updates`` carries the message payload
        as ``(var_name, index_or_None, value)`` triples (see
        :meth:`SimulatedImplementation.give_input`).
        """
        if not self.ok:
            return False
        if updates:
            from .implementation import apply_var_updates

            self.state = ConcreteState(
                self.state.locs,
                apply_var_updates(self.spec, self.state.vars, updates),
                self.state.clocks,
            )
        matches = [
            move for move, lab in self.enabled_now(direction) if lab == label
        ]
        if not matches:
            if direction == "output":
                allowed = self.allowed_outputs()
                return self._fail(
                    f"output {label}! not allowed by specification here"
                    f" (allowed outputs: {allowed or 'none'})"
                )
            return self._fail(
                f"input {label}? unexpectedly refused by specification"
                f" (spec not input-enabled?)"
            )
        successors = []
        for move in matches:
            nxt = self.spec.fire(self.state, move)
            if nxt is not None:
                successors.append(nxt)
        if not successors:
            return self._fail(f"action {label} blocked by target invariant")
        unique = {s for s in successors}
        if len(unique) > 1:
            raise SpecNondeterminism(
                f"specification is nondeterministic on {label} at {self.state}"
            )
        self.state = successors[0]
        self._settle()
        return True
