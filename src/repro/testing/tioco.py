"""Online tioco conformance monitoring (paper Def. 5).

``i tioco s  iff  ∀σ ∈ TTr(s): Out(i After σ) ⊆ Out(s After σ)``

The monitor tracks ``s0 After σ`` for the *specification plant* while the
test executor builds σ incrementally, and answers two questions:

* may the plant delay (stay quiescent) for ``d`` more time units?
  (bounded by location invariants — a spec that *forces* an output by
  time T makes longer quiescence a conformance violation);
* may the plant emit output ``o`` right now?

The specification is enumerated under a :mod:`repro.semantics.system`
mode — ``partial`` when the network declares an interface partition
(composed plants: internal syncs complete as hidden moves, boundary
channels stay open), the legacy ``open`` semantics otherwise.  Two
tracking strategies implement ``After σ``:

* **exact** — the paper's test hypotheses make SPEC deterministic, so
  once the spec has no *hidden timed* moves, ``After σ`` is a single
  state for a fixed trace; the monitor keeps one exact
  :class:`ConcreteState` and raises on genuinely nondeterministic specs
  (same action enabled via two different moves at the same instant with
  different successors);
* **estimated** — a composed plant internalises synchronizations that
  fire at instants the tester cannot observe, so ``After σ`` is a *set*
  of states; the monitor then delegates to
  :class:`repro.semantics.compose.StateEstimate`, which tracks the set
  symbolically.  Selected automatically whenever the partial semantics
  can hide syncs.

:class:`SpecMonitorBase` holds the tracking scaffolding shared with the
relativized monitor (:mod:`repro.testing.rtioco`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from ..semantics.compose import StateEstimate
from ..semantics.state import ConcreteState
from ..semantics.system import OPEN, PARTIAL, Move, System


class SpecNondeterminism(RuntimeError):
    """The specification violated the determinism test hypothesis."""


@dataclass(frozen=True)
class Quiescence:
    """How long the spec allows silence: ``bound`` None means forever."""

    bound: Optional[Fraction]
    strict: bool

    def allows(self, d: Fraction) -> bool:
        if self.bound is None:
            return True
        return d < self.bound or (d == self.bound and not self.strict)


class SpecMonitorBase:
    """Shared ``After σ`` tracking of the tioco / rtioco monitors.

    Selects the enumeration mode (``partial`` when the network declares
    an interface partition, the subclass's ``_fallback_mode`` otherwise)
    and the tracking strategy (symbolic state set whenever the partial
    semantics can hide syncs, one exact concrete state otherwise), and
    implements the operations whose logic is mode-independent.
    Subclasses contribute their settling rule, observation methods, and
    failure messages.
    """

    #: Enumeration mode when the network declares no interface partition.
    _fallback_mode: str = OPEN

    def __init__(
        self,
        spec: System,
        mode: Optional[str] = None,
        *,
        max_states: int = 256,
    ):
        """``max_states`` bounds the symbolic state-set tracker (estimated
        monitors only): richer hidden behaviour needs a larger budget, an
        overflow raises :class:`~repro.semantics.compose.EstimateLimit`
        (mapped to INCONCLUSIVE by the executor)."""
        self.spec = spec
        if mode is None:
            mode = (
                PARTIAL
                if spec.network.interface_declared
                else self._fallback_mode
            )
        self.mode = mode
        self.violation: Optional[str] = None
        self._estimate: Optional[StateEstimate] = None
        self.state: Optional[ConcreteState] = None
        if mode == PARTIAL and spec.partial_hides_syncs():
            self._estimate = StateEstimate(spec, mode, max_states=max_states)
        else:
            self.state = spec.initial_concrete()
            self._settle()

    def _settle(self) -> None:
        raise NotImplementedError

    def _quiescence_message(self, d: Fraction) -> str:
        raise NotImplementedError

    @property
    def estimated(self) -> bool:
        """Whether ``After σ`` is tracked as a symbolic state set."""
        return self._estimate is not None

    @property
    def state_count(self) -> int:
        """States currently tracked for ``After σ`` (1 when exact).

        The unit the test server's global state budget is accounted in:
        exact monitors pin one concrete state, estimated monitors as many
        symbolic members as the hidden-move closure currently retains.
        """
        if self._estimate is not None:
            return self._estimate.size
        return 1

    @property
    def estimate(self) -> Optional[StateEstimate]:
        """The symbolic tracker, when estimated (hook installation)."""
        return self._estimate

    @property
    def ok(self) -> bool:
        return self.violation is None

    def _fail(self, reason: str) -> bool:
        self.violation = reason
        return False

    def reset(self) -> None:
        self.violation = None
        if self._estimate is not None:
            self._estimate.reset()
            return
        self.state = self.spec.initial_concrete()
        self._settle()

    def enabled_labels(self, direction: str) -> List[str]:
        """Labels of ``direction`` moves the spec enables right now."""
        if self._estimate is not None:
            return self._estimate.enabled_labels(direction)
        return sorted(
            {
                move.label
                for move, _ in self.spec.enabled_now(
                    self.state, mode=self.mode, directions=(direction,)
                )
            }
        )

    def allowed_outputs(self) -> List[str]:
        """``Out(s After σ)`` restricted to actions (paper §2.2)."""
        return self.enabled_labels("output")

    def max_quiescence(self) -> Quiescence:
        """The largest delay in ``Out(s After σ)`` (invariant bound)."""
        if self._estimate is not None:
            return Quiescence(*self._estimate.max_quiescence())
        bound, strict = self.spec.max_delay(self.state)
        return Quiescence(bound, strict)

    def advance(self, d: Fraction) -> bool:
        """Extend σ by a delay; False = quiescence not allowed by spec."""
        if not self.ok:
            return False
        if d == 0:
            return True
        if self._estimate is not None:
            if not self._estimate.advance(d):
                return self._fail(self._quiescence_message(d))
            return True
        if not self.max_quiescence().allows(d):
            return self._fail(self._quiescence_message(d))
        self.state = self.state.delayed(d)
        return True


class TiocoMonitor(SpecMonitorBase):
    """Tracks ``s0 After σ`` of an open or partially composed plant spec."""

    _fallback_mode = OPEN

    def _settle(self) -> None:
        """Silently resolve unobservable processing in frozen-time states.

        Deterministic specs resolve value-passing in committed locations
        (zero time, unobservable); the monitor state is always settled.

        **Urgent locations** freeze time the same way but grant no
        priority, so the settling rule is: an urgent (non-committed) state
        that offers an observable move at the current instant is already
        settled — time simply cannot pass (``max_quiescence`` is 0) until
        the implementation produces an output or the tester an input.
        Only internal moves without an observable competitor are resolved
        silently.  An urgent location with *only* sync edges therefore no
        longer strands the monitor: it waits at the frozen instant and
        resolves via :meth:`observe`.
        """
        for _ in range(64):
            if self.spec.can_delay(self.state.locs):
                return
            if not self.spec.has_committed(self.state.locs) and self.enabled_now(
                "output"
            ):
                return  # urgent-only freeze with an observable resolution
            internal = [
                move
                for move, _ in self.spec.enabled_now(
                    self.state, mode=self.mode, directions=("internal",)
                )
            ]
            if not internal:
                return
            if len(internal) > 1:
                successors = {self.spec.fire(self.state, m) for m in internal}
                if len(successors) > 1:
                    raise SpecNondeterminism(
                        "multiple internal moves enabled in a committed/urgent"
                        " state"
                    )
            nxt = self.spec.fire(self.state, internal[0])
            if nxt is None:
                return
            self.state = nxt
        raise SpecNondeterminism("internal-move settling did not converge")

    def _quiescence_message(self, d: Fraction) -> str:
        if self.estimated:
            return (
                f"implementation stayed quiescent for {d} time units but no"
                f" run of the composed specification allows it"
            )
        return (
            f"implementation stayed quiescent for {d} time units but the"
            f" specification forces an action by {self.max_quiescence().bound}"
        )

    # ------------------------------------------------------------------
    # Out(state) pieces
    # ------------------------------------------------------------------

    def enabled_now(self, direction: Optional[str] = None) -> List[Tuple[Move, str]]:
        """Moves enabled at the current instant (exact tracking only)."""
        if self._estimate is not None:
            raise RuntimeError(
                "enabled_now is undefined on an estimated monitor; use"
                " enabled_labels"
            )
        directions = None if direction is None else (direction,)
        return [
            (move, move.label)
            for move, _ in self.spec.enabled_now(
                self.state, mode=self.mode, directions=directions
            )
        ]

    # ------------------------------------------------------------------
    # Trace extension
    # ------------------------------------------------------------------

    def observe(self, label: str, direction: str, updates=None) -> bool:
        """Extend σ by an observed action; False = tioco violation.

        For value-passing inputs, ``updates`` carries the message payload
        as ``(var_name, index_or_None, value)`` triples (see
        :meth:`SimulatedImplementation.give_input`).
        """
        if not self.ok:
            return False
        if self._estimate is not None:
            if not self._estimate.observe(label, direction, updates):
                if direction == "output":
                    allowed = self._estimate.allowed_outputs()
                    return self._fail(
                        f"output {label}! not allowed by specification here"
                        f" (allowed outputs: {allowed or 'none'})"
                    )
                return self._fail(
                    f"input {label}? unexpectedly refused by specification"
                    f" (spec not input-enabled?)"
                )
            return True
        if updates:
            from .implementation import apply_var_updates

            self.state = ConcreteState(
                self.state.locs,
                apply_var_updates(self.spec, self.state.vars, updates),
                self.state.clocks,
            )
        matches = [
            move for move, lab in self.enabled_now(direction) if lab == label
        ]
        if not matches:
            if direction == "output":
                allowed = self.allowed_outputs()
                return self._fail(
                    f"output {label}! not allowed by specification here"
                    f" (allowed outputs: {allowed or 'none'})"
                )
            return self._fail(
                f"input {label}? unexpectedly refused by specification"
                f" (spec not input-enabled?)"
            )
        successors = []
        for move in matches:
            nxt = self.spec.fire(self.state, move)
            if nxt is not None:
                successors.append(nxt)
        if not successors:
            return self._fail(f"action {label} blocked by target invariant")
        unique = {s for s in successors}
        if len(unique) > 1:
            raise SpecNondeterminism(
                f"specification is nondeterministic on {label} at {self.state}"
            )
        self.state = successors[0]
        self._settle()
        return True
