"""Strategy-based conformance testing: tioco monitor, executor, IMPs."""

from .campaign import (
    DEFAULT_POLICIES,
    CampaignReport,
    MutantOutcome,
    MutationCampaign,
    MutationReport,
    PurposeOutcome,
    TestCampaign,
    make_policy,
)
from .mutants import Mutant, MutantSpec
from .executor import TestExecutor, TestExecutionError, execute_test
from .implementation import (
    EagerPolicy,
    LazyPolicy,
    OutputPolicy,
    QuiescentPolicy,
    RandomPolicy,
    ScheduledOutput,
    SimulatedImplementation,
)
from .replay import ReplayResult, parse_trace, replay_trace
from .rtioco import RelativizedMonitor, RtiocoMonitor
from .tioco import Quiescence, SpecNondeterminism, TiocoMonitor
from .trace import (
    FAIL,
    INCONCLUSIVE,
    PASS,
    ActionStep,
    DelayStep,
    TestRun,
    TimedTrace,
)
