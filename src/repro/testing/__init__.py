"""Strategy-based conformance testing: tioco monitor, session, drivers.

The core is the sans-IO :class:`TestSession` (strategy decisions, spec
monitoring, verdicts), configured by one :class:`SessionConfig` value;
:class:`TestExecutor` / :func:`execute_test` drive it in-process against
a :class:`SimulatedImplementation`, the asyncio server (:mod:`repro.server`)
drives it over sockets.
"""

from .campaign import (
    DEFAULT_POLICIES,
    CampaignReport,
    MutantOutcome,
    MutationCampaign,
    MutationReport,
    PurposeOutcome,
    TestCampaign,
    make_policy,
)
from .mutants import Mutant, MutantSpec
from .executor import TestExecutor, TestExecutionError, execute_test
from .implementation import (
    EagerPolicy,
    LazyPolicy,
    OutputPolicy,
    QuiescentPolicy,
    RandomPolicy,
    ScheduledOutput,
    SimulatedImplementation,
)
from .replay import ReplayResult, parse_trace, replay_trace
from .rtioco import RelativizedMonitor, RtiocoMonitor
from .session import (
    Finish,
    SendInput,
    SessionConfig,
    SessionProtocolError,
    TestSession,
    Wait,
    resolve_session_config,
)
from .tioco import Quiescence, SpecNondeterminism, TiocoMonitor
from .trace import (
    FAIL,
    INCONCLUSIVE,
    PASS,
    ActionStep,
    DelayStep,
    TestRun,
    TimedTrace,
)

__all__ = [
    "ActionStep",
    "CampaignReport",
    "DEFAULT_POLICIES",
    "DelayStep",
    "EagerPolicy",
    "FAIL",
    "Finish",
    "INCONCLUSIVE",
    "LazyPolicy",
    "Mutant",
    "MutantOutcome",
    "MutantSpec",
    "MutationCampaign",
    "MutationReport",
    "OutputPolicy",
    "PASS",
    "PurposeOutcome",
    "Quiescence",
    "QuiescentPolicy",
    "RandomPolicy",
    "RelativizedMonitor",
    "ReplayResult",
    "RtiocoMonitor",
    "ScheduledOutput",
    "SendInput",
    "SessionConfig",
    "SessionProtocolError",
    "SimulatedImplementation",
    "SpecNondeterminism",
    "TestCampaign",
    "TestExecutionError",
    "TestExecutor",
    "TestRun",
    "TestSession",
    "TimedTrace",
    "TiocoMonitor",
    "Wait",
    "execute_test",
    "make_policy",
    "parse_trace",
    "replay_trace",
    "resolve_session_config",
]
