"""Mutation operators: systematically derived faulty implementations.

The paper's future work item 3 asks for "evaluating strategy-based test
effectiveness in terms of fault detecting capability".  This module
implements the classic timed-automata mutation operators over prepared
networks (working on the original expression ASTs, then re-preparing):

* ``shift_guard_constant``   — off-by-delta timing faults;
* ``widen_invariant``        — outputs later than the spec allows;
* ``retarget_edge``          — wrong successor location;
* ``swap_output_channel``    — wrong output action;
* ``drop_edge``              — missing behaviour (detectable only when the
  spec *forces* the behaviour);
* ``add_spurious_edge``      — extra behaviour the spec forbids.

Each operator returns a *new* network; the original is never touched.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..expr.ast import Binary, Expr, IntLiteral, Unary
from ..expr.parser import parse_assignments, parse_expression
from ..ta.model import Automaton, Edge, Network


class MutationError(ValueError):
    """Raised when a mutation cannot be applied (e.g. no matching edge)."""


# ----------------------------------------------------------------------
# Cloning
# ----------------------------------------------------------------------


def clone_network(network: Network, name_suffix: str = "-mutant") -> Network:
    """Deep-copy a network into an unprepared clone sharing declarations.

    Declarations are immutable in practice once built, so sharing them is
    safe; automata, locations, and edges are re-created so mutations never
    leak into the original.
    """
    clone = Network(network.name + name_suffix, network.decls)
    for channel in network.channels.values():
        clone.add_channel(channel.name, channel.kind)
    for automaton in network.automata:
        fresh = Automaton(automaton.name)
        for loc in automaton.location_list:
            fresh.add_location(
                loc.name,
                loc.invariant,
                initial=(loc.name == automaton.initial),
                committed=loc.committed,
                urgent=loc.urgent,
            )
        for edge in automaton.edges:
            fresh.add_edge(
                Edge(
                    automaton=edge.automaton,
                    source=edge.source,
                    target=edge.target,
                    guard=edge.guard,
                    sync=edge.sync,
                    assigns=edge.assigns,
                    controllable=edge.controllable,
                )
            )
        clone.add_automaton(fresh)
    return clone


# ----------------------------------------------------------------------
# Edge selection
# ----------------------------------------------------------------------


def find_edges(
    network: Network,
    *,
    automaton: Optional[str] = None,
    source: Optional[str] = None,
    target: Optional[str] = None,
    sync: Optional[str] = None,
) -> List[Tuple[Automaton, int]]:
    """Edges matching the given criteria, as (automaton, edge position)."""
    matches: List[Tuple[Automaton, int]] = []
    for aut in network.automata:
        if automaton is not None and aut.name != automaton:
            continue
        for pos, edge in enumerate(aut.edges):
            if source is not None and edge.source != source:
                continue
            if target is not None and edge.target != target:
                continue
            if sync is not None:
                if edge.sync is None or edge.sync[0] + edge.sync[1] != sync:
                    continue
            matches.append((aut, pos))
    return matches


def _single_edge(network: Network, **criteria) -> Tuple[Automaton, int]:
    matches = find_edges(network, **criteria)
    if not matches:
        raise MutationError(f"no edge matches {criteria}")
    return matches[0]


# ----------------------------------------------------------------------
# Expression surgery
# ----------------------------------------------------------------------


def _shift_literals(expr: Expr, delta: int) -> Expr:
    """Shift every comparison's right-hand side by ``delta``.

    Literal bounds are folded (``x <= 2`` becomes ``x <= 4``); symbolic
    bounds are wrapped (``x >= Tidle`` becomes ``x >= Tidle + 2``).
    """
    if isinstance(expr, Unary):
        return Unary(expr.op, _shift_literals(expr.operand, delta))
    if isinstance(expr, Binary):
        if expr.op in ("<", "<=", "==", ">=", ">"):
            rhs = expr.rhs
            if isinstance(rhs, IntLiteral):
                shifted: Expr = IntLiteral(rhs.value + delta)
            elif delta >= 0:
                shifted = Binary("+", rhs, IntLiteral(delta))
            else:
                shifted = Binary("-", rhs, IntLiteral(-delta))
            return Binary(expr.op, expr.lhs, shifted)
        return Binary(
            expr.op, _shift_literals(expr.lhs, delta), _shift_literals(expr.rhs, delta)
        )
    return expr


# ----------------------------------------------------------------------
# Mutation operators
# ----------------------------------------------------------------------


def shift_guard_constant(network: Network, delta: int, **criteria) -> Network:
    """Shift the constants of the selected edge's guard by ``delta``."""
    mutant = clone_network(network, f"-guard{delta:+d}")
    aut, pos = _single_edge(mutant, **criteria)
    edge = aut.edges[pos]
    if edge.guard is None:
        raise MutationError(f"edge {edge.describe()} has no guard to shift")
    aut.edges[pos] = replace(edge, guard=_shift_literals(edge.guard, delta))
    return mutant.prepare()


def widen_invariant(
    network: Network, automaton: str, location: str, delta: int
) -> Network:
    """Shift the invariant bound of a location by ``delta`` (may widen or
    narrow; widening lets a mutant produce outputs later than the spec)."""
    mutant = clone_network(network, f"-inv{delta:+d}")
    aut = mutant.automaton(automaton)
    loc = aut.locations.get(location)
    if loc is None or loc.invariant is None:
        raise MutationError(f"{automaton}.{location} has no invariant")
    loc.invariant = _shift_literals(loc.invariant, delta)
    return mutant.prepare()


def retarget_edge(network: Network, new_target: str, **criteria) -> Network:
    """Point the selected edge at a different target location."""
    mutant = clone_network(network, f"-to-{new_target}")
    aut, pos = _single_edge(mutant, **criteria)
    if new_target not in aut.locations:
        raise MutationError(f"unknown target {aut.name}.{new_target}")
    aut.edges[pos] = replace(aut.edges[pos], target=new_target)
    return mutant.prepare()


def swap_output_channel(network: Network, new_channel: str, **criteria) -> Network:
    """Replace the selected edge's output channel (wrong output fault)."""
    mutant = clone_network(network, f"-says-{new_channel}")
    if new_channel not in mutant.channels:
        raise MutationError(f"unknown channel {new_channel}")
    aut, pos = _single_edge(mutant, **criteria)
    edge = aut.edges[pos]
    if edge.sync is None:
        raise MutationError(f"edge {edge.describe()} has no sync to swap")
    aut.edges[pos] = replace(edge, sync=(new_channel, edge.sync[1]))
    return mutant.prepare()


def drop_edge(network: Network, **criteria) -> Network:
    """Remove the selected edge entirely (missing behaviour)."""
    mutant = clone_network(network, "-dropped")
    aut, pos = _single_edge(mutant, **criteria)
    del aut.edges[pos]
    return mutant.prepare()


def add_spurious_edge(
    network: Network,
    automaton: str,
    source: str,
    target: str,
    *,
    guard: Optional[str] = None,
    sync: Optional[str] = None,
    assign: Optional[str] = None,
) -> Network:
    """Add an edge the specification does not have (extra behaviour)."""
    mutant = clone_network(network, "-spurious")
    aut = mutant.automaton(automaton)
    sync_pair = None
    if sync is not None:
        sync = sync.strip()
        sync_pair = (sync[:-1], sync[-1])
    aut.add_edge(
        Edge(
            automaton=automaton,
            source=source,
            target=target,
            guard=parse_expression(guard) if guard else None,
            sync=sync_pair,
            assigns=tuple(parse_assignments(assign)) if assign else (),
        )
    )
    return mutant.prepare()


@dataclass(frozen=True)
class Mutant:
    """A named mutant for fault-detection experiments."""

    name: str
    network: Network
    description: str
    # Whether a targeted test for the associated purpose is *expected* to
    # catch it (some mutants are tioco-conforming or off-purpose).
    expected_caught: Optional[bool] = None


# ----------------------------------------------------------------------
# Picklable mutant descriptions (for sharded campaigns)
# ----------------------------------------------------------------------

#: Operator registry: the name half of a :class:`MutantSpec`.
OPERATORS = {
    "shift_guard_constant": shift_guard_constant,
    "widen_invariant": widen_invariant,
    "retarget_edge": retarget_edge,
    "swap_output_channel": swap_output_channel,
    "drop_edge": drop_edge,
    "add_spurious_edge": add_spurious_edge,
}


@dataclass(frozen=True)
class MutantSpec:
    """A mutant as *data*: operator name plus keyword arguments.

    Prepared networks are heavy and mutation is cheap, so the sharded
    fault-detection campaign (:class:`repro.testing.campaign.
    MutationCampaign`) ships these descriptions across the worker pool
    and every worker rebuilds its mutants from the base network —
    picklable by construction, reproducible independent of scheduling.
    """

    name: str
    operator: str
    params: Tuple[Tuple[str, object], ...] = ()
    description: str = ""
    expected_caught: Optional[bool] = None

    @classmethod
    def make(
        cls,
        name: str,
        operator: str,
        description: str = "",
        expected_caught: Optional[bool] = None,
        **params,
    ) -> "MutantSpec":
        """Spec with ``params`` given as keywords (sorted for stability)."""
        if operator not in OPERATORS:
            raise MutationError(
                f"unknown mutation operator {operator!r};"
                f" known: {', '.join(sorted(OPERATORS))}"
            )
        return cls(
            name,
            operator,
            tuple(sorted(params.items())),
            description,
            expected_caught,
        )

    def build(self, network: Network) -> Mutant:
        """Apply the described operator to (a clone of) ``network``."""
        operator = OPERATORS[self.operator]
        return Mutant(
            self.name,
            operator(network, **dict(self.params)),
            self.description or self.name,
            self.expected_caught,
        )

    def footprint(self, network: Network) -> Optional[Dict[str, FrozenSet[str]]]:
        """The mutation's edit footprint on ``network``, or None if unknown.

        **Contract** (what warm-start fixpoint repair relies on —
        :func:`repro.game.warm.warm_solve_mutant`): the footprint maps
        automaton names to the set of *source locations whose outgoing
        behaviour the operator may change*.  Every semantic difference
        between the base network and the mutant must be confined to
        transitions firing from — or delays taken at — a footprint
        location: a joint move of the network that involves no automaton
        at one of its footprint locations must be identical (guards,
        syncs, resets, invariants) in base and mutant.  The repair then
        seeds every mutant-graph node that cannot reach a footprint
        location with the base model's converged winning set (winning
        sets depend only on the forward cone of plays) and recomputes
        only the remainder.

        Per operator: edge mutations (``shift_guard_constant``,
        ``retarget_edge``, ``swap_output_channel``, ``drop_edge``,
        ``add_spurious_edge``) touch exactly the mutated edge's source
        location — a synchronizing partner can only be involved in a
        mutated joint move when this automaton sits at that source.
        ``widen_invariant`` touches the mutated location itself: its
        invariant constrains delays (and urgency) only in states at that
        location.  Returning ``None`` (unresolvable criteria, unknown
        operator extension) makes the campaign fall back to a cold
        solve — fail-soft, never wrong.
        """
        params = dict(self.params)
        try:
            if self.operator == "widen_invariant":
                return {params["automaton"]: frozenset([params["location"]])}
            if self.operator == "add_spurious_edge":
                return {params["automaton"]: frozenset([params["source"]])}
            if self.operator in (
                "shift_guard_constant",
                "retarget_edge",
                "swap_output_channel",
                "drop_edge",
            ):
                criteria = {
                    k: v
                    for k, v in params.items()
                    if k in ("automaton", "source", "target", "sync")
                }
                aut, pos = _single_edge(network, **criteria)
                return {aut.name: frozenset([aut.edges[pos].source])}
        except (MutationError, KeyError):
            return None
        return None
