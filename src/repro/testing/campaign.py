"""Test campaigns: automated strategy-based testing environments.

The paper's future-work item 2 asks for "a fully automated strategy-based
testing environment".  A :class:`TestCampaign` is that environment in
library form:

* takes the composed specification, the plant specification, and a list
  of test purposes;
* synthesizes (and caches) a winning strategy per purpose, falling back
  to cooperative strategies where no winning one exists;
* runs every strategy against an implementation under one or more output
  policies;
* aggregates the verdicts into a :class:`CampaignReport` with the usual
  conformance-testing convention: any ``fail`` makes the implementation
  non-conformant, purposes without winning strategies can only strengthen
  confidence, never prove it.

Example::

    campaign = TestCampaign(arena, plant, [TP1, TP2, TP3])
    report = campaign.run(lambda: SimulatedImplementation(imp_sys, LazyPolicy()))
    print(report.summary())

:class:`MutationCampaign` is the *fault-detection* face of the same
environment (future-work item 3): a pool of mutants described as
picklable :class:`~repro.testing.mutants.MutantSpec` data is swept
against the synthesized strategies under several output policies, and —
mutants being independent — the sweep shards across CPU cores through
:mod:`repro.par` with per-worker strategy caches, deterministic results
for every ``jobs`` value, and merged op counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..game.cooperative import CooperativeStrategy
from ..game.solver import GameResult, TwoPhaseSolver
from ..game.strategy import Strategy
from ..par import steal_map
from ..semantics.system import System
from ..tctl.query import Query, parse_query
from .executor import execute_test
from .implementation import (
    EagerPolicy,
    LazyPolicy,
    QuiescentPolicy,
    RandomPolicy,
    SimulatedImplementation,
)
from .mutants import MutantSpec
from .session import SessionConfig, resolve_session_config
from .trace import FAIL, INCONCLUSIVE, PASS, TestRun


@dataclass
class PurposeOutcome:
    """One purpose's synthesized strategy and its execution results."""

    purpose: str
    winning: bool
    strategy_states: int
    runs: List[TestRun] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        if any(run.failed for run in self.runs):
            return FAIL
        if all(run.passed for run in self.runs) and self.runs:
            return PASS
        return INCONCLUSIVE


@dataclass
class CampaignReport:
    """Aggregate result of a campaign against one implementation."""

    outcomes: List[PurposeOutcome]

    @property
    def conformant(self) -> Optional[bool]:
        """False if any run failed (sound); None if nothing conclusive."""
        if any(o.verdict == FAIL for o in self.outcomes):
            return False
        if any(o.verdict == PASS for o in self.outcomes):
            return None  # passes build confidence but cannot prove tioco
        return None

    @property
    def failed_purposes(self) -> List[str]:
        return [o.purpose for o in self.outcomes if o.verdict == FAIL]

    def summary(self) -> str:
        lines = []
        for outcome in self.outcomes:
            mode = "winning" if outcome.winning else "cooperative"
            lines.append(
                f"{outcome.verdict.upper():12s} {outcome.purpose}"
                f"  [{mode} strategy, {outcome.strategy_states} states,"
                f" {len(outcome.runs)} run(s)]"
            )
            for run in outcome.runs:
                if run.failed:
                    lines.append(f"    failing trace: {run.trace} — {run.reason}")
        verdict = (
            "NON-CONFORMANT (tioco violated)"
            if self.conformant is False
            else "no violation found"
        )
        lines.append(f"overall: {verdict}")
        return "\n".join(lines)


class TestCampaign:
    """Synthesize once, test many implementations."""

    def __init__(
        self,
        arena: System,
        plant: System,
        purposes: Sequence[Union[str, Query]],
        *,
        time_limit: Optional[float] = None,
        allow_cooperative: bool = True,
        warm_cache: Optional[str] = None,
    ):
        self.arena = arena
        self.plant = plant
        self.time_limit = time_limit
        self.allow_cooperative = allow_cooperative
        #: Win-set solve cache directory (:mod:`repro.game.warm`): purposes
        #: synthesized by any campaign sharing the directory — including
        #: other worker processes and past runs — are restored instead of
        #: re-solved.  ``None`` keeps the historical always-cold behaviour.
        self.warm_cache = warm_cache
        self.queries: List[Query] = [
            q if isinstance(q, Query) else parse_query(q) for q in purposes
        ]
        self._strategies: Dict[str, object] = {}
        self._results: Dict[str, GameResult] = {}
        self._warm = None
        if warm_cache is not None:
            from ..game.warm import resolve_cache

            self._warm = resolve_cache(warm_cache)

    # ------------------------------------------------------------------

    def strategy_for(self, query: Query):
        """Synthesize (cached) the strategy for one purpose."""
        key = str(query)
        if key in self._strategies:
            return self._strategies[key]
        if self._warm is not None:
            from ..game.warm import warm_solve

            result = warm_solve(
                self.arena, query, cache=self._warm, time_limit=self.time_limit
            )
        else:
            solver = TwoPhaseSolver(
                self.arena, query, time_limit=self.time_limit
            )
            result = solver.solve()
        self._results[key] = result
        if result.winning:
            strategy: object = Strategy(result)
        elif self.allow_cooperative:
            strategy = CooperativeStrategy(result)
        else:
            strategy = None
        self._strategies[key] = strategy
        return strategy

    def synthesize_all(self) -> Dict[str, bool]:
        """Pre-compute every strategy; returns purpose -> winning flag."""
        out = {}
        for query in self.queries:
            self.strategy_for(query)
            out[str(query)] = self._results[str(query)].winning
        return out

    # ------------------------------------------------------------------

    def run(
        self,
        implementation_factory: Callable[[], SimulatedImplementation],
        *,
        config: Optional[SessionConfig] = None,
        repetitions: Optional[int] = None,
        max_iterations: Optional[int] = None,
        max_states: Optional[int] = None,
    ) -> CampaignReport:
        """Test one implementation against every purpose.

        ``implementation_factory`` builds a *fresh* implementation per run
        (runs must not leak state into each other).  Session knobs (the
        monitor's ``max_states`` budget, the iteration budget, the number
        of repetitions per purpose) ride in ``config``; the bare keyword
        forms are deprecated shims.
        """
        config = resolve_session_config(
            config,
            repetitions=repetitions,
            max_iterations=max_iterations,
            max_states=max_states,
        )
        outcomes = []
        for query in self.queries:
            strategy = self.strategy_for(query)
            result = self._results[str(query)]
            outcome = PurposeOutcome(
                str(query),
                result.winning,
                getattr(strategy, "size", 0) if strategy is not None else 0,
            )
            if strategy is not None:
                for _ in range(config.repetitions):
                    imp = implementation_factory()
                    outcome.runs.append(
                        execute_test(strategy, self.plant, imp, config=config)
                    )
            outcomes.append(outcome)
        return CampaignReport(outcomes)


# ----------------------------------------------------------------------
# Mutation-detection campaigns (sharded)
# ----------------------------------------------------------------------

#: Default policy sweep of a mutation-detection campaign.  Policies are
#: named by strings (``random:SEED`` carries its seed) so a sweep is
#: picklable and seed-stable across the worker pool.
DEFAULT_POLICIES: Tuple[str, ...] = (
    "eager",
    "lazy",
    "quiescent",
    "random:0",
    "random:1",
)


def make_policy(spec: str):
    """A fresh output policy from its string form."""
    if spec == "eager":
        return EagerPolicy()
    if spec == "lazy":
        return LazyPolicy()
    if spec == "quiescent":
        return QuiescentPolicy()
    if spec.startswith("random:"):
        return RandomPolicy(int(spec.split(":", 1)[1]))
    raise ValueError(
        f"unknown policy {spec!r}; known: eager, lazy, quiescent, random:SEED"
    )


@dataclass(frozen=True)
class MutantOutcome:
    """One mutant's fate against the whole purpose × policy sweep."""

    name: str
    caught: bool
    #: (purpose, policy) of the first failing execution, if any.
    caught_by: Optional[Tuple[str, str]]
    expected_caught: Optional[bool]
    description: str = ""

    @property
    def surprising(self) -> bool:
        """Whether the outcome contradicts the mutant's expectation."""
        return (
            self.expected_caught is not None
            and self.caught != self.expected_caught
        )


@dataclass
class MutationReport:
    """Aggregate kill-rate report of a mutation-detection campaign."""

    outcomes: List[MutantOutcome]

    @property
    def killed(self) -> int:
        return sum(1 for o in self.outcomes if o.caught)

    @property
    def surprises(self) -> List[MutantOutcome]:
        return [o for o in self.outcomes if o.surprising]

    def summary(self) -> str:
        lines = []
        for outcome in self.outcomes:
            verdict = "KILLED" if outcome.caught else "survived"
            via = (
                f"  [{outcome.caught_by[0]} / {outcome.caught_by[1]}]"
                if outcome.caught_by
                else ""
            )
            mark = "  (UNEXPECTED)" if outcome.surprising else ""
            lines.append(f"{verdict:9s} {outcome.name}{via}{mark}")
        lines.append(
            f"mutation score: {self.killed}/{len(self.outcomes)}"
            + (f", {len(self.surprises)} unexpected" if self.surprises else "")
        )
        return "\n".join(lines)


# Per-process strategy cache: synthesis is the expensive, shareable part
# of a mutation campaign, so each worker solves every purpose once and
# reuses the strategies across all the mutants it is handed.  Keyed by
# the campaign's picklable identity (factories are module-level
# callables, purposes are strings).
_CAMPAIGN_CACHE: Dict[tuple, TestCampaign] = {}


def _cached_campaign(
    arena_factory: Callable,
    plant_factory: Callable,
    purposes: Tuple[str, ...],
    time_limit: Optional[float],
    allow_cooperative: bool,
    warm_cache: Optional[str] = None,
) -> TestCampaign:
    key = (
        arena_factory,
        plant_factory,
        purposes,
        time_limit,
        allow_cooperative,
        warm_cache,
    )
    campaign = _CAMPAIGN_CACHE.get(key)
    if campaign is None:
        campaign = TestCampaign(
            System(arena_factory()),
            System(plant_factory()),
            purposes,
            time_limit=time_limit,
            allow_cooperative=allow_cooperative,
            warm_cache=warm_cache,
        )
        _CAMPAIGN_CACHE[key] = campaign
    return campaign


def _detect_one(
    arena_factory: Callable,
    plant_factory: Callable,
    purposes: Tuple[str, ...],
    time_limit: Optional[float],
    allow_cooperative: bool,
    warm_cache: Optional[str],
    spec: MutantSpec,
    config: SessionConfig,
) -> MutantOutcome:
    """One mutant's sweep (module-level: the pool's unit of work)."""
    campaign = _cached_campaign(
        arena_factory,
        plant_factory,
        purposes,
        time_limit,
        allow_cooperative,
        warm_cache,
    )
    mutant = spec.build(plant_factory())
    mutant_system = System(mutant.network)
    policies = config.policies or DEFAULT_POLICIES
    for query in campaign.queries:
        strategy = campaign.strategy_for(query)
        if strategy is None:
            continue
        for policy in policies:
            for _ in range(config.repetitions):
                imp = SimulatedImplementation(mutant_system, make_policy(policy))
                run = execute_test(
                    strategy, campaign.plant, imp, config=config
                )
                if run.failed:
                    return MutantOutcome(
                        spec.name,
                        True,
                        (str(query), policy),
                        spec.expected_caught,
                        spec.description,
                    )
    return MutantOutcome(
        spec.name, False, None, spec.expected_caught, spec.description
    )


class MutationCampaign:
    """Sharded fault-detection sweeps: purposes × mutants × policies.

    ``arena_factory`` / ``plant_factory`` must be *module-level* callables
    returning prepared networks (the composed game arena and the plant
    specification): workers import them by reference, build their own
    systems, and cache the synthesized strategies per process — nothing
    heavier than a :class:`~repro.testing.mutants.MutantSpec` crosses the
    pool.  Outcomes are deterministic for every ``jobs`` value: mutants
    are rebuilt from specs, policies are seed-named, and results come
    back in mutant order.
    """

    def __init__(
        self,
        arena_factory: Callable,
        plant_factory: Callable,
        purposes: Sequence[Union[str, Query]],
        *,
        time_limit: Optional[float] = None,
        allow_cooperative: bool = True,
        warm_cache: Optional[str] = None,
    ):
        self.arena_factory = arena_factory
        self.plant_factory = plant_factory
        self.purposes: Tuple[str, ...] = tuple(str(q) for q in purposes)
        self.time_limit = time_limit
        self.allow_cooperative = allow_cooperative
        #: Directory of the shared win-set solve cache (picklable: the
        #: path string crosses the pool, every worker opens its own
        #: handle).  Lets the per-worker strategy caches start warm —
        #: one worker's (or a past campaign's) synthesis serves them all.
        self.warm_cache = warm_cache

    def detect(
        self,
        spec: MutantSpec,
        *,
        config: Optional[SessionConfig] = None,
        policies: Optional[Sequence[str]] = None,
        repetitions: Optional[int] = None,
        max_iterations: Optional[int] = None,
        max_states: Optional[int] = None,
    ) -> MutantOutcome:
        """One mutant's sweep, in-process."""
        config = resolve_session_config(
            config,
            policies=policies,
            repetitions=repetitions,
            max_iterations=max_iterations,
            max_states=max_states,
        )
        return _detect_one(
            self.arena_factory,
            self.plant_factory,
            self.purposes,
            self.time_limit,
            self.allow_cooperative,
            self.warm_cache,
            spec,
            config,
        )

    def run(
        self,
        specs: Sequence[MutantSpec],
        *,
        jobs: int = 1,
        config: Optional[SessionConfig] = None,
        policies: Optional[Sequence[str]] = None,
        repetitions: Optional[int] = None,
        max_iterations: Optional[int] = None,
        max_states: Optional[int] = None,
    ) -> MutationReport:
        """Sweep every mutant, sharded over ``jobs`` worker processes.

        Dispatch is work-stealing (:func:`repro.par.steal_map`): mutant
        cost varies wildly with how fast a strategy kills it, so
        single-task dispatch keeps the pool busy where chunking would
        straggle.  The per-process strategy cache still amortizes
        synthesis — every worker solves each purpose at most once,
        whichever mutants it happens to steal.  Session knobs (policy
        sweep, repetitions, budgets) ride in the picklable ``config``;
        the bare keyword forms are deprecated shims.
        """
        config = resolve_session_config(
            config,
            policies=policies,
            repetitions=repetitions,
            max_iterations=max_iterations,
            max_states=max_states,
        )
        tasks = [
            (
                self.arena_factory,
                self.plant_factory,
                self.purposes,
                self.time_limit,
                self.allow_cooperative,
                self.warm_cache,
                spec,
                config,
            )
            for spec in specs
        ]
        return MutationReport(list(steal_map(_detect_one, tasks, jobs=jobs)))
