"""Test campaigns: automated strategy-based testing environments.

The paper's future-work item 2 asks for "a fully automated strategy-based
testing environment".  A :class:`TestCampaign` is that environment in
library form:

* takes the composed specification, the plant specification, and a list
  of test purposes;
* synthesizes (and caches) a winning strategy per purpose, falling back
  to cooperative strategies where no winning one exists;
* runs every strategy against an implementation under one or more output
  policies;
* aggregates the verdicts into a :class:`CampaignReport` with the usual
  conformance-testing convention: any ``fail`` makes the implementation
  non-conformant, purposes without winning strategies can only strengthen
  confidence, never prove it.

Example::

    campaign = TestCampaign(arena, plant, [TP1, TP2, TP3])
    report = campaign.run(lambda: SimulatedImplementation(imp_sys, LazyPolicy()))
    print(report.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..game.cooperative import CooperativeStrategy
from ..game.solver import GameResult, TwoPhaseSolver
from ..game.strategy import Strategy
from ..semantics.system import System
from ..tctl.query import Query, parse_query
from .executor import execute_test
from .implementation import SimulatedImplementation
from .trace import FAIL, INCONCLUSIVE, PASS, TestRun


@dataclass
class PurposeOutcome:
    """One purpose's synthesized strategy and its execution results."""

    purpose: str
    winning: bool
    strategy_states: int
    runs: List[TestRun] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        if any(run.failed for run in self.runs):
            return FAIL
        if all(run.passed for run in self.runs) and self.runs:
            return PASS
        return INCONCLUSIVE


@dataclass
class CampaignReport:
    """Aggregate result of a campaign against one implementation."""

    outcomes: List[PurposeOutcome]

    @property
    def conformant(self) -> Optional[bool]:
        """False if any run failed (sound); None if nothing conclusive."""
        if any(o.verdict == FAIL for o in self.outcomes):
            return False
        if any(o.verdict == PASS for o in self.outcomes):
            return None  # passes build confidence but cannot prove tioco
        return None

    @property
    def failed_purposes(self) -> List[str]:
        return [o.purpose for o in self.outcomes if o.verdict == FAIL]

    def summary(self) -> str:
        lines = []
        for outcome in self.outcomes:
            mode = "winning" if outcome.winning else "cooperative"
            lines.append(
                f"{outcome.verdict.upper():12s} {outcome.purpose}"
                f"  [{mode} strategy, {outcome.strategy_states} states,"
                f" {len(outcome.runs)} run(s)]"
            )
            for run in outcome.runs:
                if run.failed:
                    lines.append(f"    failing trace: {run.trace} — {run.reason}")
        verdict = (
            "NON-CONFORMANT (tioco violated)"
            if self.conformant is False
            else "no violation found"
        )
        lines.append(f"overall: {verdict}")
        return "\n".join(lines)


class TestCampaign:
    """Synthesize once, test many implementations."""

    def __init__(
        self,
        arena: System,
        plant: System,
        purposes: Sequence[Union[str, Query]],
        *,
        time_limit: Optional[float] = None,
        allow_cooperative: bool = True,
    ):
        self.arena = arena
        self.plant = plant
        self.time_limit = time_limit
        self.allow_cooperative = allow_cooperative
        self.queries: List[Query] = [
            q if isinstance(q, Query) else parse_query(q) for q in purposes
        ]
        self._strategies: Dict[str, object] = {}
        self._results: Dict[str, GameResult] = {}

    # ------------------------------------------------------------------

    def strategy_for(self, query: Query):
        """Synthesize (cached) the strategy for one purpose."""
        key = str(query)
        if key in self._strategies:
            return self._strategies[key]
        solver = TwoPhaseSolver(self.arena, query, time_limit=self.time_limit)
        result = solver.solve()
        self._results[key] = result
        if result.winning:
            strategy: object = Strategy(result)
        elif self.allow_cooperative:
            strategy = CooperativeStrategy(result)
        else:
            strategy = None
        self._strategies[key] = strategy
        return strategy

    def synthesize_all(self) -> Dict[str, bool]:
        """Pre-compute every strategy; returns purpose -> winning flag."""
        out = {}
        for query in self.queries:
            self.strategy_for(query)
            out[str(query)] = self._results[str(query)].winning
        return out

    # ------------------------------------------------------------------

    def run(
        self,
        implementation_factory: Callable[[], SimulatedImplementation],
        *,
        repetitions: int = 1,
        max_iterations: int = 10_000,
    ) -> CampaignReport:
        """Test one implementation against every purpose.

        ``implementation_factory`` builds a *fresh* implementation per run
        (runs must not leak state into each other).
        """
        outcomes = []
        for query in self.queries:
            strategy = self.strategy_for(query)
            result = self._results[str(query)]
            outcome = PurposeOutcome(
                str(query),
                result.winning,
                getattr(strategy, "size", 0) if strategy is not None else 0,
            )
            if strategy is not None:
                for _ in range(repetitions):
                    imp = implementation_factory()
                    outcome.runs.append(
                        execute_test(
                            strategy, self.plant, imp, max_iterations=max_iterations
                        )
                    )
            outcomes.append(outcome)
        return CampaignReport(outcomes)
