"""Environment-relativized conformance: rtioco (paper §2.3, via [11]).

``rtioco`` relativizes conformance to an explicit environment model: the
implementation only has to conform on behaviours the environment can
actually exercise, and — dually — an output the *composed* specification
cannot accept (because the environment model never listens for it there)
is a violation even if the plant spec alone would allow it.

:class:`RelativizedMonitor` tracks the composed (plant ∥ environment)
specification state.  Inputs are reported as full composed moves (the
tester knows which environment edge it took, including value-passing
variants); outputs and delays are checked against what the composed model
admits.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from ..semantics.state import ConcreteState
from ..semantics.system import Move, System
from .tioco import Quiescence


class RelativizedMonitor:
    """Tracks ``(plant ∥ env) After σ`` for rtioco checking."""

    def __init__(self, composed_spec: System):
        self.spec = composed_spec
        self.state: ConcreteState = composed_spec.initial_concrete()
        self.violation: Optional[str] = None
        self._settle()

    # ------------------------------------------------------------------

    def reset(self) -> None:
        self.state = self.spec.initial_concrete()
        self.violation = None
        self._settle()

    @property
    def ok(self) -> bool:
        return self.violation is None

    def _fail(self, reason: str) -> bool:
        self.violation = reason
        return False

    def _settle(self) -> None:
        """Resolve committed internal moves (deterministic specs).

        Urgent states follow the same rule as :class:`TiocoMonitor`: when
        only urgent locations freeze time and the composed model offers an
        observable output at this instant, the state is settled as-is and
        the freeze resolves through :meth:`observe_output` /
        :meth:`observe_move` at delay 0.
        """
        for _ in range(64):
            if self.spec.can_delay(self.state.locs):
                return
            if not self.spec.has_committed(self.state.locs) and self.spec.enabled_now(
                self.state, directions=("output",)
            ):
                return  # urgent-only freeze with an observable resolution
            fired = False
            for move, _ in self.spec.enabled_now(
                self.state, directions=("internal",)
            ):
                nxt = self.spec.fire(self.state, move)
                if nxt is not None:
                    self.state = nxt
                    fired = True
                    break
            if not fired:
                return

    # ------------------------------------------------------------------
    # Out(state) under the environment
    # ------------------------------------------------------------------

    def allowed_outputs(self) -> List[str]:
        return sorted(
            {
                move.label
                for move, _ in self.spec.enabled_now(
                    self.state, directions=("output",)
                )
            }
        )

    def max_quiescence(self) -> Quiescence:
        bound, strict = self.spec.max_delay(self.state)
        return Quiescence(bound, strict)

    # ------------------------------------------------------------------
    # Trace extension
    # ------------------------------------------------------------------

    def advance(self, d: Fraction) -> bool:
        if not self.ok:
            return False
        if d == 0:
            return True
        if not self.max_quiescence().allows(d):
            return self._fail(
                f"quiescence of {d} exceeds the composed specification's"
                f" bound {self.max_quiescence().bound} (rtioco)"
            )
        self.state = self.state.delayed(d)
        return True

    def observe_move(self, move: Move) -> bool:
        """The tester's own (environment-chosen) input move."""
        if not self.ok:
            return False
        nxt = self.spec.fire(self.state, move)
        if nxt is None:
            return self._fail(
                f"input move {move.label} not enabled in the composed"
                f" specification (environment model violated?)"
            )
        self.state = nxt
        self._settle()
        return True

    def observe_output(self, label: str) -> bool:
        if not self.ok:
            return False
        for move, _ in self.spec.enabled_now(self.state, directions=("output",)):
            if move.label != label:
                continue
            nxt = self.spec.fire(self.state, move)
            if nxt is not None:
                self.state = nxt
                self._settle()
                return True
        return self._fail(
            f"output {label}! not admitted by the composed specification"
            f" here (allowed: {self.allowed_outputs() or 'none'}) (rtioco)"
        )


#: The paper calls the relativized relation *rtioco*; expose the monitor
#: under that name as well.
RtiocoMonitor = RelativizedMonitor
