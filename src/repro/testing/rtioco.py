"""Environment-relativized conformance: rtioco (paper §2.3, via [11]).

``rtioco`` relativizes conformance to an explicit environment model: the
implementation only has to conform on behaviours the environment can
actually exercise, and — dually — an output the *composed* specification
cannot accept (because the environment model never listens for it there)
is a violation even if the plant spec alone would allow it.

:class:`RelativizedMonitor` tracks the composed (plant ∥ environment)
specification state.  When the composed network declares an interface
partition, the monitor enumerates it under the *partial* semantics: only
boundary channels are observable at the test interface, and plant-side
synchronizations on internalised channels become hidden moves.  Hidden
timed moves make ``After σ`` a set of states, tracked symbolically by
:class:`repro.semantics.compose.StateEstimate`; without them the monitor
keeps one exact :class:`ConcreteState` as before.  The exact/estimated
plumbing is shared with :class:`TiocoMonitor` through
:class:`~repro.testing.tioco.SpecMonitorBase`.

Inputs may be reported either as full composed moves (the tester knows
which environment edge it took, including value-passing variants —
:meth:`observe_move`) or by label (:meth:`observe_input`); outputs and
delays are checked against what the composed model admits.

Caveat of the partial semantics for *composed* specs: a boundary channel
the composition cannot pair (e.g. an environment model that never emits
an input the plant listens for) fires as a solo half, so the monitor
accepts it even though the in-model environment could never produce it —
the closed semantics would treat the channel as dead.  Declare such
channels *internalised* (off the interface) if the environment model's
restrictions must be enforced; the boundary is for channels genuinely
open to the world outside the composition.
"""

from __future__ import annotations

from fractions import Fraction

from ..semantics.system import CLOSED, Move
from .tioco import Quiescence, SpecMonitorBase, SpecNondeterminism

__all__ = ["Quiescence", "RelativizedMonitor", "RtiocoMonitor"]


class RelativizedMonitor(SpecMonitorBase):
    """Tracks ``(plant ∥ env) After σ`` for rtioco checking."""

    _fallback_mode = CLOSED

    def _settle(self) -> None:
        """Resolve committed internal moves (deterministic specs).

        Urgent states follow the same rule as :class:`TiocoMonitor`: when
        only urgent locations freeze time and the composed model offers an
        observable output at this instant, the state is settled as-is and
        the freeze resolves through :meth:`observe_output` /
        :meth:`observe_move` at delay 0.
        """
        for _ in range(64):
            if self.spec.can_delay(self.state.locs):
                return
            if not self.spec.has_committed(self.state.locs) and self.spec.enabled_now(
                self.state, mode=self.mode, directions=("output",)
            ):
                return  # urgent-only freeze with an observable resolution
            fired = False
            for move, _ in self.spec.enabled_now(
                self.state, mode=self.mode, directions=("internal",)
            ):
                nxt = self.spec.fire(self.state, move)
                if nxt is not None:
                    self.state = nxt
                    fired = True
                    break
            if not fired:
                return

    def _quiescence_message(self, d: Fraction) -> str:
        if self.estimated:
            return (
                f"quiescence of {d} not admitted by any run of the composed"
                f" specification (rtioco)"
            )
        return (
            f"quiescence of {d} exceeds the composed specification's bound"
            f" {self.max_quiescence().bound} (rtioco)"
        )

    # ------------------------------------------------------------------
    # Trace extension
    # ------------------------------------------------------------------

    def observe_move(self, move: Move) -> bool:
        """The tester's own (environment-chosen) input move.

        The *specific* move is applied — value-passing variants sharing a
        label stay distinguished — in both tracking modes.
        """
        if not self.ok:
            return False
        if self._estimate is not None:
            if not self._estimate.observe_move(move):
                return self._fail(
                    f"input move {move.label} not enabled in the composed"
                    f" specification (environment model violated?)"
                )
            return True
        nxt = self.spec.fire(self.state, move)
        if nxt is None:
            return self._fail(
                f"input move {move.label} not enabled in the composed"
                f" specification (environment model violated?)"
            )
        self.state = nxt
        self._settle()
        return True

    def observe_input(self, label: str) -> bool:
        """An input reported by label only (any enabled composed move)."""
        if not self.ok:
            return False
        if self._estimate is not None:
            if not self._estimate.observe(label, "input"):
                return self._fail(
                    f"input {label} not enabled in the composed"
                    f" specification (environment model violated?)"
                )
            return True
        successors = []
        for move, _ in self.spec.enabled_now(
            self.state, mode=self.mode, directions=("input",)
        ):
            if move.label != label:
                continue
            nxt = self.spec.fire(self.state, move)
            if nxt is not None:
                successors.append(nxt)
        if not successors:
            return self._fail(
                f"input {label} not enabled in the composed specification"
                f" (environment model violated?)"
            )
        if len(set(successors)) > 1:
            raise SpecNondeterminism(
                f"composed specification is nondeterministic on input {label}"
            )
        self.state = successors[0]
        self._settle()
        return True

    def observe_output(self, label: str) -> bool:
        if not self.ok:
            return False
        if self._estimate is not None:
            if not self._estimate.observe(label, "output"):
                return self._fail(
                    f"output {label}! not admitted by the composed"
                    f" specification here (allowed:"
                    f" {self.allowed_outputs() or 'none'}) (rtioco)"
                )
            return True
        for move, _ in self.spec.enabled_now(
            self.state, mode=self.mode, directions=("output",)
        ):
            if move.label != label:
                continue
            nxt = self.spec.fire(self.state, move)
            if nxt is not None:
                self.state = nxt
                self._settle()
                return True
        return self._fail(
            f"output {label}! not admitted by the composed specification"
            f" here (allowed: {self.allowed_outputs() or 'none'}) (rtioco)"
        )


#: The paper calls the relativized relation *rtioco*; expose the monitor
#: under that name as well.
RtiocoMonitor = RelativizedMonitor
