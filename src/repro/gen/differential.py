"""The differential oracle harness over generated instances.

For every generated instance the harness cross-checks independent
implementations of the same mathematical object against each other — no
hand-written expected outputs, only internal consistency:

``solvers``
    :class:`TwoPhaseSolver` and :class:`OnTheFlySolver` must return the
    same verdict; the on-the-fly winning federations (an intentional
    under-approximation when it stops early) must be included in the
    exhaustive two-phase ones per discrete state, with exact equality
    required on lost games (both converge to the full fixpoint); and the
    two-phase winning sets must be a genuine fixpoint of the documented
    update equation.

``semantics``
    Random concrete (`Fraction`-exact) runs are replayed against the
    symbolic zone semantics step by step: every delayed state must stay
    inside the delay-closed zone, every fired transition must land inside
    the symbolic ``post``, and a refused concrete transition must also be
    refused symbolically.

``conformance``
    A plant must conform to itself: a :class:`SimulatedImplementation`
    interpreting the plant (under eager / lazy / random output policies)
    is monitored by a :class:`TiocoMonitor` of the same plant and a
    :class:`RelativizedMonitor` of the plant composed with the permissive
    environment.  The paper's relativization collapses to plain tioco
    under a universal environment, so *any* reported violation by either
    monitor is a real disagreement between the interpreter and a monitor.
    Multi-automaton plants run through the *partial* semantics: the
    interpreter fires internalised syncs as hidden moves at policy-chosen
    times, and the monitors track the resulting state *set* symbolically
    — every generated family exercises the oracle, none is skipped.

``composition``
    Partial composition against an in-model environment must agree
    move-for-move with the flat closed product when the declared boundary
    is empty: over the reachable closed state graph, the two enumeration
    modes must produce the same synchronizations (identical participating
    edges and labels), with internalised syncs relabelled ``internal``
    and made uncontrollable.

``estimate``
    The batched (stacked-kernel) and per-zone implementations of
    :class:`StateEstimate` must agree observation by observation: one
    seeded monitor session drives both side by side and compares the
    quiescence bound, the enabled input/output labels, and every
    delay/action verdict — including rational delays that force integer
    rescaling.

Failing instances are shrunk greedily at the spec level (drop edges,
clear guards/invariants/assignments) while re-running only the failing
check, and reported with the reproducing seed.

Campaigns shard across CPU cores (``run_campaign(jobs=N)``, CLI
``--jobs N|auto``) through :mod:`repro.par`: instances are independent
and seed-derived, workers return reports in instance order, failure
seeds funnel back to the parent for *serial* shrinking, and per-worker
op counters merge into the parent — so the campaign report is
byte-identical for every ``jobs`` value given the same seed and count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .. import faults
from ..dbm import Federation, bound
from ..dbm import backends as dbm_backends
from ..dbm import stack as _sk
from ..dbm.backends.numba_backend import python_kernels
from ..game.solver import GameResult, OnTheFlySolver, TwoPhaseSolver
from ..graph.explorer import ExplorationLimit, SimulationGraph
from ..par import steal_map
from ..semantics.compose import EstimateLimit, StateEstimate
from ..semantics.system import PARTIAL, DelayInterval, System
from ..tctl.query import parse_query
from ..testing import (
    EagerPolicy,
    LazyPolicy,
    Quiescence,
    RandomPolicy,
    RelativizedMonitor,
    SimulatedImplementation,
    SpecNondeterminism,
    TiocoMonitor,
)
from ..util import counters
from .networks import (
    DEFAULT_FAMILIES,
    GenConfig,
    GeneratedInstance,
    NetSpec,
    generate_instance,
    mutate_instance,
)
from .zones import check_zone_algebra, random_zone

OK, SKIP, FAIL = "ok", "skip", "fail"


@dataclass(frozen=True)
class DiffConfig:
    """Effort knobs of the differential checks."""

    max_nodes: int = 4000
    time_limit: Optional[float] = None
    sim_runs: int = 2
    sim_steps: int = 30
    conf_steps: int = 25
    check_fixpoint: bool = True
    #: Exploration budget of the closed-product walk in the composition
    #: check (compared state-by-state against partial enumeration).
    composition_nodes: int = 2000
    #: Symbolic state-set budget of the monitors and estimates
    #: (:class:`SpecMonitorBase` / :class:`StateEstimate` ``max_states``).
    #: Deep-fuzz raises it (CLI ``--max-estimate-states``) to turn
    #: budget SKIPs on hidden-move-rich instances into real runs.
    max_estimate_states: int = 256
    #: Shared win-set solve cache directory (:mod:`repro.game.warm`,
    #: CLI ``--warm-cache``) consulted by the ``warmstart`` check's
    #: base/mutant solves.  ``None`` keeps the check self-contained in a
    #: fresh in-memory cache.  Check *results* never depend on cache
    #: state — a warm path either reproduces the cold fixpoint exactly
    #: or the check fails — so the byte-identical-report guarantee
    #: across ``--jobs`` values and resumes is unaffected.
    warm_cache_dir: Optional[str] = None


@dataclass(frozen=True)
class CheckResult:
    name: str
    status: str  # 'ok' | 'skip' | 'fail'
    detail: str = ""


@dataclass
class InstanceReport:
    seed: int
    family: str
    structural_hash: str
    description: str
    results: List[CheckResult] = field(default_factory=list)
    shrunk: Optional[str] = None  # description of the shrunk reproducer
    #: Set when the instance is a corpus-scheduled mutation: the third
    #: integer of the ``mutate_instance(seed, family, mutation_seed)``
    #: reproducer.  ``None`` for plain generated instances.
    mutation_seed: Optional[int] = None
    #: Per-instance op-counter deltas (:func:`repro.util.counters.diff`)
    #: captured around the checks — the corpus coverage signal.  Volatile
    #: (process-global memo caches make deltas scheduling-dependent), so
    #: it never enters the deterministic report payload.
    coverage: Optional[Dict[str, int]] = None

    @property
    def failures(self) -> List[CheckResult]:
        return [r for r in self.results if r.status == FAIL]

    @property
    def ok(self) -> bool:
        return not self.failures

    def reproducer(self) -> str:
        """The one-liner that rebuilds this instance."""
        if self.mutation_seed is None:
            return f"generate_instance({self.seed}, {self.family!r})"
        return (
            f"mutate_instance({self.seed}, {self.family!r},"
            f" {self.mutation_seed})"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (checkpoint journal lines, corpus entries)."""
        return {
            "seed": self.seed,
            "family": self.family,
            "mutation_seed": self.mutation_seed,
            "structural_hash": self.structural_hash,
            "description": self.description,
            "results": [
                {"name": r.name, "status": r.status, "detail": r.detail}
                for r in self.results
            ],
            "shrunk": self.shrunk,
            "coverage": self.coverage,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "InstanceReport":
        return cls(
            seed=payload["seed"],
            family=payload["family"],
            structural_hash=payload["structural_hash"],
            description=payload["description"],
            results=[
                CheckResult(r["name"], r["status"], r.get("detail", ""))
                for r in payload.get("results", ())
            ],
            shrunk=payload.get("shrunk"),
            mutation_seed=payload.get("mutation_seed"),
            coverage=payload.get("coverage"),
        )


# ----------------------------------------------------------------------
# Check: solvers
# ----------------------------------------------------------------------


def _win_by_key(result: GameResult) -> Dict[tuple, Federation]:
    """Per discrete state, the union of node winning federations."""
    out: Dict[tuple, Federation] = {}
    for node in result.graph.nodes:
        win = result.win_of(node)
        if win.is_empty():
            continue
        key = node.sym.key
        out[key] = out[key].union(win) if key in out else win
    return out


def check_solvers(instance: GeneratedInstance, cfg: DiffConfig) -> CheckResult:
    query = parse_query(instance.query)
    system = System(instance.arena)
    try:
        two_solver = TwoPhaseSolver(
            system, query, max_nodes=cfg.max_nodes, time_limit=cfg.time_limit
        )
        two = two_solver.solve()
        otf_solver = OnTheFlySolver(
            system, query, max_nodes=cfg.max_nodes, time_limit=cfg.time_limit
        )
        otf = otf_solver.solve()
    except ExplorationLimit as limit:
        return CheckResult("solvers", SKIP, str(limit))
    if two.winning != otf.winning:
        return CheckResult(
            "solvers",
            FAIL,
            f"verdicts differ: two-phase={two.winning} on-the-fly={otf.winning}",
        )
    two_map = _win_by_key(two)
    otf_map = _win_by_key(otf)
    for key, fed in otf_map.items():
        reference = two_map.get(key)
        if reference is None or not reference.includes(fed):
            return CheckResult(
                "solvers",
                FAIL,
                f"on-the-fly win set at {key} not included in two-phase win",
            )
    # Converged equality: on lost games both solvers already ran the
    # fixpoint to convergence; on won games the on-the-fly solver stopped
    # early, so resume it to convergence first.  Either way the per-state
    # winning sets must then coincide exactly.
    if two.winning:
        try:
            otf_map = _win_by_key(otf_solver.converge())
        except ExplorationLimit as limit:
            return CheckResult("solvers", SKIP, f"convergence resume: {limit}")
    for key, fed in two_map.items():
        reference = otf_map.get(key)
        if reference is None or not reference.includes(fed):
            return CheckResult(
                "solvers",
                FAIL,
                f"two-phase win set at {key} missing from converged"
                f" on-the-fly win",
            )
    for key, fed in otf_map.items():
        reference = two_map.get(key)
        if reference is None or not reference.includes(fed):
            return CheckResult(
                "solvers",
                FAIL,
                f"converged on-the-fly win at {key} exceeds two-phase win",
            )
    if cfg.check_fixpoint:
        for node in two.graph.nodes:
            # recompute_node bypasses the solver's incremental caches, so
            # this doubles as a differential check of the cached _update.
            recomputed = two_solver.recompute_node(node)
            current = two_solver.win_fed(node)
            if not current.includes(recomputed):
                return CheckResult(
                    "solvers", FAIL, f"win set of node {node.id} not a fixpoint"
                )
            if not recomputed.includes(current):
                return CheckResult(
                    "solvers", FAIL, f"win set of node {node.id} shrinks on re-update"
                )
    return CheckResult("solvers", OK)


# ----------------------------------------------------------------------
# Check: symbolic vs concrete semantics
# ----------------------------------------------------------------------


def _random_delay(
    rng: random.Random,
    interval: DelayInterval,
    bound: Optional[Fraction],
    bound_strict: bool,
) -> Optional[Fraction]:
    """A random half-integer delay in ``interval`` capped by the invariant."""
    lo, lo_strict = interval.lo, interval.lo_strict
    hi, hi_strict = interval.hi, interval.hi_strict
    if bound is not None and (hi is None or bound < hi):
        hi, hi_strict = bound, bound_strict
    if hi is not None and (lo > hi or (lo == hi and (lo_strict or hi_strict))):
        return None
    if hi is None:
        hi, hi_strict = lo + 2, False
    grid = [
        d
        for k in range(int((hi - lo) * 2) + 1)
        if (d := lo + Fraction(k, 2)) is not None
        and (d > lo or not lo_strict)
        and (d < hi or (d == hi and not hi_strict))
        and interval.contains(d)
    ]
    if grid:
        return rng.choice(grid)
    mid = (lo + hi) / 2
    return mid if interval.contains(mid) else None


def check_semantics(instance: GeneratedInstance, cfg: DiffConfig) -> CheckResult:
    system = System(instance.arena)
    for run in range(cfg.sim_runs):
        rng = random.Random(instance.seed * 1_000_003 + run)
        state = system.initial_concrete()
        sym = system.initial_symbolic()
        if not state.in_zone(sym.zone):
            return CheckResult(
                "semantics", FAIL, "initial concrete state outside initial zone"
            )
        for step in range(cfg.sim_steps):
            bound, bound_strict = system.max_delay(state)
            candidates: List[Tuple] = []
            for move, interval in system.move_options(state):
                delay = _random_delay(rng, interval, bound, bound_strict)
                if delay is not None:
                    candidates.append((move, delay))
            if not candidates:
                break
            move, delay = rng.choice(candidates)
            delayed = state.delayed(delay)
            if not delayed.in_zone(sym.zone):
                return CheckResult(
                    "semantics",
                    FAIL,
                    f"run {run} step {step}: delay {delay} left the"
                    f" delay-closed zone",
                )
            nxt = system.fire(delayed, move)
            spost = system.post(sym, move)
            if nxt is None:
                if spost is not None:
                    image = list(delayed.clocks)
                    for clock, value in system.resets_of(move):
                        image[clock] = Fraction(value)
                    if (
                        system.apply_move_vars(delayed.vars, move) == spost.vars
                        and spost.zone.contains(image)
                    ):
                        return CheckResult(
                            "semantics",
                            FAIL,
                            f"run {run} step {step}: concrete fire of"
                            f" {move.label} refused but symbolic post admits"
                            f" its image",
                        )
                continue
            if spost is None:
                return CheckResult(
                    "semantics",
                    FAIL,
                    f"run {run} step {step}: fired {move.label} concretely but"
                    f" the symbolic post is empty",
                )
            if spost.locs != nxt.locs or spost.vars != nxt.vars:
                return CheckResult(
                    "semantics",
                    FAIL,
                    f"run {run} step {step}: discrete successor mismatch on"
                    f" {move.label}",
                )
            if not nxt.in_zone(spost.zone):
                return CheckResult(
                    "semantics",
                    FAIL,
                    f"run {run} step {step}: concrete successor of"
                    f" {move.label} outside the symbolic post zone",
                )
            sym = system.delay_closure(spost)
            state = nxt
    return CheckResult("semantics", OK)


# ----------------------------------------------------------------------
# Check: tioco / rtioco self-conformance
# ----------------------------------------------------------------------


def _drive_self_conformance(
    plant_sys: System,
    arena_sys: System,
    policy,
    rng: random.Random,
    steps: int,
    max_states: int = 256,
) -> Optional[str]:
    """Run one self-conformance session; returns a failure detail or None.

    Works for single and composed plants alike: the implementation and
    both monitors enumerate the plant's partial semantics (the networks
    declare their interface partition), and the monitors auto-select
    symbolic state-set tracking when hidden syncs make ``After σ`` a set.
    ``max_states`` bounds both trackers (``DiffConfig.max_estimate_states``).
    """
    imp = SimulatedImplementation(plant_sys, policy)
    monitor = TiocoMonitor(plant_sys, max_states=max_states)
    relativized = RelativizedMonitor(arena_sys, max_states=max_states)

    def observe_output(label: str) -> Optional[str]:
        if not monitor.observe(label, "output"):
            return f"tioco self-violation: {monitor.violation}"
        if not relativized.observe_output(label):
            return f"rtioco disagrees with tioco: {relativized.violation}"
        return None

    for _ in range(steps):
        # Drain zero-delay scheduled outputs / internal steps first, so the
        # implementation state is settled like the monitors'.
        for _drain in range(32):
            scheduled = imp.next_output()
            if scheduled is None or scheduled.delay != 0:
                break
            label = imp.advance(Fraction(0))
            if label is not None:
                failure = observe_output(label)
                if failure:
                    return failure
        else:
            return None  # zero-delay livelock (mutant artifact): end run
        inputs = monitor.enabled_labels("input")
        if inputs and rng.random() < 0.5:
            label = rng.choice(inputs)
            if not imp.give_input(label):
                if monitor.estimated:
                    # Set-based tracking: the estimate admits the input in
                    # *some* hidden-move interleaving, but the
                    # implementation's actual (hidden) state refuses it —
                    # possible only for non-input-enabled specs (drop
                    # mutants).  Nothing was observed; try another round.
                    continue
                return (
                    f"implementation refused input {label} that the identical"
                    f" specification accepts"
                )
            if not monitor.observe(label, "input"):
                return f"tioco monitor refused its own input: {monitor.violation}"
            if not relativized.observe_input(label):
                return f"rtioco input disagreement: {relativized.violation}"
            continue
        scheduled = imp.next_output()
        quiescence = monitor.max_quiescence()
        if scheduled is not None:
            delay = scheduled.delay
        elif quiescence.bound is None:
            delay = Fraction(rng.randint(1, 3))
        elif quiescence.bound > 0:
            delay = quiescence.bound
            if quiescence.strict:
                delay = quiescence.bound / 2
        else:
            if not inputs:
                return None  # genuinely stuck (mutant artifact): end run
            continue
        # Never push the implementation past its *own* invariant bound:
        # with set-tracking monitors the quiescence supremum spans every
        # hidden-move interleaving, which may exceed the bound of the
        # imp's actual reality when a mutant dropped the liveness escape
        # of an invariant location (the imp is then simply timelocked).
        imp_bound, imp_strict = imp.system.max_delay(imp.state)
        if imp_bound is not None and not Quiescence(imp_bound, imp_strict).allows(
            delay
        ):
            delay = imp_bound if not imp_strict else imp_bound / 2
            if delay == 0:
                if not inputs:
                    return None  # imp timelocked (mutant artifact): end run
                continue
        label = imp.advance(delay)
        if not monitor.advance(delay):
            return f"tioco quiescence violation: {monitor.violation}"
        if not relativized.advance(delay):
            return f"rtioco quiescence disagreement: {relativized.violation}"
        if label is not None:
            failure = observe_output(label)
            if failure:
                return failure
    return None


def check_conformance(instance: GeneratedInstance, cfg: DiffConfig) -> CheckResult:
    plant_sys = System(instance.plant)
    arena_sys = System(instance.arena)
    policies = [
        ("eager", EagerPolicy()),
        ("lazy", LazyPolicy()),
        ("random", RandomPolicy(instance.seed & 0xFFFF)),
    ]
    for index, (name, policy) in enumerate(policies):
        rng = random.Random(instance.seed * 7919 + index)
        try:
            failure = _drive_self_conformance(
                plant_sys, arena_sys, policy, rng, cfg.conf_steps,
                max_states=cfg.max_estimate_states,
            )
        except SpecNondeterminism as nondet:
            return CheckResult(
                "conformance", SKIP, f"nondeterministic spec (mutant): {nondet}"
            )
        except EstimateLimit as limit:
            return CheckResult(
                "conformance", SKIP, f"state-estimate budget: {limit}"
            )
        if failure:
            return CheckResult("conformance", FAIL, f"[{name} policy] {failure}")
    return CheckResult("conformance", OK)


# ----------------------------------------------------------------------
# Check: partial composition vs the flat closed product
# ----------------------------------------------------------------------


def check_composition(instance: GeneratedInstance, cfg: DiffConfig) -> CheckResult:
    """Empty-boundary partial composition ≡ the flat closed product.

    Rebuilds the arena (plant + in-model environment) with a declared
    *empty* interface — every pairable channel internalised — and walks
    the closed reachable state graph comparing move enumeration in both
    modes at every node: the same synchronizations (identical
    participating edges and labels) must appear, with every internalised
    sync relabelled ``internal`` and made uncontrollable.
    """
    network = instance.spec.build_arena(interface=())
    system = System(network)
    graph = SimulationGraph(system, max_nodes=cfg.composition_nodes)
    try:
        graph.explore_all()
    except ExplorationLimit:
        pass  # compare over the explored prefix
    for node in graph.nodes:
        locs, vars = node.sym.locs, node.sym.vars
        closed = system.moves_from(locs, vars)
        partial = system.moves_from(locs, vars, PARTIAL)

        def move_key(move):
            return (move.label, tuple((i, e.index) for i, e in move.edges))

        closed_keys = sorted(map(move_key, closed))
        partial_keys = sorted(map(move_key, partial))
        if closed_keys != partial_keys:
            diff = sorted(set(closed_keys) ^ set(partial_keys))
            return CheckResult(
                "composition",
                FAIL,
                f"move sets differ at {locs}: {diff[:3]}"
                f" (closed {len(closed)} vs partial {len(partial)})",
            )
        partial_by = {move_key(move): move for move in partial}
        for move in closed:
            twin = partial_by[move_key(move)]
            has_sync = any(edge.sync is not None for _, edge in move.edges)
            # Hidden (internalised) syncs are relabelled internal and —
            # per the TIOGA convention — uncontrollable; tau edges keep
            # their own direction and controllability.
            expected_dir = "internal" if has_sync else move.direction
            expected_ctl = False if has_sync else move.controllable
            if twin.controllable != expected_ctl:
                return CheckResult(
                    "composition",
                    FAIL,
                    f"controllability of {move.label} at {locs}:"
                    f" partial={twin.controllable} expected={expected_ctl}",
                )
            if twin.direction != expected_dir:
                return CheckResult(
                    "composition",
                    FAIL,
                    f"direction of {move.label} at {locs}:"
                    f" partial={twin.direction} expected={expected_dir}",
                )
    return CheckResult("composition", OK, f"{graph.node_count} states compared")


# ----------------------------------------------------------------------
# Check: batched vs per-zone state estimation
# ----------------------------------------------------------------------


def _estimate_mismatch(step: int, what: str, batched, scalar) -> str:
    return (
        f"step {step}: batched/per-zone estimates disagree on {what}:"
        f" batched={batched!r} scalar={scalar!r}"
    )


def _drive_estimate_pair(
    plant_sys: System, seed: int, steps: int, max_states: int = 256
) -> Optional[str]:
    """One seeded session over two estimates; returns a failure or None.

    Drives the batched (stacked-kernel) and per-zone (reference)
    implementations through the same observation sequence — inputs,
    outputs, and rational delays chosen from the spec's own answers — and
    compares every monitor-facing answer.  Denominators 2, 3, and 7 force
    rescaling; an over-budget closure is a SKIP-worthy resource limit, so
    it is re-raised and mapped by the caller (transient retention differs
    between traversal orders, so limit *timing* is not compared — the
    dedicated hypothesis tests pin down budget agreement at the fixpoint).
    """
    batched = StateEstimate(
        plant_sys, batch=True, batch_min=1, max_states=max_states
    )
    scalar = StateEstimate(plant_sys, batch=False, max_states=max_states)
    rng = random.Random(seed * 48611 + 17)
    for step in range(steps):
        b_quiet = batched.max_quiescence()
        s_quiet = scalar.max_quiescence()
        if b_quiet != s_quiet:
            return _estimate_mismatch(step, "max_quiescence", b_quiet, s_quiet)
        for direction in ("input", "output"):
            b_labels = batched.enabled_labels(direction)
            s_labels = scalar.enabled_labels(direction)
            if b_labels != s_labels:
                return _estimate_mismatch(
                    step, f"enabled {direction} labels", b_labels, s_labels
                )
        outputs = batched.enabled_labels("output")
        inputs = batched.enabled_labels("input")
        roll = rng.random()
        if outputs and roll < 0.35:
            label = rng.choice(outputs)
            b_ok = batched.observe(label, "output")
            s_ok = scalar.observe(label, "output")
            if b_ok != s_ok:
                return _estimate_mismatch(step, f"observe {label}!", b_ok, s_ok)
            if not b_ok:
                return None  # both refused their own enabled label: done
        elif inputs and roll < 0.6:
            label = rng.choice(inputs)
            b_ok = batched.observe(label, "input")
            s_ok = scalar.observe(label, "input")
            if b_ok != s_ok:
                return _estimate_mismatch(step, f"observe {label}?", b_ok, s_ok)
            if not b_ok:
                return None
        else:
            bound, strict = b_quiet
            delay = Fraction(rng.randint(1, 6), rng.choice((1, 2, 3, 7)))
            if bound is not None and (delay > bound or (delay == bound and strict)):
                delay = bound / 2 if strict or bound > 0 else Fraction(0)
            b_ok = batched.advance(delay)
            s_ok = scalar.advance(delay)
            if b_ok != s_ok:
                return _estimate_mismatch(step, f"advance {delay}", b_ok, s_ok)
            if not b_ok:
                return None  # both refused an in-bound delay: quiescent end
        if batched.size == 0 or scalar.size == 0:
            return _estimate_mismatch(step, "state-set emptiness",
                                      batched.size, scalar.size)
    return None


def check_estimate(instance: GeneratedInstance, cfg: DiffConfig) -> CheckResult:
    """Differential: stacked-kernel vs per-zone ``StateEstimate``.

    Runs on every family — single-automaton plants exercise the padded
    single-state paths, composed plants the hidden-move closure proper.
    """
    plant_sys = System(instance.plant)
    try:
        failure = _drive_estimate_pair(
            plant_sys, instance.seed, cfg.conf_steps,
            max_states=cfg.max_estimate_states,
        )
    except EstimateLimit as limit:
        return CheckResult("estimate", SKIP, f"state-estimate budget: {limit}")
    if failure:
        return CheckResult("estimate", FAIL, failure)
    return CheckResult("estimate", OK)


# ----------------------------------------------------------------------
# Check: warm-start solving vs cold solving
# ----------------------------------------------------------------------


def _node_win_map(result: GameResult) -> Dict[tuple, Federation]:
    """Per *node* (discrete state + zone), the nonempty winning sets.

    Stricter than :func:`_win_by_key`: the warm-start checks compare
    node for node, so a per-node discrepancy cannot hide inside a
    per-discrete-state union.
    """
    out: Dict[tuple, Federation] = {}
    for node in result.graph.nodes:
        entry = result.wins.get(node.id)
        if entry is None or entry.win.is_empty():
            continue
        out[(node.sym.locs, node.sym.vars, node.sym.zone.hash_key())] = entry.win
    return out


def _win_maps_equal(a: Dict[tuple, Federation], b: Dict[tuple, Federation]):
    """The first differing key (as a printable detail), or None."""
    for key in sorted(a.keys() | b.keys()):
        left, right = a.get(key), b.get(key)
        if left is None or right is None or not left.equals(right):
            return f"locs={key[0]} vars={key[1]}"
    return None


def _derive_mutant_spec(instance: GeneratedInstance):
    """A deterministic random MutantSpec over the instance's arena.

    Seeded from the instance seed only, choosing among the operators the
    arena structurally supports, so the ``warmstart`` check exercises a
    different edit footprint per instance while staying reproducible
    from the instance's integers.
    """
    from ..testing.mutants import MutantSpec

    network = instance.arena
    rng = random.Random(instance.seed * 76_543 + 11)
    edges = [(aut, edge) for aut in network.automata for edge in aut.edges]
    guarded = [(aut, edge) for aut, edge in edges if edge.guard is not None]
    invariants = [
        (aut, loc)
        for aut in network.automata
        for loc in aut.location_list
        if loc.invariant is not None
    ]
    ops: List[str] = []
    if edges:
        ops += ["drop_edge", "retarget_edge"]
    if guarded:
        ops.append("shift_guard_constant")
    if invariants:
        ops.append("widen_invariant")
    if not ops:
        return None
    op = rng.choice(ops)
    if op == "widen_invariant":
        aut, loc = rng.choice(invariants)
        return MutantSpec.make(
            "warmcheck", op,
            automaton=aut.name, location=loc.name, delta=rng.choice((1, 2)),
        )
    if op == "shift_guard_constant":
        aut, edge = rng.choice(guarded)
        return MutantSpec.make(
            "warmcheck", op,
            automaton=aut.name, source=edge.source, target=edge.target,
            delta=rng.choice((1, -1)),
        )
    aut, edge = rng.choice(edges)
    if op == "retarget_edge":
        return MutantSpec.make(
            "warmcheck", op,
            automaton=aut.name, source=edge.source, target=edge.target,
            new_target=rng.choice(sorted(aut.locations)),
        )
    return MutantSpec.make(
        "warmcheck", op,
        automaton=aut.name, source=edge.source, target=edge.target,
    )


def check_warmstart(instance: GeneratedInstance, cfg: DiffConfig) -> CheckResult:
    """Differential: warm-start solving ≡ cold solving, both ways.

    Two fast paths of :mod:`repro.game.warm` are pinned against the cold
    two-phase fixpoint with exact per-node win-set equality:

    1. *cache restore* — solve, serialize to minimal-constraint form,
       then force the deserialize → explore → install path and compare;
    2. *mutant repair* — derive a seeded random mutant of the arena,
       repair the base fixpoint along its footprint's dependency cone,
       and compare against a cold solve of the mutant at joint caps.
    """
    from ..game.warm import (
        WinSetCache,
        joint_caps,
        resolve_cache,
        warm_solve,
        warm_solve_mutant,
    )
    from ..testing.mutants import MutationError

    query = parse_query(instance.query)
    system = System(instance.arena)
    # Restore-path half: always a private in-memory cache, so the first
    # solve is a genuine miss and the second a genuine install.
    private = WinSetCache()
    try:
        stored = warm_solve(
            system, query, cache=private,
            max_nodes=cfg.max_nodes, time_limit=cfg.time_limit,
        )
        private.forget_results()
        restored = warm_solve(
            system, query, cache=private,
            max_nodes=cfg.max_nodes, time_limit=cfg.time_limit,
        )
    except ExplorationLimit as limit:
        return CheckResult("warmstart", SKIP, str(limit))
    if stored.winning != restored.winning:
        return CheckResult(
            "warmstart",
            FAIL,
            f"restored verdict differs: stored={stored.winning}"
            f" restored={restored.winning}",
        )
    mismatch = _win_maps_equal(_node_win_map(stored), _node_win_map(restored))
    if mismatch:
        return CheckResult(
            "warmstart", FAIL, f"restored win set differs at {mismatch}"
        )

    # Mutant-repair half.  The shared campaign cache (``--warm-cache``)
    # may serve the base solve here; results cannot depend on it.
    spec = _derive_mutant_spec(instance)
    if spec is None:
        return CheckResult("warmstart", OK, "no mutant derivable")
    try:
        mutant = spec.build(instance.arena)
    except (MutationError, ValueError) as err:
        return CheckResult("warmstart", OK, f"mutant inapplicable: {err}")
    mutant_system = System(mutant.network)
    footprint = spec.footprint(instance.arena)
    caps = joint_caps(instance.arena, mutant.network)
    cache = (
        resolve_cache(cfg.warm_cache_dir)
        if cfg.warm_cache_dir
        else private
    )
    try:
        warm = warm_solve_mutant(
            system, mutant_system, query, footprint, cache=cache,
            max_nodes=cfg.max_nodes, time_limit=cfg.time_limit,
        )
        cold = TwoPhaseSolver(
            mutant_system, query,
            max_nodes=cfg.max_nodes, time_limit=cfg.time_limit,
            extra_max_consts=caps,
        ).solve()
    except ExplorationLimit as limit:
        return CheckResult("warmstart", SKIP, str(limit))
    if warm.winning != cold.winning:
        return CheckResult(
            "warmstart",
            FAIL,
            f"mutant {spec.operator} verdict differs: warm={warm.winning}"
            f" cold={cold.winning}",
        )
    mismatch = _win_maps_equal(_node_win_map(warm), _node_win_map(cold))
    if mismatch:
        return CheckResult(
            "warmstart",
            FAIL,
            f"mutant {spec.operator} repaired win set differs at {mismatch}",
        )
    return CheckResult("warmstart", OK)


# ----------------------------------------------------------------------
# Kernel backend differential
# ----------------------------------------------------------------------


def _random_kernel_constraints(
    rng: random.Random, dim: int, max_n: int
) -> List[Tuple[int, int, int]]:
    out: List[Tuple[int, int, int]] = []
    for _ in range(rng.randint(0, max_n)):
        i = rng.randrange(dim)
        j = rng.randrange(dim)
        if i == j:
            continue
        out.append((i, j, bound(rng.randint(-4, 9), rng.random() < 0.5)))
    return out


def _kernel_stack(rng: random.Random, dim: int, k: int) -> np.ndarray:
    """A ``(k, dim, dim)`` stack of random *canonical nonempty* zones."""
    zones = []
    while len(zones) < k:
        zone = random_zone(rng, dim=dim, max_constraints=5)
        if not zone.is_empty():
            zones.append(zone)
    return np.stack([z.m for z in zones])


def _kernel_trial_mismatch(
    rng: random.Random, backend
) -> Optional[str]:
    """Run every kernel once on random inputs; the first mismatch, or None.

    The contract checked is the backend exactness contract
    (:mod:`repro.dbm.backends.base`): masks identical to the numpy
    reference, kept rows byte-identical; discarded rows are scratch.
    """
    dim = rng.randint(2, 5)
    k = rng.randint(1, 6)
    stack = _kernel_stack(rng, dim, k)
    other = _kernel_stack(rng, dim, rng.randint(1, 4))

    def rows_match(ref_m, got_m, keep) -> bool:
        return bool(np.array_equal(ref_m[keep], got_m[keep]))

    # close — on a deliberately un-closed (possibly inconsistent) stack.
    raw = stack.copy()
    for _ in range(rng.randint(0, 2 * k)):
        z, i, j = rng.randrange(k), rng.randrange(dim), rng.randrange(dim)
        if i != j:
            raw[z, i, j] = bound(rng.randint(-6, 10), rng.random() < 0.5)
    ref_m, got_m = raw.copy(), raw.copy()
    ref_ok = _sk._close_ref(ref_m)
    got_ok = backend.close(got_m)
    if not np.array_equal(ref_ok, got_ok):
        return f"close mask: ref={ref_ok.tolist()} got={got_ok.tolist()}"
    if not rows_match(ref_m, got_m, ref_ok):
        return "close kept rows differ"

    # extrapolate — canonical input, random per-clock caps.
    caps = [rng.randint(0, 8) for _ in range(dim)]
    ref_m, got_m = stack.copy(), stack.copy()
    ref_ok = _sk._extrapolate_ref(ref_m, caps)
    got_ok = backend.extrapolate(got_m, np.asarray(caps, dtype=np.int64))
    if not np.array_equal(ref_ok, got_ok):
        return f"extrapolate mask: caps={caps}"
    if not rows_match(ref_m, got_m, ref_ok):
        return f"extrapolate kept rows differ: caps={caps}"

    # inclusion_matrix / reduce_indices / subsume_frontier — read-only.
    if not np.array_equal(
        _sk._inclusion_matrix_ref(stack, other),
        backend.inclusion_matrix(stack, other),
    ):
        return "inclusion_matrix differs"
    if _sk._reduce_indices_ref(stack) != backend.reduce_indices(stack):
        return "reduce_indices differs"
    seen = other if rng.random() < 0.8 else None
    ref_keep, ref_drop = _sk._subsume_frontier_ref(stack.copy(), seen)
    got_keep, got_drop = backend.subsume_frontier(stack.copy(), seen)
    if not (
        np.array_equal(ref_keep, got_keep)
        and np.array_equal(ref_drop, got_drop)
    ):
        return "subsume_frontier masks differ"

    # hidden_post_step / any_hidden_post — full fused move pipeline.
    guard = _random_kernel_constraints(rng, dim, 3)
    invariant = _random_kernel_constraints(rng, dim, 3)
    n_resets = rng.randint(0, dim - 1)
    resets = rng.sample(range(1, dim), n_resets)
    shifts = [
        (c, rng.randint(0, 5))
        for c in rng.sample(range(1, dim), rng.randint(0, dim - 1))
    ]
    delay = rng.random() < 0.5
    ref_m, got_m = stack.copy(), stack.copy()
    ref_ok = _sk._hidden_post_step_ref(
        ref_m, guard, resets, shifts, invariant, delay
    )
    got_ok = backend.hidden_post_step(
        got_m, guard, resets, shifts, invariant, delay
    )
    if not np.array_equal(ref_ok, got_ok):
        return (
            f"hidden_post_step mask: guard={guard} resets={resets}"
            f" shifts={shifts} inv={invariant} delay={delay}"
        )
    if not rows_match(ref_m, got_m, ref_ok):
        return (
            f"hidden_post_step kept rows differ: guard={guard}"
            f" resets={resets} shifts={shifts} inv={invariant}"
            f" delay={delay}"
        )
    ref_any = _sk._any_hidden_post_ref(
        stack.copy(), guard, resets, shifts, invariant
    )
    got_any = backend.any_hidden_post(
        stack.copy(), guard, resets, shifts, invariant
    )
    if bool(ref_any) != bool(got_any):
        return f"any_hidden_post: ref={ref_any} got={got_any}"
    return None


def check_kernel(instance: GeneratedInstance, cfg: DiffConfig) -> CheckResult:
    """Backend exactness differential: every loadable kernel backend
    (plus the numba bodies run as pure Python, so the loop logic is
    fuzzed even where no JIT or C toolchain exists) against the numpy
    reference kernels, on seeded random zone stacks.

    The compiled analogue of ``REPRO_ESTIMATE_SCALAR``'s scalar/batched
    estimate differential: always on, so no campaign can silently run on
    a kernel backend that was never cross-checked.
    """
    backends_under_test = [python_kernels()]
    for name in dbm_backends.available_backends():
        if name == "numpy":
            continue  # the reference itself
        backends_under_test.append(dbm_backends.resolve(name))
    rng = random.Random(instance.seed ^ 0x6B65726E)  # "kern"
    for trial in range(8):
        trial_seed = rng.randrange(2**63)
        for backend in backends_under_test:
            mismatch = _kernel_trial_mismatch(
                random.Random(trial_seed), backend
            )
            if mismatch:
                return CheckResult(
                    "kernel",
                    FAIL,
                    f"backend {backend.name!r} trial {trial}: {mismatch}",
                )
    return CheckResult("kernel", OK)


# ----------------------------------------------------------------------
# Check: fault-injection degradation
# ----------------------------------------------------------------------


def check_faults(instance: GeneratedInstance, cfg: DiffConfig) -> CheckResult:
    """Degradation differential over :mod:`repro.faults`.

    Always on, like ``kernel``: every campaign proves that graceful
    degradation is *exact*, not just survivable.  Three legs, all
    seeded from the instance and run under local
    :func:`repro.faults.injected` plans (which nest: an ambient chaos
    plan from ``REPRO_FAULTS`` is shelved for the duration, so the
    check's verdict never depends on outside fault schedules):

    1. *plan determinism* — two parses of the same probabilistic spec
       must make identical fire decisions, hit for hit;
    2. *kernel demotion* — every compiled backend, forced to demote on
       every call by an injected ``dbm.<name>.compute`` fault, must
       return byte-identical masks and rows to the numpy reference;
    3. *store degradation* — a corpus write torn by an injected
       ``corpus.store.write`` fault must quarantine on read (no torn
       payload ever served) and ``fsck(repair=True)`` must restore the
       store to clean.
    """
    import tempfile

    from ..corpus.store import Corpus, CorpusEntry

    # Leg 1: deterministic probabilistic plans.
    spec = f"check.faults.site:p=0.5;seed={instance.seed & 0xFFFFFF}"
    first = faults.FaultPlan.parse(spec)
    second = faults.FaultPlan.parse(spec)
    with faults.injected(None):
        seq_a = [first.should_fire("check.faults.site") for _ in range(64)]
        seq_b = [second.should_fire("check.faults.site") for _ in range(64)]
    if seq_a != seq_b:
        return CheckResult(
            "faults", FAIL, f"probabilistic plan not deterministic: {spec!r}"
        )
    if not any(seq_a) or all(seq_a):
        return CheckResult(
            "faults", FAIL, f"p=0.5 plan degenerate over 64 hits: {spec!r}"
        )

    # Leg 2: injected kernel faults demote byte-exactly.
    rng = random.Random(instance.seed ^ 0x66617574)  # "faut"
    for name in dbm_backends.available_backends():
        if name == "numpy":
            continue
        backend = dbm_backends.resolve(name)
        stack = _kernel_stack(rng, rng.randint(2, 4), rng.randint(1, 5))
        caps = np.asarray(
            [rng.randint(0, 8) for _ in range(stack.shape[1])],
            dtype=np.int64,
        )
        ref_m, got_m = stack.copy(), stack.copy()
        ref_ok = _sk._extrapolate_ref(ref_m, caps.tolist())
        with faults.injected(f"dbm.{name}.compute:*"):
            got_ok = backend.extrapolate(got_m, caps)
        if not np.array_equal(ref_ok, got_ok) or not np.array_equal(
            ref_m[ref_ok], got_m[ref_ok]
        ):
            return CheckResult(
                "faults",
                FAIL,
                f"backend {name!r} demoted under injection but differs"
                f" from the numpy reference",
            )

    # Leg 3: torn corpus writes quarantine and repair clean.
    entry = CorpusEntry(
        structural_hash=instance.structural_hash(),
        seed=instance.seed,
        family=instance.family,
        signature="faults-check",
        statuses={"faults": OK},
    )
    with tempfile.TemporaryDirectory(prefix="repro-faults-") as tmp:
        store = Corpus(tmp)
        with faults.injected("corpus.store.write:1"):
            store.add(entry)
        if store.get(entry.structural_hash) is not None:
            return CheckResult(
                "faults", FAIL, "torn corpus entry served instead of"
                " quarantined"
            )
        report = store.fsck(repair=True)
        if report["corrupt"] and store.fsck()["corrupt"]:
            return CheckResult(
                "faults", FAIL, "fsck --repair left corrupt entries behind"
            )
        with faults.injected(None):
            store.add(entry)
        loaded = store.get(entry.structural_hash)
        if loaded is None or loaded.seed != entry.seed:
            return CheckResult(
                "faults", FAIL, "repaired store refused a clean re-add"
            )
    return CheckResult("faults", OK)


# ----------------------------------------------------------------------
# Registry, per-instance runner, shrinking
# ----------------------------------------------------------------------

CHECKS: Dict[str, Callable[[GeneratedInstance, DiffConfig], CheckResult]] = {
    "solvers": check_solvers,
    "semantics": check_semantics,
    "conformance": check_conformance,
    "composition": check_composition,
    "estimate": check_estimate,
    "warmstart": check_warmstart,
    "kernel": check_kernel,
    "faults": check_faults,
}


def run_instance_checks(
    instance: GeneratedInstance,
    cfg: Optional[DiffConfig] = None,
    checks: Optional[Sequence[str]] = None,
) -> InstanceReport:
    cfg = cfg or DiffConfig()
    report = InstanceReport(
        seed=instance.seed,
        family=instance.family,
        structural_hash=instance.structural_hash(),
        description=instance.describe(),
    )
    for name in checks or CHECKS:
        report.results.append(CHECKS[name](instance, cfg))
    return report


def _shrink_candidates(spec: NetSpec) -> Iterator[NetSpec]:
    """Strictly smaller variants of a spec, most aggressive first."""

    def with_automaton(index: int, aut) -> NetSpec:
        automata = list(spec.automata)
        automata[index] = aut
        return replace(spec, automata=tuple(automata))

    for index, aut in enumerate(spec.automata):
        for position in range(len(aut.edges)):
            edges = aut.edges[:position] + aut.edges[position + 1 :]
            yield with_automaton(index, replace(aut, edges=edges))
    for index, aut in enumerate(spec.automata):
        for position, loc in enumerate(aut.locations):
            if loc.invariant is not None:
                locations = list(aut.locations)
                locations[position] = replace(loc, invariant=None)
                yield with_automaton(
                    index, replace(aut, locations=tuple(locations))
                )
            if loc.urgent:
                locations = list(aut.locations)
                locations[position] = replace(loc, urgent=False)
                yield with_automaton(
                    index, replace(aut, locations=tuple(locations))
                )
        for position, edge in enumerate(aut.edges):
            if edge.clock_guard or edge.int_guard:
                edges = list(aut.edges)
                edges[position] = replace(edge, clock_guard=(), int_guard=None)
                yield with_automaton(index, replace(aut, edges=tuple(edges)))
            if edge.assign or edge.resets:
                edges = list(aut.edges)
                edges[position] = replace(edge, assign=None, resets=())
                yield with_automaton(index, replace(aut, edges=tuple(edges)))


def shrink_instance(
    instance: GeneratedInstance,
    check_name: str,
    cfg: Optional[DiffConfig] = None,
    max_attempts: int = 200,
) -> GeneratedInstance:
    """Greedy spec-level shrinking preserving failure of ``check_name``.

    Checks derive all their randomness from the instance seed, which the
    shrunk spec keeps, so a reproduced failure really is the same failure.
    """
    cfg = cfg or DiffConfig()
    check = CHECKS[check_name]
    current = instance
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate_spec in _shrink_candidates(current.spec):
            attempts += 1
            if attempts >= max_attempts:
                break
            candidate = GeneratedInstance(spec=candidate_spec, config=current.config)
            try:
                result = check(candidate, cfg)
            except Exception:
                continue  # candidate broke the model: not a valid reducer
            if result.status == FAIL:
                current = candidate
                improved = True
                break
    return current


# ----------------------------------------------------------------------
# Campaign driver (shared by the CLI and the test suite)
# ----------------------------------------------------------------------


def _run_one_task(
    seed: int,
    family: Optional[str],
    mutation_seed: Optional[int],
    gen_config: Optional[GenConfig],
    diff_config: DiffConfig,
    checks: Optional[Tuple[str, ...]],
) -> InstanceReport:
    """One generate → check task (module-level: the pool's unit of work).

    Regenerates the instance from its seed(s) instead of pickling
    networks across the pool — generation is cheap, and reproducing from
    the two (or, for corpus-scheduled mutations, three) integers is the
    repo-wide determinism contract anyway.  Shrinking is *not* done
    here: failure seeds funnel back to the parent, which shrinks
    serially so the (order-sensitive) greedy reducer sees the same
    sequence regardless of worker scheduling.

    Op counters are snapshotted around the checks so the report carries
    its own coverage deltas — under :func:`repro.par.steal_map` the
    worker's counters were just reset, so the delta is exactly this
    task's profile; in-process the snapshot isolates it from whatever
    accrued before.
    """
    before = counters.export()
    if mutation_seed is None:
        instance = generate_instance(seed, family, gen_config)
    else:
        instance = mutate_instance(seed, family, mutation_seed, gen_config)
    report = run_instance_checks(instance, diff_config, checks)
    report.mutation_seed = mutation_seed
    report.coverage = counters.diff(before, counters.export())
    return report


def _quarantined_report(
    seed: int,
    family: Optional[str],
    mutation_seed: Optional[int],
    gen_config: Optional[GenConfig],
) -> InstanceReport:
    """The deterministic stand-in for a task the pool quarantined.

    Regenerated in the parent from the task's integers, so the report
    (hash, description) is stable across runs and ``jobs`` values; the
    single synthetic ``harness`` FAIL is deliberately free of anything
    volatile (no pids, no tracebacks) for the same reason.  Harness
    failures never shrink — there is no check to re-run.
    """
    if mutation_seed is None:
        instance = generate_instance(seed, family, gen_config)
    else:
        instance = mutate_instance(seed, family, mutation_seed, gen_config)
    report = InstanceReport(
        seed=seed,
        family=instance.family,
        structural_hash=instance.structural_hash(),
        description=instance.describe(),
        results=[
            CheckResult(
                "harness",
                FAIL,
                "task quarantined: worker crashed or hung on every attempt",
            )
        ],
    )
    report.mutation_seed = mutation_seed
    return report


@dataclass
class CampaignSummary:
    reports: List[InstanceReport]
    zone_failures: List[str]
    zone_trials: int
    #: True when the campaign stopped with tasks still pending (an
    #: interrupt or ``stop_after``); the checkpoint holds the finished
    #: prefix and ``--resume`` completes it.  Partial summaries skip the
    #: zone trials and shrinking — both run once, at completion.
    partial: bool = False
    #: Number of unfinished tasks behind :attr:`partial`.
    pending: int = 0

    @property
    def failed_reports(self) -> List[InstanceReport]:
        return [r for r in self.reports if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failed_reports and not self.zone_failures

    def counts(self) -> Dict[str, Dict[str, int]]:
        """check name -> status -> count (family-summed view)."""
        table: Dict[str, Dict[str, int]] = {}
        for family_rows in self.counts_by_family().values():
            for name, row in family_rows.items():
                agg = table.setdefault(name, {OK: 0, SKIP: 0, FAIL: 0})
                for status, count in row.items():
                    agg[status] += count
        return table

    def counts_by_family(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """family -> check name -> status -> count.

        The oracle-coverage breakdown tracked by the nightly deep-fuzz
        artifacts: per generator family, how many instances each check
        actually exercised (multi-automaton plants must show conformance
        runs, not skips).
        """
        table: Dict[str, Dict[str, Dict[str, int]]] = {}
        for report in self.reports:
            family = table.setdefault(report.family, {})
            for result in report.results:
                row = family.setdefault(
                    result.name, {OK: 0, SKIP: 0, FAIL: 0}
                )
                row[result.status] += 1
        return table

    def format(self, verbose: bool = False) -> str:
        lines: List[str] = []
        families: Dict[str, int] = {}
        for report in self.reports:
            families[report.family] = families.get(report.family, 0) + 1
        lines.append(
            f"{len(self.reports)} instances ("
            + ", ".join(f"{fam}: {n}" for fam, n in sorted(families.items()))
            + ")"
        )
        for name, row in sorted(self.counts().items()):
            lines.append(
                f"  {name:12s} ok={row[OK]:<4d} skip={row[SKIP]:<4d}"
                f" fail={row[FAIL]}"
            )
        by_family = self.counts_by_family()
        conf_bits = [
            f"{family} {rows['conformance'][OK]}/{sum(rows['conformance'].values())}"
            for family, rows in sorted(by_family.items())
            if "conformance" in rows
        ]
        if conf_bits:
            lines.append("  conformance coverage: " + ", ".join(conf_bits))
        lines.append(
            f"  {'zones':12s} trials={self.zone_trials}"
            f" fail={len(self.zone_failures)}"
        )
        if verbose:
            for report in self.reports:
                status = "FAIL" if not report.ok else "ok"
                lines.append(f"  [{status}] {report.description}")
        for report in self.failed_reports:
            lines.append(f"DISAGREEMENT {report.description}")
            lines.append(f"  structural hash: {report.structural_hash}")
            for result in report.failures:
                lines.append(f"  {result.name}: {result.detail}")
            lines.append(f"  reproduce: {report.reproducer()}")
            if report.shrunk:
                lines.append(f"  shrunk reproducer: {report.shrunk}")
        for detail in self.zone_failures[:10]:
            lines.append(f"ZONE DISAGREEMENT {detail}")
        if self.partial:
            lines.append(
                f"PARTIAL: {self.pending} tasks pending"
                f" (checkpointed; continue with --resume)"
            )
        lines.append(
            "verdict: "
            + ("no disagreements found" if self.ok else "DISAGREEMENTS FOUND")
        )
        return "\n".join(lines)


def campaign_tasks(
    count: int,
    seed: int = 0,
    families: Sequence[str] = DEFAULT_FAMILIES,
    mutations: Sequence[Tuple[int, Optional[str], int]] = (),
) -> List[Tuple[int, Optional[str], Optional[int]]]:
    """The full ordered task list of a campaign.

    Base task ``i`` is ``(seed + i, families[i % len], None)``; corpus-
    scheduled mutation tasks ``(seed, family, mutation_seed)`` follow.
    The list is what a checkpoint fingerprints: a task's position is its
    identity across interrupted and resumed runs.
    """
    tasks: List[Tuple[int, Optional[str], Optional[int]]] = [
        (seed + index, families[index % len(families)], None)
        for index in range(count)
    ]
    for mut_seed, mut_family, mutation_seed in mutations:
        tasks.append((mut_seed, mut_family, mutation_seed))
    return tasks


def run_campaign(
    count: int,
    seed: int = 0,
    families: Sequence[str] = DEFAULT_FAMILIES,
    gen_config: Optional[GenConfig] = None,
    diff_config: Optional[DiffConfig] = None,
    checks: Optional[Sequence[str]] = None,
    zone_trials: int = 40,
    shrink: bool = True,
    fail_fast: bool = False,
    on_report: Optional[Callable[[InstanceReport], None]] = None,
    jobs: int = 1,
    mutations: Sequence[Tuple[int, Optional[str], int]] = (),
    checkpoint=None,
    stop_after: Optional[int] = None,
) -> CampaignSummary:
    """Generate ``count`` instances and run every check on each.

    Instance ``i`` has seed ``seed + i`` and family ``families[i % len]``;
    zone-algebra trials run off ``seed`` as well, so the whole campaign is
    reproducible from its two integers.  ``mutations`` appends corpus-
    scheduled ``(seed, family, mutation_seed)`` tasks after the base
    instances (each reproducible from its three integers).

    ``jobs > 1`` steals tasks across a :mod:`repro.par` worker pool
    (:func:`~repro.par.steal_map`: single-task dispatch, so one
    solver-heavy seed never straggles a chunk).  The summary (statuses,
    per-family counts, failing seeds, shrunk reproducers) is **identical
    to the serial run**: tasks are seed-independent, results are
    reassembled in task order, and shrinking of funneled-back failure
    seeds happens serially in the parent, after the pool.  Only
    ``on_report`` ordering (progress) and per-worker memo cache hit
    rates (profiling counters) depend on scheduling.  Under
    ``fail_fast`` the parallel path still runs the whole batch but
    truncates the summary at the first failure, matching the serial
    report; it trades the early exit for throughput.

    ``checkpoint`` (a :class:`repro.corpus.CampaignCheckpoint`) makes
    the run resumable: tasks already journaled are not re-run, every
    fresh result is journaled as it lands, and a run cut short — by
    ``stop_after`` (process at most that many pending tasks) or by an
    exception such as ``KeyboardInterrupt`` mid-pool — leaves a journal
    from which the next call continues.  Because a task's result depends
    only on its integers, the resumed campaign's summary is identical to
    an uninterrupted run's, for any ``jobs`` value on either side.
    """
    diff_config = diff_config or DiffConfig()
    check_names = tuple(checks) if checks is not None else None
    tasks = campaign_tasks(count, seed, families, mutations)
    results: List[Optional[InstanceReport]] = [None] * len(tasks)
    if checkpoint is not None:
        for index, report in checkpoint.completed().items():
            if 0 <= index < len(tasks):
                results[index] = report
    pending = [
        (index, task)
        for index, task in enumerate(tasks)
        if results[index] is None
    ]
    if stop_after is not None:
        pending = pending[:stop_after]

    def record(index: int, report: InstanceReport) -> None:
        results[index] = report
        if checkpoint is not None:
            checkpoint.record(index, report)
        if on_report is not None:
            on_report(report)

    if jobs > 1:
        payloads = [
            (task_seed, family, mutation_seed, gen_config, diff_config,
             check_names)
            for _, (task_seed, family, mutation_seed) in pending
        ]

        def quarantined(pos: int, error: BaseException) -> None:
            # A worker crashed/hung on this task through every retry:
            # record a deterministic harness failure and keep going —
            # one poison task costs itself, never the campaign.
            task_seed, family, mutation_seed = pending[pos][1]
            record(
                pending[pos][0],
                _quarantined_report(
                    task_seed, family, mutation_seed, gen_config
                ),
            )

        steal_map(
            _run_one_task,
            payloads,
            jobs=jobs,
            on_result=lambda pos, report: record(pending[pos][0], report),
            retries=2,
            quarantine=quarantined,
        )
    else:
        for index, (task_seed, family, mutation_seed) in pending:
            report = _run_one_task(
                task_seed, family, mutation_seed, gen_config, diff_config,
                check_names,
            )
            record(index, report)
            if fail_fast and not report.ok:
                break

    # The reported prefix: everything up to the first gap (in task
    # order), truncated at the first failure under fail_fast — so the
    # serial early exit and the run-everything parallel path agree.
    reports: List[InstanceReport] = []
    for report in results:
        if report is None:
            break
        reports.append(report)
        if fail_fast and not report.ok:
            break
    unfinished = sum(1 for report in results if report is None)
    if unfinished and not (fail_fast and reports and not reports[-1].ok):
        # Interrupted (stop_after): report the finished prefix only and
        # defer the order-sensitive tail work to the completing run.
        return CampaignSummary(reports, [], 0, partial=True,
                               pending=unfinished)

    # Serial shrinking of the failure seeds funneled back from the
    # workers (greedy reduction re-runs checks; keeping it in the
    # parent keeps it scheduling-independent and seed-reproducible).
    if shrink:
        for report in reports:
            if report.ok or report.shrunk is not None:
                continue
            if report.failures[0].name not in CHECKS:
                continue  # synthetic harness failure: nothing to re-run
            if report.mutation_seed is None:
                instance = generate_instance(
                    report.seed, report.family, gen_config
                )
            else:
                instance = mutate_instance(
                    report.seed, report.family, report.mutation_seed,
                    gen_config,
                )
            shrunk = shrink_instance(
                instance, report.failures[0].name, diff_config
            )
            if shrunk is not instance:
                report.shrunk = shrunk.describe()
    zone_failures = check_zone_algebra(
        random.Random(seed ^ 0x5EED5), trials=zone_trials
    )
    return CampaignSummary(reports, zone_failures, zone_trials)
