"""Differential fuzzing CLI: ``python -m repro.gen.cli --count 200 --seed 0``.

Generates instances round-robin over the scenario families and runs the
differential oracle checks of :mod:`repro.gen.differential` on each, plus
a batch of zone-algebra trials.  Exit code 0 means zero disagreements;
any disagreement is printed with its reproducing seed, family, structural
hash, and (unless ``--no-shrink``) a shrunk reproducer.

With ``--corpus DIR`` the campaign becomes part of the persistent
coverage-guided fabric (:mod:`repro.corpus`): finished instances are
inserted into the on-disk corpus keyed by structural hash, a mutation
budget is spent on the rarest-signature corpus entries (appended to the
base instances as ``mutate_instance`` tasks), and progress is journaled
so an interrupted run — ``Ctrl-C`` (exit 130) or ``--stop-after N``
(exit 3) — continues with ``--resume`` and still produces the
byte-identical report an uninterrupted run would have, for any
``--jobs`` value on either side.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import asdict
from typing import List, Optional

from ..corpus import (
    CampaignCheckpoint,
    CheckpointMismatch,
    Corpus,
    campaign_fingerprint,
    fingerprint_core,
    plan_mutations,
)
from .. import faults
from ..dbm import backends as dbm_backends
from ..par import parse_jobs
from ..util import counters
from .differential import CHECKS, DiffConfig, run_campaign
from .networks import DEFAULT_FAMILIES, GenConfig


def _parse_list(value: str, known, what: str) -> List[str]:
    names = [part.strip() for part in value.split(",") if part.strip()]
    for name in names:
        if name not in known:
            raise SystemExit(
                f"unknown {what} {name!r}; known: {', '.join(known)}"
            )
    if not names:
        raise SystemExit(f"no {what} selected")
    return names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gen.cli",
        description="Differentially fuzz the solvers, semantics, and"
        " conformance monitors on random timed I/O game networks.",
    )
    parser.add_argument("--count", type=int, default=50, help="instances to run")
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--families",
        default=",".join(DEFAULT_FAMILIES),
        help=f"comma-separated families (default: all of {', '.join(DEFAULT_FAMILIES)})",
    )
    parser.add_argument(
        "--checks",
        default=",".join(CHECKS),
        help=f"comma-separated checks (default: {', '.join(CHECKS)})",
    )
    parser.add_argument(
        "--zone-trials", type=int, default=40, help="zone-algebra trials"
    )
    parser.add_argument(
        "--max-nodes",
        type=int,
        default=4000,
        help="exploration budget per solver (larger instances are skipped)",
    )
    parser.add_argument(
        "--steps", type=int, default=30, help="steps per simulated run"
    )
    parser.add_argument(
        "--max-estimate-states",
        type=int,
        default=256,
        help="symbolic state-set budget of the conformance monitors and"
        " estimate differential (raise it so hidden-move-rich instances"
        " run instead of SKIPping on EstimateLimit)",
    )
    parser.add_argument(
        "--no-fixpoint",
        action="store_true",
        help="skip the per-node fixpoint re-check (faster)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true", help="report failures unshrunk"
    )
    parser.add_argument(
        "--fail-fast", action="store_true", help="stop at the first disagreement"
    )
    parser.add_argument(
        "--max-locations",
        type=int,
        default=None,
        help="override GenConfig.max_locations (scaling experiments)",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        metavar="N|auto",
        help="shard the campaign across N worker processes ('auto' ="
        " usable CPUs).  The report is byte-identical for every value"
        " given the same --seed/--count (statuses, family counts, failing"
        " seeds, shrunk reproducers); only elapsed time and profiling"
        " counters vary",
    )
    parser.add_argument(
        "--corpus",
        metavar="DIR",
        default=None,
        help="persistent corpus directory: insert finished instances"
        " (keyed by structural hash), schedule mutations of the rarest"
        " coverage signatures, and journal progress for --resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue the interrupted campaign journaled in --corpus"
        " (the mutation plan is replayed from the checkpoint, so the"
        " completed report is byte-identical to an uninterrupted run)",
    )
    parser.add_argument(
        "--mutations",
        type=int,
        default=None,
        metavar="N",
        help="mutation budget spent on rare corpus entries (default:"
        " count // 4, capped at 50; 0 disables; needs --corpus)",
    )
    parser.add_argument(
        "--warm-cache",
        metavar="DIR",
        default=None,
        help="win-set solve cache directory (repro.game.warm) used by the"
        " warmstart check's mutant half; on by default with --corpus and"
        " a nonzero mutation budget (CORPUS/warm-cache)",
    )
    parser.add_argument(
        "--no-warm-cache",
        action="store_true",
        help="keep the warmstart check on private in-memory caches only"
        " (no on-disk win-set cache, even with --corpus)",
    )
    parser.add_argument(
        "--stop-after",
        type=int,
        default=None,
        metavar="N",
        help="process at most N pending tasks, checkpoint, and exit 3"
        " (a controlled interrupt: CI smoke and the resume tests use it)",
    )
    parser.add_argument(
        "--report-json",
        metavar="PATH",
        default=None,
        help="write a machine-readable campaign report (failing seeds,"
        " families, structural hashes) to PATH — uploaded as a CI artifact"
        " by the nightly deep-fuzz job",
    )
    parser.add_argument(
        "--kernel-backend",
        choices=["numpy", "numba", "cext", "auto"],
        default=None,
        metavar="NAME",
        help="dispatch hot DBM kernels through this backend for the whole"
        " campaign (numpy|numba|cext|auto; default: the"
        " REPRO_KERNEL_BACKEND environment variable, else numpy)."
        " Results are backend-independent — the always-on 'kernel' check"
        " enforces exactness — so this is a speed/soak knob",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="arm a deterministic fault-injection plan for the campaign"
        " (see repro.faults), exported as REPRO_FAULTS so pool workers"
        " self-arm; e.g. 'par.worker.crash:3;corpus.store.write:every=7'."
        " When retries absorb every injected fault the report is"
        " byte-identical to the fault-free run",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


#: Keys of the report payload that legitimately vary between runs of the
#: same campaign (wall clock; worker count; per-worker memo-cache hit
#: rates showing up in the profiling counters; corpus growth — per-run
#: coverage deltas depend on process-global memo caches, so what counts
#: as a "new" entry is scheduling-dependent).  Everything else is
#: byte-identical for a fixed --seed/--count, whatever --jobs says — the
#: determinism tests compare payloads with these keys stripped.
VOLATILE_REPORT_KEYS = ("elapsed_seconds", "jobs", "counters", "corpus")


def _warm_cache_dir(args) -> Optional[str]:
    """The on-disk win-set cache directory, or None.

    Explicit ``--warm-cache DIR`` wins; otherwise the cache rides along
    with the corpus (``CORPUS/warm-cache``) whenever a mutation budget
    will be spent — mutants of corpus entries re-solve the same base
    specs across campaigns, which is exactly what the cache amortizes.
    The check results never depend on cache state (warm ≡ cold is the
    property being checked), so this stays off the byte-identical-report
    contract.
    """
    if args.no_warm_cache:
        return None
    if args.warm_cache is not None:
        return args.warm_cache
    if args.corpus:
        budget = (
            args.mutations
            if args.mutations is not None
            else min(50, args.count // 4)
        )
        if budget > 0:
            return os.path.join(args.corpus, "warm-cache")
    return None


def _diff_config_from_args(args) -> DiffConfig:
    """The check-effort knobs, CLI → :class:`DiffConfig`."""
    return DiffConfig(
        max_nodes=args.max_nodes,
        sim_steps=args.steps,
        conf_steps=args.steps,
        check_fixpoint=not args.no_fixpoint,
        max_estimate_states=args.max_estimate_states,
        warm_cache_dir=_warm_cache_dir(args),
    )


def _report_payload(
    summary, args, elapsed: float, jobs: int, mutations: int,
    corpus_stats: Optional[dict],
) -> dict:
    """The JSON artifact of a campaign: everything needed to reproduce."""
    return {
        "ok": summary.ok,
        "partial": summary.partial,
        "count": args.count,
        "seed": args.seed,
        "families": args.families,
        "checks": args.checks,
        "max_locations": args.max_locations,
        #: Mutation tasks appended after the base instances — frozen at
        #: plan time (or replayed from the checkpoint), so deterministic
        #: across --jobs and across interrupt/resume.
        "mutations": mutations,
        "elapsed_seconds": round(elapsed, 3),
        "jobs": jobs,
        # Op-level profiling aggregated across the pool (workers export
        # their counter state, the parent merges) — without the merge
        # these would silently read zero under --jobs > 1.
        "counters": {
            name: value for name, value in sorted(counters.snapshot().items())
        },
        # Volatile corpus snapshot stats (None without --corpus).
        "corpus": corpus_stats,
        "counts": summary.counts(),
        # Per-family oracle coverage (nightly artifacts track that the
        # conformance check really runs on multi-automaton plants).
        "family_counts": summary.counts_by_family(),
        "zone_trials": summary.zone_trials,
        "zone_failures": summary.zone_failures,
        "failures": [
            {
                "seed": report.seed,
                "family": report.family,
                "mutation_seed": report.mutation_seed,
                "structural_hash": report.structural_hash,
                "description": report.description,
                "checks": [
                    {"name": result.name, "detail": result.detail}
                    for result in report.failures
                ],
                "shrunk": report.shrunk,
                "reproduce": report.reproducer(),
            }
            for report in summary.failed_reports
        ],
    }


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.kernel_backend:
        # Via the environment (not set_backend) so campaign worker
        # processes inherit the same selection.
        os.environ[dbm_backends.ENV_VAR] = args.kernel_backend
        dbm_backends.set_backend(None)
    if args.faults:
        # Arm here and via the environment: pool workers self-arm from
        # REPRO_FAULTS at their first injection probe.
        try:
            faults.install(args.faults)
        except ValueError as err:
            raise SystemExit(f"--faults: {err}")
        os.environ[faults.ENV_VAR] = args.faults
    families = _parse_list(args.families, DEFAULT_FAMILIES, "family")
    checks = _parse_list(args.checks, CHECKS, "check")
    try:
        jobs = parse_jobs(args.jobs)
    except ValueError as err:
        raise SystemExit(str(err))
    gen_config = GenConfig()
    if args.max_locations is not None:
        gen_config = gen_config.scaled(max_locations=args.max_locations)
    diff_config = _diff_config_from_args(args)

    # ------------------------------------------------------------------
    # Corpus / checkpoint wiring
    # ------------------------------------------------------------------
    if args.resume and not args.corpus:
        raise SystemExit("--resume requires --corpus DIR")
    corpus: Optional[Corpus] = None
    checkpoint: Optional[CampaignCheckpoint] = None
    mutation_tasks = []
    if args.corpus:
        corpus = Corpus(args.corpus)
        checkpoint = CampaignCheckpoint(
            os.path.join(args.corpus, "checkpoint.jsonl")
        )
        core = fingerprint_core(
            campaign_fingerprint(
                args.count, args.seed, families, checks,
                asdict(gen_config), asdict(diff_config), (),
            )
        )
        if args.resume and checkpoint.exists():
            try:
                checkpoint.load(expected_core=core)
            except CheckpointMismatch as err:
                raise SystemExit(str(err))
            # The plan replays from the journal header — never re-planned
            # against the (possibly grown) corpus — so the resumed run
            # completes the *same* campaign it interrupts.
            mutation_tasks = checkpoint.mutations()
            print(
                f"resuming: {len(checkpoint.completed())} tasks journaled,"
                f" {len(mutation_tasks)} scheduled mutations",
                file=sys.stderr,
            )
        else:
            budget = (
                args.mutations
                if args.mutations is not None
                else min(50, args.count // 4)
            )
            mutation_tasks = plan_mutations(corpus, budget)
            checkpoint.start(
                campaign_fingerprint(
                    args.count, args.seed, families, checks,
                    asdict(gen_config), asdict(diff_config), mutation_tasks,
                )
            )

    started = time.monotonic()
    counters.reset()
    total = args.count + len(mutation_tasks)
    done = 0

    def progress(report) -> None:
        nonlocal done
        done += 1
        if args.verbose:
            status = "ok" if report.ok else "FAIL"
            print(f"[{done}/{total}] {status} {report.description}")
        elif done % 25 == 0:
            print(f"... {done}/{total} instances", file=sys.stderr)

    try:
        summary = run_campaign(
            count=args.count,
            seed=args.seed,
            families=families,
            gen_config=gen_config,
            diff_config=diff_config,
            checks=checks,
            zone_trials=args.zone_trials,
            shrink=not args.no_shrink,
            fail_fast=args.fail_fast,
            on_report=progress,
            jobs=jobs,
            mutations=[tuple(task) for task in mutation_tasks],
            checkpoint=checkpoint,
            stop_after=args.stop_after,
        )
    except KeyboardInterrupt:
        if checkpoint is not None:
            checkpoint.close()
            print(
                "\ninterrupted — progress journaled; continue with"
                " --corpus DIR --resume",
                file=sys.stderr,
            )
            return 130
        raise
    elapsed = time.monotonic() - started

    corpus_stats: Optional[dict] = None
    if corpus is not None and checkpoint is not None:
        if summary.partial:
            checkpoint.close()  # journal stays for --resume
        else:
            inserted = sum(
                1 for report in summary.reports if corpus.add_report(report)
            )
            checkpoint.finalize()
            corpus_stats = dict(corpus.stats())
            corpus_stats["dir"] = args.corpus
            corpus_stats["new_entries"] = inserted

    print(summary.format(verbose=False))
    print(f"elapsed: {elapsed:.1f}s (jobs={jobs})")
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json.dump(
                _report_payload(
                    summary, args, elapsed, jobs, len(mutation_tasks),
                    corpus_stats,
                ),
                handle,
                indent=2,
            )
            handle.write("\n")
        print(f"report written to {args.report_json}")
    if summary.partial:
        return 3
    return 0 if summary.ok else 1


if __name__ == "__main__":
    sys.exit(main())
