"""Differential fuzzing CLI: ``python -m repro.gen.cli --count 200 --seed 0``.

Generates instances round-robin over the scenario families and runs the
differential oracle checks of :mod:`repro.gen.differential` on each, plus
a batch of zone-algebra trials.  Exit code 0 means zero disagreements;
any disagreement is printed with its reproducing seed, family, structural
hash, and (unless ``--no-shrink``) a shrunk reproducer.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from ..par import parse_jobs
from ..util import counters
from .differential import CHECKS, DiffConfig, run_campaign
from .networks import DEFAULT_FAMILIES, GenConfig


def _parse_list(value: str, known, what: str) -> List[str]:
    names = [part.strip() for part in value.split(",") if part.strip()]
    for name in names:
        if name not in known:
            raise SystemExit(
                f"unknown {what} {name!r}; known: {', '.join(known)}"
            )
    if not names:
        raise SystemExit(f"no {what} selected")
    return names


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gen.cli",
        description="Differentially fuzz the solvers, semantics, and"
        " conformance monitors on random timed I/O game networks.",
    )
    parser.add_argument("--count", type=int, default=50, help="instances to run")
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--families",
        default=",".join(DEFAULT_FAMILIES),
        help=f"comma-separated families (default: all of {', '.join(DEFAULT_FAMILIES)})",
    )
    parser.add_argument(
        "--checks",
        default=",".join(CHECKS),
        help=f"comma-separated checks (default: {', '.join(CHECKS)})",
    )
    parser.add_argument(
        "--zone-trials", type=int, default=40, help="zone-algebra trials"
    )
    parser.add_argument(
        "--max-nodes",
        type=int,
        default=4000,
        help="exploration budget per solver (larger instances are skipped)",
    )
    parser.add_argument(
        "--steps", type=int, default=30, help="steps per simulated run"
    )
    parser.add_argument(
        "--no-fixpoint",
        action="store_true",
        help="skip the per-node fixpoint re-check (faster)",
    )
    parser.add_argument(
        "--no-shrink", action="store_true", help="report failures unshrunk"
    )
    parser.add_argument(
        "--fail-fast", action="store_true", help="stop at the first disagreement"
    )
    parser.add_argument(
        "--max-locations",
        type=int,
        default=None,
        help="override GenConfig.max_locations (scaling experiments)",
    )
    parser.add_argument(
        "--jobs",
        default="1",
        metavar="N|auto",
        help="shard the campaign across N worker processes ('auto' ="
        " usable CPUs).  The report is byte-identical for every value"
        " given the same --seed/--count (statuses, family counts, failing"
        " seeds, shrunk reproducers); only elapsed time and profiling"
        " counters vary",
    )
    parser.add_argument(
        "--report-json",
        metavar="PATH",
        default=None,
        help="write a machine-readable campaign report (failing seeds,"
        " families, structural hashes) to PATH — uploaded as a CI artifact"
        " by the nightly deep-fuzz job",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


#: Keys of the report payload that legitimately vary between runs of the
#: same campaign (wall clock; worker count; per-worker memo-cache hit
#: rates showing up in the profiling counters).  Everything else is
#: byte-identical for a fixed --seed/--count, whatever --jobs says — the
#: determinism tests compare payloads with these keys stripped.
VOLATILE_REPORT_KEYS = ("elapsed_seconds", "jobs", "counters")


def _report_payload(summary, args, elapsed: float, jobs: int) -> dict:
    """The JSON artifact of a campaign: everything needed to reproduce."""
    return {
        "ok": summary.ok,
        "count": args.count,
        "seed": args.seed,
        "families": args.families,
        "checks": args.checks,
        "max_locations": args.max_locations,
        "elapsed_seconds": round(elapsed, 3),
        "jobs": jobs,
        # Op-level profiling aggregated across the pool (workers export
        # their counter state, the parent merges) — without the merge
        # these would silently read zero under --jobs > 1.
        "counters": {
            name: value for name, value in sorted(counters.snapshot().items())
        },
        "counts": summary.counts(),
        # Per-family oracle coverage (nightly artifacts track that the
        # conformance check really runs on multi-automaton plants).
        "family_counts": summary.counts_by_family(),
        "zone_trials": summary.zone_trials,
        "zone_failures": summary.zone_failures,
        "failures": [
            {
                "seed": report.seed,
                "family": report.family,
                "structural_hash": report.structural_hash,
                "description": report.description,
                "checks": [
                    {"name": result.name, "detail": result.detail}
                    for result in report.failures
                ],
                "shrunk": report.shrunk,
                "reproduce": (
                    f"generate_instance({report.seed}, {report.family!r})"
                ),
            }
            for report in summary.failed_reports
        ],
    }


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    families = _parse_list(args.families, DEFAULT_FAMILIES, "family")
    checks = _parse_list(args.checks, CHECKS, "check")
    try:
        jobs = parse_jobs(args.jobs)
    except ValueError as err:
        raise SystemExit(str(err))
    gen_config = GenConfig()
    if args.max_locations is not None:
        gen_config = gen_config.scaled(max_locations=args.max_locations)
    diff_config = DiffConfig(
        max_nodes=args.max_nodes,
        sim_steps=args.steps,
        conf_steps=args.steps,
        check_fixpoint=not args.no_fixpoint,
    )
    started = time.monotonic()
    counters.reset()
    done = 0

    def progress(report) -> None:
        nonlocal done
        done += 1
        if args.verbose:
            status = "ok" if report.ok else "FAIL"
            print(f"[{done}/{args.count}] {status} {report.description}")
        elif done % 25 == 0:
            print(f"... {done}/{args.count} instances", file=sys.stderr)

    summary = run_campaign(
        count=args.count,
        seed=args.seed,
        families=families,
        gen_config=gen_config,
        diff_config=diff_config,
        checks=checks,
        zone_trials=args.zone_trials,
        shrink=not args.no_shrink,
        fail_fast=args.fail_fast,
        on_report=progress,
        jobs=jobs,
    )
    elapsed = time.monotonic() - started
    print(summary.format(verbose=False))
    print(f"elapsed: {elapsed:.1f}s (jobs={jobs})")
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as handle:
            json.dump(
                _report_payload(summary, args, elapsed, jobs), handle, indent=2
            )
            handle.write("\n")
        print(f"report written to {args.report_json}")
    return 0 if summary.ok else 1


if __name__ == "__main__":
    sys.exit(main())
