"""Seeded random generation of timed I/O game networks.

Networks are generated into an intermediate, editable representation
(:class:`NetSpec`) and only then compiled into a prepared
:class:`~repro.ta.model.Network` through the normal builder — so the
shrinker of :mod:`repro.gen.differential` can delete edges, clear guards,
or drop invariants and rebuild, and so a generated model is always
well-formed *by construction*:

* invariants are single upper bounds ``c <= b`` (the only shape the model
  layer accepts);
* every edge entering a location with an invariant on clock ``c`` resets
  ``c``, so discrete steps never land outside an invariant;
* every location carrying an invariant keeps at least one unconditional
  output/internal edge enabled at the invariant boundary, so maximal runs
  never deadlock against the clock;
* committed locations have exactly one outgoing edge — an unguarded
  internal move — mirroring the paper's use of committed locations for
  instantaneous processing;
* per (location, channel) there is at most one edge, and guarded input
  edges get complementary self-loops, which makes single-automaton plants
  deterministic and strongly input-enabled (the paper's §2.2 test
  hypotheses) and therefore usable as tioco specifications.

Scenario families:

``random``
    One plant automaton with arbitrary topology — the generalization of
    the old private ``random_game`` helper of ``tests/test_random_games``.
``chain``
    A pipeline of stages passing a token left to right inside bounded
    response windows, with optional uncontrollable failure branches and a
    tester-controlled shortcut on the last stage.
``ring``
    A token ring: the tester injects a token at stage 0 and wins when it
    completes a full lap (counted in a shared integer variable).
``clientserver``
    One server automaton serializing requests from several clients, with
    optional uncontrollable ``deny`` branches; the goal counts grants.
``broadcast``
    A publisher announcing once on an UPPAAL-style broadcast channel to
    several subscribers (all enabled receivers take the cast
    simultaneously); subscribers may go deaf first on uncontrollable
    ``drop`` branches, and some publishers route the start input through
    an *urgent* relay location.
``urgent_random``
    The ``random`` family with urgent locations enabled: delay-freezing
    locations (no move priority) that always keep an unconditional
    output escape, exercising the monitors' urgent settling rules on
    single plants (where the conformance oracle actually runs).
``mutant``
    A base instance from any family above with one mutation operator
    applied at the spec level (guard shift, invariant widening, edge
    retarget / drop / spurious-add, output-channel swap, urgent toggle,
    spurious broadcast receiver) — the generation-level analogue of
    :mod:`repro.testing.mutants`.

The closed game *arena* is the plant composed with a maximally permissive
environment automaton that offers every input and consumes every
environment-visible output at any time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ta.builder import NetworkBuilder
from ..ta.model import Network

#: Edge roles: ``real`` edges carry the behaviour, ``liveness`` edges are
#: the designated invariant-boundary escapes, ``complement``/``ignore``
#: self-loops exist only for input-enabledness and are never mutated.
REAL, LIVENESS, COMPLEMENT, IGNORE = "real", "liveness", "complement", "ignore"


@dataclass(frozen=True)
class GuardAtom:
    """One clock comparison ``clock op value`` (op in >=, <=, >, <)."""

    clock: str
    op: str
    value: int

    def text(self) -> str:
        return f"{self.clock} {self.op} {self.value}"


@dataclass(frozen=True)
class EdgeSpec:
    source: str
    target: str
    sync: Optional[str] = None  # "chan!" | "chan?" | None (internal)
    clock_guard: Tuple[GuardAtom, ...] = ()
    int_guard: Optional[str] = None  # e.g. "v0 < 3"
    resets: Tuple[str, ...] = ()  # clocks reset to 0
    assign: Optional[str] = None  # e.g. "v0 := v0 + 1"
    role: str = REAL

    def guard_text(self) -> Optional[str]:
        parts = [atom.text() for atom in self.clock_guard]
        if self.int_guard:
            parts.append(self.int_guard)
        return " && ".join(parts) if parts else None

    def assign_text(self) -> Optional[str]:
        parts = [f"{clock} := 0" for clock in self.resets]
        if self.assign:
            parts.append(self.assign)
        return ", ".join(parts) if parts else None


@dataclass(frozen=True)
class LocSpec:
    name: str
    invariant: Optional[Tuple[str, int]] = None  # (clock, bound): clock <= bound
    committed: bool = False
    initial: bool = False
    urgent: bool = False


@dataclass(frozen=True)
class AutSpec:
    name: str
    locations: Tuple[LocSpec, ...]
    edges: Tuple[EdgeSpec, ...]

    def location(self, name: str) -> LocSpec:
        for loc in self.locations:
            if loc.name == name:
                return loc
        raise KeyError(name)


@dataclass(frozen=True)
class NetSpec:
    """The editable intermediate representation of a generated network."""

    name: str
    family: str
    seed: int
    clocks: Tuple[str, ...]
    int_vars: Tuple[Tuple[str, int, int, int], ...]  # (name, low, high, init)
    input_channels: Tuple[str, ...]
    output_channels: Tuple[str, ...]
    #: Output channels consumed inside the plant (stage-to-stage tokens);
    #: the permissive environment must not receive them, or it would race
    #: the designated receiver for the binary synchronization.
    env_hidden: Tuple[str, ...]
    automata: Tuple[AutSpec, ...]
    goal: str  # state predicate, e.g. "P0.Done && hops == 2"
    #: UPPAAL-style broadcast channels: one emitter, all enabled receivers.
    #: Never hidden from the environment — broadcast receivers cannot race
    #: the plant's designated receivers, so the env may always listen.
    broadcast_channels: Tuple[str, ...] = ()

    @property
    def query(self) -> str:
        return f"control: A<> {self.goal}"

    @property
    def single_plant(self) -> bool:
        return len(self.automata) == 1

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    def observable_channels(self) -> Tuple[str, ...]:
        """The interface partition: channels observable at the boundary.

        Everything except ``env_hidden`` — inputs, environment-visible
        outputs, and broadcast channels (always audible).  The hidden
        channels carry stage-to-stage tokens consumed *inside* the plant;
        under the partial semantics their syncs complete internally.
        """
        return (
            self.input_channels
            + tuple(c for c in self.output_channels if c not in self.env_hidden)
            + self.broadcast_channels
        )

    def build_plant(self) -> Network:
        """The plant network alone (tioco specification, open boundary)."""
        return self._build(f"{self.name}-plant", include_env=False)

    def build_arena(
        self, interface: Optional[Tuple[str, ...]] = None
    ) -> Network:
        """Plant composed with the permissive environment (game arena).

        ``interface`` overrides the declared boundary — the composition
        differential passes ``()`` to internalise everything and compare
        against the flat closed product.
        """
        return self._build(self.name, include_env=True, interface=interface)

    def _build(
        self,
        name: str,
        *,
        include_env: bool,
        interface: Optional[Tuple[str, ...]] = None,
    ) -> Network:
        net = NetworkBuilder(name)
        for clock in self.clocks:
            net.clock(clock)
        for var, low, high, init in self.int_vars:
            net.int_var(var, low, high, init)
        net.input_channel(*self.input_channels)
        net.output_channel(*self.output_channels)
        net.broadcast_channel(*self.broadcast_channels)
        net.interface(
            *(self.observable_channels() if interface is None else interface)
        )
        for aut in self.automata:
            builder = net.automaton(aut.name)
            for loc in aut.locations:
                invariant = None
                if loc.invariant is not None:
                    invariant = f"{loc.invariant[0]} <= {loc.invariant[1]}"
                builder.location(
                    loc.name,
                    invariant,
                    initial=loc.initial,
                    committed=loc.committed,
                    urgent=loc.urgent,
                )
            for edge in aut.edges:
                builder.edge(
                    edge.source,
                    edge.target,
                    guard=edge.guard_text(),
                    sync=edge.sync,
                    assign=edge.assign_text(),
                )
        if include_env:
            env = net.automaton("ENV")
            env.location("e", initial=True)
            for channel in self.input_channels:
                env.edge("e", "e", sync=f"{channel}!")
            for channel in self.output_channels:
                if channel not in self.env_hidden:
                    env.edge("e", "e", sync=f"{channel}?")
            for channel in self.broadcast_channels:
                # Broadcast reception never blocks or races the plant's
                # own receivers, so the environment always listens in.
                env.edge("e", "e", sync=f"{channel}?")
        return net.build()


@dataclass(frozen=True)
class GenConfig:
    """Size and shape knobs of the generator (all families)."""

    max_locations: int = 5
    max_clocks: int = 2
    max_int_vars: int = 1
    max_input_channels: int = 2
    max_output_channels: int = 2
    max_out_edges_per_loc: int = 2
    max_automata: int = 3
    max_clients: int = 3
    max_subscribers: int = 3
    max_constant: int = 6
    var_range: int = 4
    committed_prob: float = 0.15
    urgent_prob: float = 0.3
    invariant_prob: float = 0.5
    guard_prob: float = 0.6
    reset_prob: float = 0.5
    input_edge_prob: float = 0.5
    fail_prob: float = 0.35
    nudge_prob: float = 0.5
    var_prob: float = 0.4

    def scaled(self, **overrides) -> "GenConfig":
        """A copy with some knobs overridden (for scaling benchmarks)."""
        return replace(self, **overrides)


@dataclass
class GeneratedInstance:
    """One generated scenario: spec + compiled networks + query."""

    spec: NetSpec
    config: GenConfig
    _plant: Optional[Network] = field(default=None, repr=False)
    _arena: Optional[Network] = field(default=None, repr=False)

    @property
    def seed(self) -> int:
        return self.spec.seed

    @property
    def family(self) -> str:
        return self.spec.family

    @property
    def query(self) -> str:
        return self.spec.query

    @property
    def single_plant(self) -> bool:
        return self.spec.single_plant

    @property
    def plant(self) -> Network:
        if self._plant is None:
            self._plant = self.spec.build_plant()
        return self._plant

    @property
    def arena(self) -> Network:
        if self._arena is None:
            self._arena = self.spec.build_arena()
        return self._arena

    def structural_hash(self) -> str:
        """Stable digest of the arena network (seed-reproducible)."""
        return self.arena.structural_hash()

    def describe(self) -> str:
        spec = self.spec
        sizes = ", ".join(
            f"{aut.name}:{len(aut.locations)}l/{len(aut.edges)}e"
            for aut in spec.automata
        )
        return (
            f"{spec.family} seed={spec.seed} [{sizes};"
            f" clocks={len(spec.clocks)} vars={len(spec.int_vars)}]"
            f" goal={spec.goal!r}"
        )


# ----------------------------------------------------------------------
# Shared well-formedness passes
# ----------------------------------------------------------------------


def _interval_guard(
    rng: random.Random, clock: str, max_constant: int
) -> Tuple[GuardAtom, ...]:
    lo = rng.randint(0, max_constant // 2)
    hi = lo + rng.randint(0, max_constant - lo)
    atoms: List[GuardAtom] = []
    if lo > 0:
        atoms.append(GuardAtom(clock, ">=", lo))
    if rng.random() < 0.8:
        atoms.append(GuardAtom(clock, "<=", hi))
    return tuple(atoms)


def _complement_loops(loc: str, guard: Tuple[GuardAtom, ...], sync: str) -> List[EdgeSpec]:
    """Self-loops covering the complement of a single-clock interval guard,
    so a guarded input edge keeps the location strongly input-enabled."""
    loops: List[EdgeSpec] = []
    for atom in guard:
        if atom.op == ">=":
            flipped = GuardAtom(atom.clock, "<", atom.value)
        elif atom.op == "<=":
            flipped = GuardAtom(atom.clock, ">", atom.value)
        else:  # pragma: no cover - generator only emits >= / <=
            continue
        loops.append(
            EdgeSpec(loc, loc, sync=sync, clock_guard=(flipped,), role=COMPLEMENT)
        )
    return loops


def _with_entry_resets(aut: AutSpec) -> AutSpec:
    """Add resets so no edge can enter an invariant location illegally.

    Pure self-loops are exempt: the source state already satisfies its own
    invariant, and adding resets to ignore-loops would change timing.
    """
    inv_clock = {
        loc.name: loc.invariant[0]
        for loc in aut.locations
        if loc.invariant is not None
    }
    edges: List[EdgeSpec] = []
    for edge in aut.edges:
        clock = inv_clock.get(edge.target)
        if (
            clock is not None
            and edge.source != edge.target
            and clock not in edge.resets
        ):
            edge = replace(edge, resets=edge.resets + (clock,))
        edges.append(edge)
    return replace(aut, edges=tuple(edges))


def finalize_automaton(aut: AutSpec) -> AutSpec:
    """Apply the well-formedness passes a hand-edited spec also needs."""
    return _with_entry_resets(aut)


# ----------------------------------------------------------------------
# Families: random / urgent_random (single deterministic plants)
# ----------------------------------------------------------------------


def _gen_random(
    rng: random.Random, cfg: GenConfig, *, urgent: bool = False
) -> NetSpec:
    """The ``random`` family; with ``urgent`` also the ``urgent_random``
    variant, which marks some locations urgent (delay-freezing, no move
    priority) and guarantees each an unconditional output escape so the
    frozen instant always offers an action (no urgent timelock)."""
    clocks = tuple(f"x{i}" for i in range(rng.randint(1, cfg.max_clocks)))
    int_vars = tuple(
        (f"v{i}", 0, cfg.var_range, 0) for i in range(rng.randint(0, cfg.max_int_vars))
    )
    inputs = tuple(f"i{k}" for k in range(rng.randint(1, cfg.max_input_channels)))
    outputs = tuple(f"o{k}" for k in range(rng.randint(1, cfg.max_output_channels)))
    n_locs = rng.randint(3, cfg.max_locations)
    names = [f"g{i}" for i in range(n_locs)]
    committed = {
        name
        for name in names[1:-1]  # never the initial or the goal location
        if rng.random() < cfg.committed_prob
    }
    urgent_locs: set = set()
    if urgent:
        eligible = [name for name in names[1:-1] if name not in committed]
        urgent_locs = {
            name for name in eligible if rng.random() < cfg.urgent_prob
        }
        if not urgent_locs and eligible:
            urgent_locs = {rng.choice(eligible)}
    normal = [name for name in names if name not in committed]

    def random_resets() -> Tuple[str, ...]:
        return tuple(c for c in clocks if rng.random() < cfg.reset_prob)

    def random_var_use() -> Tuple[Optional[str], Optional[str]]:
        """(int_guard, assign) for an output edge; bounded by construction."""
        if not int_vars or rng.random() > cfg.var_prob:
            return None, None
        var, low, high, _ = rng.choice(int_vars)
        kind = rng.random()
        if kind < 0.4:
            return f"{var} < {high}", f"{var} := {var} + 1"
        if kind < 0.6:
            return None, f"{var} := {rng.randint(low, high)}"
        return f"{var} == {rng.randint(low, min(high, 2))}", None

    edges: List[EdgeSpec] = []
    for name in names:
        if name in committed:
            # Exactly one outgoing move: an unguarded internal step.
            edges.append(
                EdgeSpec(
                    name,
                    rng.choice(normal),
                    resets=random_resets(),
                    role=REAL,
                )
            )
            continue
        # Output edges: at most one per channel per location.
        n_out = rng.randint(0, min(len(outputs), cfg.max_out_edges_per_loc))
        for channel in rng.sample(list(outputs), n_out):
            guard: Tuple[GuardAtom, ...] = ()
            if rng.random() < cfg.guard_prob:
                guard = _interval_guard(rng, rng.choice(clocks), cfg.max_constant)
            int_guard, assign = random_var_use()
            edges.append(
                EdgeSpec(
                    name,
                    rng.choice(names),
                    sync=f"{channel}!",
                    clock_guard=guard,
                    int_guard=int_guard,
                    resets=random_resets(),
                    assign=assign,
                    role=REAL,
                )
            )
        # Input edges: one real edge per channel (maybe), complements for
        # its guard, or a plain ignore loop — always fully input-enabled.
        for channel in inputs:
            if rng.random() < cfg.input_edge_prob:
                guard = ()
                if rng.random() < cfg.guard_prob:
                    guard = _interval_guard(rng, rng.choice(clocks), cfg.max_constant)
                edges.append(
                    EdgeSpec(
                        name,
                        rng.choice(names),
                        sync=f"{channel}?",
                        clock_guard=guard,
                        resets=random_resets(),
                        role=REAL,
                    )
                )
                edges.extend(_complement_loops(name, guard, f"{channel}?"))
            else:
                edges.append(EdgeSpec(name, name, sync=f"{channel}?", role=IGNORE))
        if name in urgent_locs:
            # The urgent freeze must always offer an action: keep one
            # unconditional output escape (no clock window, no int guard,
            # no saturating assignment), mirroring the invariant-boundary
            # liveness rule.
            own_outputs = [
                pos
                for pos, e in enumerate(edges)
                if e.source == name
                and e.role == REAL
                and e.sync
                and e.sync.endswith("!")
            ]
            if own_outputs:
                pos = own_outputs[0]
                edges[pos] = replace(
                    edges[pos],
                    clock_guard=(),
                    int_guard=None,
                    assign=None,
                    role=LIVENESS,
                )
            else:
                edges.append(
                    EdgeSpec(
                        name,
                        rng.choice(names),
                        sync=f"{rng.choice(outputs)}!",
                        role=LIVENESS,
                    )
                )

    # Invariants, with a designated always-enabled escape edge per location.
    locations: List[LocSpec] = []
    for idx, name in enumerate(names):
        invariant = None
        if (
            name not in committed
            and name not in urgent_locs  # urgent already freezes delay
            and rng.random() < cfg.invariant_prob
        ):
            outgoing = [
                (pos, e)
                for pos, e in enumerate(edges)
                if e.source == name and e.role == REAL and e.sync and e.sync.endswith("!")
            ]
            if outgoing:
                invariant = (rng.choice(clocks), rng.randint(1, cfg.max_constant))
                pos, escape = rng.choice(outgoing)
                # The escape must stay fireable forever: no clock window, no
                # int guard, and no assignment (a saturating increment would
                # disable the move once the variable hits its bound).
                edges[pos] = replace(
                    escape,
                    clock_guard=(),
                    int_guard=None,
                    assign=None,
                    role=LIVENESS,
                )
        locations.append(
            LocSpec(
                name,
                invariant=invariant,
                committed=(name in committed),
                initial=(idx == 0),
                urgent=(name in urgent_locs),
            )
        )

    aut = finalize_automaton(AutSpec("P", tuple(locations), tuple(edges)))
    prefix, family = ("urand", "urgent_random") if urgent else ("rand", "random")
    return NetSpec(
        name=f"{prefix}{rng.getrandbits(24)}",
        family=family,
        seed=0,  # patched by generate_instance
        clocks=clocks,
        int_vars=int_vars,
        input_channels=inputs,
        output_channels=outputs,
        env_hidden=(),
        automata=(aut,),
        goal=f"P.{names[-1]}",
    )


def _gen_urgent_random(rng: random.Random, cfg: GenConfig) -> NetSpec:
    return _gen_random(rng, cfg, urgent=True)


# ----------------------------------------------------------------------
# Family: chain (pipeline of stages with response windows)
# ----------------------------------------------------------------------


def _gen_chain(rng: random.Random, cfg: GenConfig) -> NetSpec:
    n = rng.randint(2, max(2, cfg.max_automata))
    clocks = tuple(f"c{i}" for i in range(n))
    inputs: List[str] = ["go"]
    outputs: List[str] = []
    hidden: List[str] = []
    automata: List[AutSpec] = []
    for i in range(n):
        last = i == n - 1
        recv = "go?" if i == 0 else f"h{i - 1}?"
        emit_chan = "fin" if last else f"h{i}"
        outputs.append(emit_chan)
        if not last:
            hidden.append(emit_chan)
        deadline = rng.randint(2, cfg.max_constant)
        earliest = rng.randint(0, deadline)
        locs = [
            LocSpec("Idle", initial=True),
            LocSpec("Busy", invariant=(clocks[i], deadline)),
            LocSpec("Done"),
        ]
        edges = [
            EdgeSpec("Idle", "Busy", sync=recv, resets=(clocks[i],), role=REAL),
            EdgeSpec(
                "Busy",
                "Done",
                sync=f"{emit_chan}!",
                clock_guard=(GuardAtom(clocks[i], ">=", earliest),)
                if earliest
                else (),
                role=LIVENESS,
            ),
        ]
        if rng.random() < cfg.fail_prob:
            # An uncontrollable failure branch racing the token.
            fail_after = rng.randint(1, deadline)
            outputs.append(f"err{i}")
            locs.append(LocSpec("Stuck"))
            edges.append(
                EdgeSpec(
                    "Busy",
                    "Stuck",
                    sync=f"err{i}!",
                    clock_guard=(GuardAtom(clocks[i], ">=", fail_after),),
                    role=REAL,
                )
            )
        if last and rng.random() < cfg.nudge_prob:
            # A tester-controlled shortcut past the final window.
            inputs.append(f"nd{i}")
            edges.append(
                EdgeSpec(
                    "Busy",
                    "Done",
                    sync=f"nd{i}?",
                    clock_guard=(GuardAtom(clocks[i], "<=", deadline),),
                    role=REAL,
                )
            )
            for loc in ("Idle", "Done"):
                edges.append(EdgeSpec(loc, loc, sync=f"nd{i}?", role=IGNORE))
            if any(spec_loc.name == "Stuck" for spec_loc in locs):
                edges.append(EdgeSpec("Stuck", "Stuck", sync=f"nd{i}?", role=IGNORE))
        if i == 0:
            for loc in locs[1:]:
                edges.append(EdgeSpec(loc.name, loc.name, sync="go?", role=IGNORE))
        automata.append(
            finalize_automaton(AutSpec(f"P{i}", tuple(locs), tuple(edges)))
        )
    return NetSpec(
        name=f"chain{n}",
        family="chain",
        seed=0,
        clocks=clocks,
        int_vars=(),
        input_channels=tuple(inputs),
        output_channels=tuple(outputs),
        env_hidden=tuple(hidden),
        automata=tuple(automata),
        goal=f"P{n - 1}.Done",
    )


# ----------------------------------------------------------------------
# Family: ring (token ring with a lap counter)
# ----------------------------------------------------------------------


def _gen_ring(rng: random.Random, cfg: GenConfig) -> NetSpec:
    n = rng.randint(2, max(2, cfg.max_automata))
    clocks = tuple(f"c{i}" for i in range(n))
    outputs = [f"tok{i}" for i in range(n)]
    hidden = list(outputs)  # every token hop has a designated receiver
    int_vars = (("hops", 0, n + 1, 0),)
    automata: List[AutSpec] = []
    fail_channels: List[str] = []
    for i in range(n):
        deadline = rng.randint(2, cfg.max_constant)
        earliest = rng.randint(0, deadline)
        emit = f"tok{i}!"
        if i == 0:
            locs = [
                LocSpec("Idle", initial=True),
                LocSpec("Hold", invariant=(clocks[0], deadline)),
                LocSpec("Await"),
                LocSpec("Done"),
            ]
            edges = [
                EdgeSpec("Idle", "Hold", sync="go?", resets=(clocks[0],), role=REAL),
                EdgeSpec(
                    "Hold",
                    "Await",
                    sync=emit,
                    clock_guard=(GuardAtom(clocks[0], ">=", earliest),)
                    if earliest
                    else (),
                    role=LIVENESS,
                ),
                EdgeSpec("Await", "Done", sync=f"tok{n - 1}?", role=REAL),
            ]
            for loc in ("Hold", "Await", "Done"):
                edges.append(EdgeSpec(loc, loc, sync="go?", role=IGNORE))
        else:
            locs = [
                LocSpec("Wait", initial=True),
                LocSpec("Hold", invariant=(clocks[i], deadline)),
                LocSpec("Rest"),
            ]
            edges = [
                EdgeSpec(
                    "Wait",
                    "Hold",
                    sync=f"tok{i - 1}?",
                    resets=(clocks[i],),
                    assign="hops := hops + 1",
                    role=REAL,
                ),
                EdgeSpec(
                    "Hold",
                    "Rest",
                    sync=emit,
                    clock_guard=(GuardAtom(clocks[i], ">=", earliest),)
                    if earliest
                    else (),
                    role=LIVENESS,
                ),
            ]
        if rng.random() < cfg.fail_prob:
            fail_after = rng.randint(1, deadline)
            chan = f"err{i}"
            fail_channels.append(chan)
            locs.append(LocSpec("Lost"))
            edges.append(
                EdgeSpec(
                    "Hold",
                    "Lost",
                    sync=f"{chan}!",
                    clock_guard=(GuardAtom(clocks[i], ">=", fail_after),),
                    role=REAL,
                )
            )
            if i == 0:
                edges.append(EdgeSpec("Lost", "Lost", sync="go?", role=IGNORE))
        automata.append(
            finalize_automaton(AutSpec(f"P{i}", tuple(locs), tuple(edges)))
        )
    return NetSpec(
        name=f"ring{n}",
        family="ring",
        seed=0,
        clocks=clocks,
        int_vars=int_vars,
        input_channels=("go",),
        output_channels=tuple(outputs + fail_channels),
        env_hidden=tuple(hidden),
        automata=tuple(automata),
        goal=f"P0.Done && hops == {n - 1}",
    )


# ----------------------------------------------------------------------
# Family: clientserver (request serialization with denial branches)
# ----------------------------------------------------------------------


def _gen_client_server(rng: random.Random, cfg: GenConfig) -> NetSpec:
    m = rng.randint(1, max(1, cfg.max_clients))
    clocks = ("c",)
    inputs = tuple(f"req{j}" for j in range(m))
    outputs: List[str] = [f"grant{j}" for j in range(m)]
    hidden = list(outputs)  # grants go to the matching client
    int_vars = (("srv", 0, 2 * m + 2, 0),)
    serve_locs: List[LocSpec] = [LocSpec("Idle", initial=True)]
    edges: List[EdgeSpec] = []
    for j in range(m):
        deadline = rng.randint(2, cfg.max_constant)
        earliest = rng.randint(0, deadline)
        serve = f"Serve{j}"
        serve_locs.append(LocSpec(serve, invariant=("c", deadline)))
        edges.append(
            EdgeSpec("Idle", serve, sync=f"req{j}?", resets=("c",), role=REAL)
        )
        edges.append(
            EdgeSpec(
                serve,
                "Idle",
                sync=f"grant{j}!",
                clock_guard=(GuardAtom("c", ">=", earliest),) if earliest else (),
                assign="srv := srv + 1",
                role=LIVENESS,
            )
        )
        if rng.random() < cfg.fail_prob:
            deny_after = rng.randint(1, deadline)
            outputs.append(f"deny{j}")
            edges.append(
                EdgeSpec(
                    serve,
                    "Idle",
                    sync=f"deny{j}!",
                    clock_guard=(GuardAtom("c", ">=", deny_after),),
                    role=REAL,
                )
            )
    # The server is busy-deaf: requests while serving are ignored.
    for loc in serve_locs[1:]:
        for channel in inputs:
            edges.append(EdgeSpec(loc.name, loc.name, sync=f"{channel}?", role=IGNORE))
    server = finalize_automaton(AutSpec("S", tuple(serve_locs), tuple(edges)))
    clients: List[AutSpec] = []
    for j in range(m):
        clients.append(
            AutSpec(
                f"C{j}",
                (LocSpec("Wait", initial=True), LocSpec("Happy")),
                (
                    EdgeSpec("Wait", "Happy", sync=f"grant{j}?", role=REAL),
                    EdgeSpec("Happy", "Happy", sync=f"grant{j}?", role=IGNORE),
                ),
            )
        )
    return NetSpec(
        name=f"cs{m}",
        family="clientserver",
        seed=0,
        clocks=clocks,
        int_vars=int_vars,
        input_channels=inputs,
        output_channels=tuple(outputs),
        env_hidden=tuple(hidden),
        automata=(server,) + tuple(clients),
        goal=f"srv >= {m}",
    )


# ----------------------------------------------------------------------
# Family: broadcast (publisher / subscribers over a broadcast channel)
# ----------------------------------------------------------------------


def _gen_broadcast(rng: random.Random, cfg: GenConfig) -> NetSpec:
    """A publisher announcing on a broadcast channel to ``k`` subscribers.

    The tester starts the publisher (``go``); within a bounded window the
    publisher casts once on a broadcast channel and every still-listening
    subscriber takes the announcement simultaneously, bumping a shared
    counter.  Subscribers may go deaf first on an uncontrollable ``drop``
    branch, so the game is only winnable when the cast can beat every
    drop window.  Some publishers are *urgent relays*: the initial input
    routes through an urgent Arm location that must forward instantly.
    """
    k = rng.randint(1, max(1, cfg.max_subscribers))
    deadline = rng.randint(2, cfg.max_constant)
    earliest = rng.randint(0, deadline)
    urgent_relay = rng.random() < cfg.urgent_prob
    pub_locs = [
        LocSpec("Idle", initial=True),
        LocSpec("Prep", invariant=("x", deadline)),
        LocSpec("Sent"),
    ]
    pub_edges = [
        EdgeSpec(
            "Prep",
            "Sent",
            sync="cast!",
            clock_guard=(GuardAtom("x", ">=", earliest),) if earliest else (),
            role=LIVENESS,
        ),
    ]
    if urgent_relay:
        pub_locs.insert(1, LocSpec("Arm", urgent=True))
        pub_edges.append(EdgeSpec("Idle", "Arm", sync="go?", role=REAL))
        # The urgent freeze resolves through an unguarded output relay.
        pub_edges.append(
            EdgeSpec("Arm", "Prep", sync="armed!", resets=("x",), role=LIVENESS)
        )
        pub_edges.append(EdgeSpec("Arm", "Arm", sync="go?", role=IGNORE))
    else:
        pub_edges.append(
            EdgeSpec("Idle", "Prep", sync="go?", resets=("x",), role=REAL)
        )
    for loc in ("Prep", "Sent"):
        pub_edges.append(EdgeSpec(loc, loc, sync="go?", role=IGNORE))
    outputs: List[str] = ["armed"] if urgent_relay else []
    automata = [finalize_automaton(AutSpec("P", tuple(pub_locs), tuple(pub_edges)))]
    for j in range(k):
        locs = [LocSpec("Wait", initial=True), LocSpec("Got")]
        edges = [
            EdgeSpec(
                "Wait",
                "Got",
                sync="cast?",
                assign="got := got + 1",
                role=REAL,
            )
        ]
        if rng.random() < cfg.fail_prob:
            drop_after = rng.randint(1, deadline)
            outputs.append(f"drop{j}")
            locs.append(LocSpec("Deaf"))
            edges.append(
                EdgeSpec(
                    "Wait",
                    "Deaf",
                    sync=f"drop{j}!",
                    clock_guard=(GuardAtom("x", ">=", drop_after),),
                    role=REAL,
                )
            )
        automata.append(
            finalize_automaton(AutSpec(f"S{j}", tuple(locs), tuple(edges)))
        )
    return NetSpec(
        name=f"bcast{k}",
        family="broadcast",
        seed=0,
        clocks=("x",),
        int_vars=(("got", 0, k + 1, 0),),
        input_channels=("go",),
        output_channels=tuple(outputs),
        env_hidden=(),
        automata=tuple(automata),
        goal=f"P.Sent && got == {k}",
        broadcast_channels=("cast",),
    )


# ----------------------------------------------------------------------
# Family: mutant (a base instance with one spec-level mutation)
# ----------------------------------------------------------------------


def _mutable_edges(aut: AutSpec) -> List[int]:
    return [
        pos
        for pos, edge in enumerate(aut.edges)
        if edge.role in (REAL, LIVENESS)
    ]


def mutate_spec(spec: NetSpec, rng: random.Random) -> NetSpec:
    """Apply one random mutation operator at the spec level.

    Mutants stay model-legal (entry resets are re-established) but may
    lose liveness, determinism, or input-enabledness — exactly the faults
    the differential harness must stay robust against.
    """
    operators = ["shift_guard", "widen_invariant", "retarget", "drop", "spurious"]
    visible = [c for c in spec.output_channels if c not in spec.env_hidden]
    if len(visible) >= 2:
        operators.append("swap_output")
    if any(loc.urgent for aut in spec.automata for loc in aut.locations):
        operators.append("toggle_urgent")
    if spec.broadcast_channels:
        operators.append("spurious_receiver")
    for _ in range(12):  # retry until an operator finds a target
        op = rng.choice(operators)
        aut_idx = rng.randrange(len(spec.automata))
        aut = spec.automata[aut_idx]
        mutated = _apply_operator(op, aut, spec, rng)
        if mutated is not None:
            automata = list(spec.automata)
            automata[aut_idx] = finalize_automaton(mutated)
            return replace(
                spec,
                name=f"{spec.name}-{op}",
                family="mutant",
                automata=tuple(automata),
            )
    return replace(spec, family="mutant")


def _apply_operator(
    op: str, aut: AutSpec, spec: NetSpec, rng: random.Random
) -> Optional[AutSpec]:
    edges = list(aut.edges)
    if op == "shift_guard":
        guarded = [
            pos for pos in _mutable_edges(aut) if edges[pos].clock_guard
        ]
        if not guarded:
            return None
        pos = rng.choice(guarded)
        atoms = list(edges[pos].clock_guard)
        k = rng.randrange(len(atoms))
        atom = atoms[k]
        atoms[k] = replace(atom, value=max(0, atom.value + rng.choice((-2, -1, 1, 2))))
        edges[pos] = replace(edges[pos], clock_guard=tuple(atoms))
        return replace(aut, edges=tuple(edges))
    if op == "widen_invariant":
        locs = list(aut.locations)
        with_inv = [i for i, loc in enumerate(locs) if loc.invariant is not None]
        if not with_inv:
            return None
        i = rng.choice(with_inv)
        clock, bound = locs[i].invariant
        locs[i] = replace(
            locs[i], invariant=(clock, max(1, bound + rng.choice((-1, 1, 2))))
        )
        return replace(aut, locations=tuple(locs))
    if op == "retarget":
        candidates = [
            pos
            for pos in _mutable_edges(aut)
            if edges[pos].source != edges[pos].target
        ]
        if not candidates:
            return None
        pos = rng.choice(candidates)
        new_target = rng.choice([loc.name for loc in aut.locations])
        edges[pos] = replace(edges[pos], target=new_target)
        return replace(aut, edges=tuple(edges))
    if op == "swap_output":
        visible = [c for c in spec.output_channels if c not in spec.env_hidden]
        candidates = [
            pos
            for pos in _mutable_edges(aut)
            if edges[pos].sync is not None
            and edges[pos].sync.endswith("!")
            and edges[pos].sync[:-1] in visible
        ]
        if not candidates:
            return None
        pos = rng.choice(candidates)
        current = edges[pos].sync[:-1]
        others = [c for c in visible if c != current]
        if not others:
            return None
        edges[pos] = replace(edges[pos], sync=f"{rng.choice(others)}!")
        return replace(aut, edges=tuple(edges))
    if op == "drop":
        candidates = _mutable_edges(aut)
        if len(candidates) < 2:
            return None
        pos = rng.choice(candidates)
        del edges[pos]
        return replace(aut, edges=tuple(edges))
    if op == "toggle_urgent":
        locs = list(aut.locations)
        candidates = [
            i
            for i, loc in enumerate(locs)
            if not loc.committed and not loc.initial
        ]
        if not candidates:
            return None
        i = rng.choice(candidates)
        locs[i] = replace(locs[i], urgent=not locs[i].urgent, invariant=None)
        return replace(aut, locations=tuple(locs))
    if op == "spurious_receiver":
        # An extra broadcast receiving edge: may make the broadcast move
        # nondeterministic or change the fan-out; receivers must stay
        # clock-guard-free (model-layer restriction).
        channel = rng.choice(spec.broadcast_channels)
        names = [loc.name for loc in aut.locations if not loc.committed]
        if not names:
            return None
        edges.append(
            EdgeSpec(
                rng.choice(names),
                rng.choice(names),
                sync=f"{channel}?",
                role=REAL,
            )
        )
        return replace(aut, edges=tuple(edges))
    if op == "spurious":
        visible = [c for c in spec.output_channels if c not in spec.env_hidden]
        if not visible:
            return None
        names = [loc.name for loc in aut.locations if not loc.committed]
        source = rng.choice(names)
        guard: Tuple[GuardAtom, ...] = ()
        if spec.clocks and rng.random() < 0.6:
            guard = _interval_guard(rng, rng.choice(spec.clocks), 6)
        edges.append(
            EdgeSpec(
                source,
                rng.choice(names),
                sync=f"{rng.choice(visible)}!",
                clock_guard=guard,
                role=REAL,
            )
        )
        return replace(aut, edges=tuple(edges))
    return None


def _gen_mutant(rng: random.Random, cfg: GenConfig) -> NetSpec:
    base_family = rng.choice(
        ("random", "chain", "ring", "clientserver", "broadcast", "urgent_random")
    )
    base = FAMILIES[base_family](rng, cfg)
    return mutate_spec(base, rng)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

FAMILIES: Dict[str, Callable[[random.Random, GenConfig], NetSpec]] = {
    "random": _gen_random,
    "chain": _gen_chain,
    "ring": _gen_ring,
    "clientserver": _gen_client_server,
    "broadcast": _gen_broadcast,
    "urgent_random": _gen_urgent_random,
    "mutant": _gen_mutant,
}

DEFAULT_FAMILIES: Tuple[str, ...] = tuple(FAMILIES)


def generate_instance(
    seed: int,
    family: Optional[str] = None,
    config: Optional[GenConfig] = None,
) -> GeneratedInstance:
    """Generate one instance; everything derives from ``seed``.

    ``family`` None picks a family from the seed itself, so plain integer
    seeds still cover the whole space.
    """
    cfg = config or GenConfig()
    rng = random.Random(seed)
    if family is None:
        family = rng.choice(DEFAULT_FAMILIES)
    try:
        generator = FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown family {family!r}; known: {', '.join(FAMILIES)}"
        ) from None
    spec = replace(generator(rng, cfg), seed=seed)
    return GeneratedInstance(spec=spec, config=cfg)


def mutate_instance(
    seed: int,
    family: Optional[str],
    mutation_seed: int,
    config: Optional[GenConfig] = None,
) -> GeneratedInstance:
    """Regenerate ``(seed, family)`` and apply one seeded mutation.

    The corpus scheduler's unit of work: a corpus entry is identified by
    its generating ``(seed, family)`` pair, and a mutation of it by one
    extra integer — so a mutated instance is reproducible from three
    integers exactly like a base instance is from two.  The mutated spec
    keeps the base seed (checks derive their randomness from it), while
    ``mutate_spec`` stamps the family ``mutant`` and records the operator
    in the name.
    """
    base = generate_instance(seed, family, config)
    rng = random.Random(mutation_seed)
    spec = replace(mutate_spec(base.spec, rng), seed=seed)
    return GeneratedInstance(spec=spec, config=base.config)


def generate_batch(
    count: int,
    seed: int = 0,
    families: Sequence[str] = DEFAULT_FAMILIES,
    config: Optional[GenConfig] = None,
) -> List[GeneratedInstance]:
    """``count`` instances cycling round-robin through ``families``.

    Instance ``i`` uses seed ``seed + i`` and family ``families[i % len]``,
    so any failure is reproducible as ``generate_instance(seed + i,
    family)``.
    """
    return [
        generate_instance(seed + i, families[i % len(families)], config)
        for i in range(count)
    ]
