"""``python -m repro.gen`` is a shorthand for ``python -m repro.gen.cli``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
