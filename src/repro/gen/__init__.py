"""repro.gen — random model generation and differential testing.

The paper's evaluation rests on three fixed case studies; this subsystem
turns every other layer of the library into something that can be fuzzed
on demand:

* :mod:`repro.gen.networks` — a seeded, configurable generator of
  well-formed-by-construction timed I/O game networks, organized into
  scenario *families* (``random``, ``chain``, ``ring``, ``clientserver``,
  ``broadcast``, ``urgent_random``, ``mutant``);
* :mod:`repro.gen.zones` — seeded random zones/federations (diagonal
  constraints included) plus membership-differential checks of the DBM
  kernel's algebra;
* :mod:`repro.gen.differential` — the oracle harness: per generated
  instance, cross-checks the two game solvers, symbolic vs concrete
  semantics, and tioco vs rtioco self-conformance, with greedy shrinking
  of failing instances;
* :mod:`repro.gen.cli` — ``python -m repro.gen.cli --count 200 --seed 0``.

Every generated artifact is a pure function of its seed: the same seed
reproduces the same network (stable :meth:`Network.structural_hash`), the
same simulated runs, and the same verdicts.
"""

from .networks import (
    FAMILIES,
    AutSpec,
    EdgeSpec,
    GenConfig,
    GeneratedInstance,
    GuardAtom,
    LocSpec,
    NetSpec,
    generate_batch,
    generate_instance,
    mutate_instance,
)
from .zones import (
    check_zone_algebra,
    random_federation,
    random_point,
    random_zone,
)
from .differential import (
    CheckResult,
    InstanceReport,
    run_campaign,
    run_instance_checks,
    shrink_instance,
)

__all__ = [
    "FAMILIES",
    "AutSpec",
    "EdgeSpec",
    "GenConfig",
    "GeneratedInstance",
    "GuardAtom",
    "LocSpec",
    "NetSpec",
    "generate_batch",
    "generate_instance",
    "mutate_instance",
    "check_zone_algebra",
    "random_federation",
    "random_point",
    "random_zone",
    "CheckResult",
    "InstanceReport",
    "run_campaign",
    "run_instance_checks",
    "shrink_instance",
]
