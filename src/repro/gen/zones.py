"""Seeded random zones and federations, plus kernel algebra self-checks.

Generalizes the axis-aligned box strategies of ``tests/zone_strategies``:
zones here mix upper/lower bounds with *diagonal* constraints, and
federations hold several overlapping member zones.  Unlike the hypothesis
strategies (which drive the property-test suite), these generators run
off a plain ``random.Random`` so the differential CLI can reproduce any
failure from a printed integer seed.

:func:`check_zone_algebra` is the membership-differential oracle: every
DBM/federation operation is compared, on sampled rational points, against
its set-theoretic definition evaluated directly on the points.  Exact
identities (inclusion vs. subtraction emptiness, ``compact`` preserving
semantics, ``predt`` bounds) are checked exactly.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional, Sequence

from ..dbm import DBM, Federation, bound, subtract_zone
from ..game.predt import predt


def random_zone(
    rng: random.Random,
    dim: int = 4,
    max_constraints: int = 6,
    lo: int = -8,
    hi: int = 12,
    diagonal_prob: float = 0.5,
) -> DBM:
    """A random canonical zone (may be empty).

    With probability ``diagonal_prob`` each constraint relates two real
    clocks (``x_i - x_j ≺ b``) instead of bounding one against zero.
    """
    zone = DBM.universal(dim)
    for _ in range(rng.randint(0, max_constraints)):
        if dim > 2 and rng.random() < diagonal_prob:
            i, j = rng.sample(range(1, dim), 2)
        else:
            i = rng.randrange(dim)
            j = 0 if i else rng.randrange(1, dim)
        value = rng.randint(lo, hi)
        strict = rng.random() < 0.5
        zone = zone.tighten(i, j, bound(value, strict))
        if zone.is_empty():
            break
    return zone


def random_federation(
    rng: random.Random,
    dim: int = 4,
    max_zones: int = 4,
    **kwargs,
) -> Federation:
    """A random federation of 0..max_zones random zones."""
    return Federation(
        dim, [random_zone(rng, dim, **kwargs) for _ in range(rng.randint(0, max_zones))]
    )


def random_point(
    rng: random.Random, dim: int = 4, hi: int = 24
) -> List[Fraction]:
    """A random quarter-integer clock valuation (index 0 is the 0-clock)."""
    return [Fraction(0)] + [
        Fraction(rng.randint(0, hi * 4), 4) for _ in range(dim - 1)
    ]


def _sample_points(
    rng: random.Random, dim: int, sets: Sequence, count: int = 3
) -> List[List[Fraction]]:
    """Random points: uniform ones plus points inside the given sets."""
    points = [random_point(rng, dim) for _ in range(count)]
    for s in sets:
        p = s.sample_random(rng)
        if p is not None:
            points.append(list(p))
            shifted = [p[0]] + [v + Fraction(rng.randint(0, 4), 2) for v in p[1:]]
            points.append(shifted)
    return points


def check_zone_algebra(
    rng: random.Random, dim: int = 4, trials: int = 25
) -> List[str]:
    """Differential checks of the DBM kernel; returns failure details."""
    failures: List[str] = []

    def expect(condition: bool, detail: str) -> None:
        if not condition:
            failures.append(detail)

    for trial in range(trials):
        a = random_zone(rng, dim)
        b = random_zone(rng, dim)
        f = random_federation(rng, dim)
        g = random_federation(rng, dim)
        points = _sample_points(rng, dim, [z for z in (a, b) if z] + [f, g])

        # -- zone operations vs. membership ---------------------------------
        inter = a.intersect(b)
        for p in points:
            expect(
                inter.contains(p) == (a.contains(p) and b.contains(p)),
                f"trial {trial}: intersect membership mismatch at {p}",
            )
            union = Federation(dim, [a, b])
            expect(
                union.contains(p) == (a.contains(p) or b.contains(p)),
                f"trial {trial}: union membership mismatch at {p}",
            )
            diff = Federation(dim, subtract_zone(a, b))
            expect(
                diff.contains(p) == (a.contains(p) and not b.contains(p)),
                f"trial {trial}: subtract_zone membership mismatch at {p}",
            )
            if a.contains(p):
                d = Fraction(rng.randint(0, 8), 2)
                shifted = [p[0]] + [v + d for v in p[1:]]
                expect(
                    a.up().contains(shifted),
                    f"trial {trial}: up() lost delay successor at {shifted}",
                )
                expect(
                    a.down().contains(p) and a.up().contains(p),
                    f"trial {trial}: up/down not inflationary at {p}",
                )
            reset = a.reset_pred([1])
            mapped = list(p)
            mapped[1] = Fraction(0)
            expect(
                reset.contains(p) == a.contains(mapped),
                f"trial {trial}: reset_pred membership mismatch at {p}",
            )
            c = rng.randint(0, 6)
            assigned = a.assign_pred([(dim - 1, c)])
            mapped = list(p)
            mapped[dim - 1] = Fraction(c)
            expect(
                assigned.contains(p) == a.contains(mapped),
                f"trial {trial}: assign_pred membership mismatch at {p}",
            )

        # -- exact identities ----------------------------------------------
        expect(
            a.includes(b) == (not subtract_zone(b, a)),
            f"trial {trial}: DBM.includes disagrees with subtraction",
        )
        expect(
            f.includes(g) == g.subtract(f).is_empty(),
            f"trial {trial}: Federation.includes disagrees with subtraction",
        )
        expect(
            f.compact().equals(f),
            f"trial {trial}: compact() changed federation semantics",
        )

        # -- federation operations vs. membership ---------------------------
        fg = f.intersect(g)
        sub = f.subtract(g)
        for p in points:
            expect(
                fg.contains(p) == (f.contains(p) and g.contains(p)),
                f"trial {trial}: federation intersect mismatch at {p}",
            )
            expect(
                sub.contains(p) == (f.contains(p) and not g.contains(p)),
                f"trial {trial}: federation subtract mismatch at {p}",
            )

        # -- predt bounds ----------------------------------------------------
        strict = predt(f, g, lenient=False)
        lenient = predt(f, g, lenient=True)
        expect(
            lenient.includes(strict),
            f"trial {trial}: predt lenient does not include strict",
        )
        expect(
            f.down().includes(lenient),
            f"trial {trial}: predt escapes down(goal)",
        )
        no_bad = predt(f, Federation.empty(dim), lenient=False)
        expect(
            no_bad.equals(f.down()),
            f"trial {trial}: predt(goal, empty) != down(goal)",
        )
    return failures
