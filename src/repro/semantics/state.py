"""Symbolic and concrete states of a network.

* A **discrete state** is the pair (location vector, variable valuation),
  both plain tuples of ints — hashable and cheap to compare.
* A **symbolic state** adds a zone (DBM) over the network's clocks.
* A **concrete state** adds an exact rational clock valuation instead;
  concrete states drive test execution and simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Tuple

from ..dbm import DBM

DiscreteKey = Tuple[Tuple[int, ...], Tuple[int, ...]]


@dataclass(frozen=True)
class SymbolicState:
    """(location vector, variable values, zone)."""

    locs: Tuple[int, ...]
    vars: Tuple[int, ...]
    zone: DBM

    @property
    def key(self) -> DiscreteKey:
        return (self.locs, self.vars)

    def is_empty(self) -> bool:
        """True iff the zone part is empty."""
        return self.zone.is_empty()

    def __repr__(self) -> str:
        return f"SymbolicState(locs={self.locs}, vars={self.vars}, zone={self.zone!r})"


@dataclass(frozen=True)
class ConcreteState:
    """(location vector, variable values, exact clock valuation).

    ``clocks[0]`` is the reference clock and always 0; real clocks are at
    indices 1..dim-1, mirroring DBM layout.
    """

    locs: Tuple[int, ...]
    vars: Tuple[int, ...]
    clocks: Tuple[Fraction, ...]

    @property
    def key(self) -> DiscreteKey:
        return (self.locs, self.vars)

    def delayed(self, d: Fraction) -> "ConcreteState":
        """The state after ``d`` time units (clocks advance together)."""
        if d < 0:
            raise ValueError("negative delay")
        if d == 0:
            return self
        new_clocks = (Fraction(0),) + tuple(c + d for c in self.clocks[1:])
        return ConcreteState(self.locs, self.vars, new_clocks)

    def in_zone(self, zone: DBM) -> bool:
        return zone.contains(self.clocks)


def zero_valuation(dim: int) -> Tuple[Fraction, ...]:
    """The all-zero clock valuation (index 0 = reference clock)."""
    return tuple(Fraction(0) for _ in range(dim))
