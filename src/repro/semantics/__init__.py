"""Symbolic and concrete semantics of timed automaton networks."""

from .state import ConcreteState, DiscreteKey, SymbolicState, zero_valuation
from .system import DelayInterval, Move, System
