"""Symbolic and concrete semantics of timed automaton networks."""

from .compose import EstimateLimit, StateEstimate
from .state import ConcreteState, DiscreteKey, SymbolicState, zero_valuation
from .system import CLOSED, OPEN, PARTIAL, DelayInterval, Move, System
