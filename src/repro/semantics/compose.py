"""State estimation for partially composed plants (UPPAAL-TRON style).

A multi-automaton plant monitored through its interface partition has
*hidden* moves: internalised synchronizations (and their variable
updates) fire at instants the tester cannot observe.  ``s0 After σ`` is
then no longer a single state but the **set** of states reachable by
interleaving σ's observed delays and actions with hidden moves at
arbitrary legal times.  :class:`StateEstimate` tracks that set
symbolically, which is exactly what the online monitors need:

* a delay ``d`` is conformant iff *some* member admits a hidden-move
  interleaving of total duration exactly ``d``;
* an output ``o`` is allowed iff *some* member enables an ``o`` move at
  the current instant;
* the maximal quiescence is the supremum of durations reachable without
  an observable action.

**Representation.**  Members are ``(locations, variables, zone)`` triples
whose zones live in a DBM *padded with one extra clock* ``t`` (index
``system.dim``): the time elapsed since the last observation.  ``t``
appears in no model constraint, so guard/invariant/reset encodings from
:class:`~repro.semantics.system.System` apply unchanged, while
constraining ``t == d`` after a timed closure selects exactly the
interleavings of duration ``d``.  Observed delays are rationals; all
encodings are integers, so the estimate keeps a global *time scale*
``k`` (every bound multiplied by ``k``) and rescales on demand so that
``k·d`` is integral — the classic region-to-integer trick.

The timed closure is a reachability fixpoint (delay-close, fire hidden
moves, repeat, with zone-inclusion subsumption) bounded by
``max_states``; models whose hidden behaviour exceeds the budget raise
:class:`EstimateLimit` rather than returning an unsound answer.

**Batched execution.**  Members sharing a discrete state ``(locs, vars)``
are indistinguishable to the model — same moves, same guard/invariant
encodings, same resets — so every per-member operation of the closure is
uniform across such a group and runs on the *stacked* representation
(:mod:`repro.dbm.stack`): one ``(k, dim, dim)`` array per group, one
batched guard/reset/invariant/delay pipeline per internal move
(:func:`repro.dbm.stack.hidden_post_step`), one broadcast
inclusion-matrix comparison for frontier subsumption
(:func:`repro.dbm.stack.subsume_frontier`), one vectorized rescale
(:func:`repro.dbm.stack.scale_stack`).  Groups below
:func:`repro.dbm.stack.batch_min` members take the per-zone path
(``REPRO_BATCH_MIN`` overrides the threshold), and the
per-zone path is also kept wholesale (``batch=False``, or the
``REPRO_ESTIMATE_SCALAR`` environment variable) as the differential
reference the fuzz harness cross-checks the kernels against.

Both paths use the same *pruning* subsumption — a newly admitted zone
evicts the retained zones it strictly dominates — so the retained set at
the fixpoint is the antichain of maximal reachable zones, which is
processing-order independent: scalar and batched closures agree not just
on answers but on the final member sets, and the ``max_states`` budget is
checked against the same post-pruning count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..dbm import DBM
from ..dbm import stack as _sk
from ..dbm.bounds import INF, MAX_BOUND_CONST, decode, le
from ..expr.env import Declarations
from ..ta.model import ModelError
from ..util import counters
from .system import PARTIAL, Move, System


class EstimateLimit(RuntimeError):
    """The hidden-move closure exceeded the configured state budget."""


def apply_var_updates(decls: Declarations, vars: tuple, updates) -> tuple:
    """Apply ``(name, index_or_None, value)`` updates to a variable tuple.

    The message-payload helper shared by the monitors and the simulated
    implementations (UPPAAL value-passing idiom); unknown names and
    out-of-range array indices are ignored.
    """
    state = list(vars)
    for name, index, value in updates:
        if index is None:
            var = decls.int_vars.get(name)
            if var is not None:
                state[var.slot] = value
        else:
            arr = decls.arrays.get(name)
            if arr is not None and 0 <= index < arr.size:
                state[arr.offset + index] = value
    return tuple(state)


def _scaled_zone(zone: DBM, factor: int) -> DBM:
    """The zone with every finite bound constant multiplied by ``factor``.

    Scaling all values by the same positive factor preserves both the
    shortest-path (canonical-form) inequalities and the strictness bits,
    so the result is canonical iff the input was.  Raises
    :class:`EstimateLimit` if a scaled constant would leave the range the
    DBM kernel's drift-tolerant closure is sound for.
    """
    m = zone.m
    finite = m < INF
    values = (m >> 1) * factor
    if (abs(values[finite]) > MAX_BOUND_CONST).any():
        raise EstimateLimit(
            "rescaled zone constant exceeds the supported DBM range"
            f" (±{MAX_BOUND_CONST}); the observed delays' denominators are"
            " too varied for this model's constants"
        )
    scaled = (values << 1) | (m & 1)
    scaled[~finite] = INF
    return DBM(scaled)


@dataclass(frozen=True)
class _Member:
    """One element of the state set (zone padded with the elapsed clock)."""

    locs: Tuple[int, ...]
    vars: Tuple[int, ...]
    zone: DBM


class StateEstimate:
    """The set of spec states compatible with the observed timed trace."""

    def __init__(
        self,
        system: System,
        mode: str = PARTIAL,
        *,
        max_states: int = 256,
        batch: Optional[bool] = None,
        batch_min: Optional[int] = None,
    ):
        self.system = system
        self.mode = mode
        #: Index of the padded elapsed-time clock.
        self.tdx = system.dim
        self.max_states = max_states
        # Batched execution: ``batch=False`` (or REPRO_ESTIMATE_SCALAR=1
        # in the environment) forces the per-zone reference path; the
        # batched path itself falls back to per-zone work for groups
        # below ``batch_min`` members.
        if batch is None:
            batch = not os.environ.get("REPRO_ESTIMATE_SCALAR")
        self.batch = bool(batch)
        self.batch_min = (
            _sk.batch_min() if batch_min is None else max(1, batch_min)
        )
        self.scale = 1
        # Largest time scale for which every scaled model constant stays
        # within the DBM kernel's sound range; beyond it rescaling raises
        # EstimateLimit instead of silently corrupting closures.
        max_const = max([1] + system.network.max_constants())
        self._scale_cap = max(1, MAX_BOUND_CONST // (max_const + 1))
        self.states: List[_Member] = []
        self._closure: Optional[List[_Member]] = None
        #: Most members ever tracked at once (budget accounting).
        self.peak: int = 0
        #: Growth hook, called with the member count after every state-set
        #: change — the test server wires its global state budget here so
        #: backpressure sees estimate growth live, between observations.
        self.on_growth: Optional[Callable[[int], None]] = None
        self.reset()

    # ------------------------------------------------------------------
    # Construction / bookkeeping
    # ------------------------------------------------------------------

    def reset(self) -> None:
        system = self.system
        locs = system.network.initial_locations()
        vars = system.decls.initial_state()
        self.scale = 1
        zone = DBM.zero(self.tdx + 1)
        zone = zone.constrained(
            self._scaled(system.invariant_constraints(locs, vars))
        )
        self.states = self._instant_closure([_Member(locs, vars, zone)])
        if not self.states:
            raise ModelError("initial state violates an invariant")
        self._closure = None
        self.peak = 0
        self._notify()

    @property
    def size(self) -> int:
        return len(self.states)

    def _notify(self) -> None:
        """Record the new member count and fire the growth hook."""
        n = len(self.states)
        if n > self.peak:
            self.peak = n
        if self.on_growth is not None:
            self.on_growth(n)

    def _scaled(self, constraints) -> list:
        if self.scale == 1:
            return list(constraints)
        k = self.scale
        return [
            (i, j, enc if enc >= INF else (((enc >> 1) * k) << 1) | (enc & 1))
            for (i, j, enc) in constraints
        ]

    def _ensure_scale(self, d: Fraction) -> None:
        q = d.denominator
        if self.scale % q == 0:
            return
        new_scale = self.scale * q // gcd(self.scale, q)
        if new_scale > self._scale_cap:
            raise EstimateLimit(
                f"time scale {new_scale} (lcm of observed delay"
                f" denominators) exceeds the sound DBM range for this"
                f" model's constants (cap {self._scale_cap})"
            )
        factor = new_scale // self.scale
        # Rescaling commutes with the timed closure (every bound scales
        # by the same factor), so the memo survives a scale change:
        # rescale the cached members instead of recomputing the fixpoint.
        # Both lists are rescaled before either is assigned — the closure
        # can hold larger constants than the raw states (hidden shifts
        # add model constants) and may overflow first; a partial update
        # would leave zones inflated relative to the declared scale.
        states = self._rescaled(self.states, factor)
        closure = (
            self._rescaled(self._closure, factor)
            if self._closure is not None
            else None
        )
        self.states = states
        self._closure = closure
        self.scale = new_scale

    def _rescaled(self, members: List[_Member], factor: int) -> List[_Member]:
        """Members with every zone bound multiplied by ``factor``."""
        if self.batch and len(members) >= self.batch_min:
            stacked = np.stack([m.zone.m for m in members])
            if not _sk.scale_stack(stacked, factor):
                raise EstimateLimit(
                    "rescaled zone constant exceeds the supported DBM range"
                    f" (±{MAX_BOUND_CONST}); the observed delays'"
                    " denominators are too varied for this model's constants"
                )
            return [
                _Member(m.locs, m.vars, DBM(stacked[i]))
                for i, m in enumerate(members)
            ]
        return [
            _Member(m.locs, m.vars, _scaled_zone(m.zone, factor))
            for m in members
        ]

    # ------------------------------------------------------------------
    # Padded-zone semantics pieces
    # ------------------------------------------------------------------

    def _internal_moves(
        self, locs: Tuple[int, ...], vars: Tuple[int, ...]
    ) -> List[Move]:
        return [
            move
            for move in self.system.moves_from(locs, vars, self.mode)
            if move.direction == "internal"
        ]

    @staticmethod
    def _grouped(members: Iterable[_Member]) -> Dict[tuple, List[_Member]]:
        """Members bucketed by discrete state (the batching unit)."""
        groups: Dict[tuple, List[_Member]] = {}
        for member in members:
            groups.setdefault((member.locs, member.vars), []).append(member)
        return groups

    def _post_group(
        self,
        locs: Tuple[int, ...],
        vars: Tuple[int, ...],
        zones: List[DBM],
        move: Move,
        *,
        delayed: bool,
    ) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...], List[DBM]]]:
        """One move's successor over every zone of a discrete-state group.

        The group shares ``(locs, vars)``, so the move's variable update,
        guard/invariant encodings, resets, and delay admissibility are
        computed once; only the zone pipeline runs per member — through
        the stacked kernel (:func:`repro.dbm.stack.hidden_post_step`)
        when the group is large enough, per zone otherwise.  Returns
        ``(new_locs, new_vars, nonempty successor zones)``, or None when
        the move is variable-infeasible for this discrete state.
        """
        system = self.system
        new_vars = system.apply_move_vars(vars, move)
        if new_vars is None:
            return None
        new_locs = system.target_locs(locs, move)
        if not system.invariant_int_ok(new_locs, new_vars):
            return None
        guard = self._scaled(system.guard_constraints(move, vars))
        invariant = self._scaled(system.invariant_constraints(new_locs, new_vars))
        resets = system.resets_of(move)
        delay = delayed and system.can_delay(new_locs)
        if self.batch and len(zones) >= self.batch_min:
            counters.inc("estimate.batched_groups")
            stacked = np.stack([z.m for z in zones])
            keep = _sk.hidden_post_step(
                stacked,
                guard,
                [clock for clock, _ in resets],
                [(clock, value * self.scale) for clock, value in resets if value],
                invariant,
                delay=delay,
            )
            # Copy surviving rows out of the group buffer: a view would
            # pin the whole (k, dim, dim) stack for as long as the few
            # kept members live.
            return (
                new_locs,
                new_vars,
                [DBM(stacked[i].copy()) for i in np.flatnonzero(keep)],
            )
        counters.inc("estimate.scalar_groups")
        out: List[DBM] = []
        for zone in zones:
            zone = zone.constrained(guard)
            if zone.is_empty():
                continue
            if resets:
                zone = zone.assign_clocks(
                    [(clock, value * self.scale) for clock, value in resets]
                )
            zone = zone.constrained(invariant)
            if zone.is_empty():
                continue
            if delay:
                zone = zone.up().constrained(invariant)
            out.append(zone)
        return new_locs, new_vars, out

    def _group_enables(
        self,
        locs: Tuple[int, ...],
        vars: Tuple[int, ...],
        zones: List[DBM],
        move: Move,
    ) -> bool:
        """Existence-only probe: is the move enabled in *some* member?

        The early-exit twin of :meth:`_post_group` for
        :meth:`enabled_labels`, which needs one surviving zone, never the
        zones themselves.  Shared encodings are computed once per group;
        then the batched path asks :func:`repro.dbm.stack.any_hidden_post`
        (no copy-out, no delay step — resets cannot empty a nonempty zone
        and emptiness is delay-invariant) and the per-zone path
        short-circuits at the first survivor, with the same shortcut:
        when the target state carries no clock invariant, surviving the
        guard already proves enabledness.
        """
        system = self.system
        new_vars = system.apply_move_vars(vars, move)
        if new_vars is None:
            return False
        new_locs = system.target_locs(locs, move)
        if not system.invariant_int_ok(new_locs, new_vars):
            return False
        guard = self._scaled(system.guard_constraints(move, vars))
        invariant = self._scaled(
            system.invariant_constraints(new_locs, new_vars)
        )
        resets = system.resets_of(move)
        if self.batch and len(zones) >= self.batch_min:
            counters.inc("estimate.enable_probes_batched")
            stacked = np.stack([z.m for z in zones])
            return _sk.any_hidden_post(
                stacked,
                guard,
                [clock for clock, _ in resets],
                [(clock, value * self.scale) for clock, value in resets if value],
                invariant,
            )
        counters.inc("estimate.enable_probes_scalar")
        for zone in zones:
            zone = zone.constrained(guard)
            if zone.is_empty():
                continue
            if not invariant:
                return True
            if resets:
                zone = zone.assign_clocks(
                    [(clock, value * self.scale) for clock, value in resets]
                )
            if not zone.constrained(invariant).is_empty():
                return True
        return False

    def _post(self, member: _Member, move: Move) -> Optional[_Member]:
        """Discrete successor on padded zones (mirrors ``System.post``)."""
        system = self.system
        new_vars = system.apply_move_vars(member.vars, move)
        if new_vars is None:
            return None
        new_locs = system.target_locs(member.locs, move)
        if not system.invariant_int_ok(new_locs, new_vars):
            return None
        zone = member.zone.constrained(
            self._scaled(system.guard_constraints(move, member.vars))
        )
        if zone.is_empty():
            return None
        resets = system.resets_of(move)
        if resets:
            zone = zone.assign_clocks(
                [(clock, value * self.scale) for clock, value in resets]
            )
        zone = zone.constrained(
            self._scaled(system.invariant_constraints(new_locs, new_vars))
        )
        if zone.is_empty():
            return None
        return _Member(new_locs, new_vars, zone)

    def _delayed(self, member: _Member) -> _Member:
        """Delay closure of a member (elapsed clock advances with time)."""
        system = self.system
        if not system.can_delay(member.locs):
            return member
        zone = member.zone.up().constrained(
            self._scaled(system.invariant_constraints(member.locs, member.vars))
        )
        return _Member(member.locs, member.vars, zone)

    # ------------------------------------------------------------------
    # Closures
    # ------------------------------------------------------------------

    def _admit(
        self,
        seen: Dict[tuple, List[DBM]],
        members: Iterable[_Member],
        retained: List[int],
    ) -> List[_Member]:
        """Admit a frontier wave into the retained sets, with pruning.

        A new zone included in a retained (or earlier-admitted) zone of
        the same discrete state is dropped; a retained zone strictly
        dominated by an admitted one is evicted.  Retention is therefore
        an antichain per discrete state, and — because the zone operators
        are inclusion-monotone, so a dominating zone's successors cover a
        dominated zone's — the fixpoint's retained sets are independent
        of processing order: the batched and per-zone paths agree on the
        final member sets, not just on the monitor answers.  The
        ``max_states`` budget is checked against the post-pruning total
        carried in the one-cell ``retained`` count.  Returns the admitted
        members (the next expansion wave).
        """
        kept: List[_Member] = []
        for (locs, vars), group in self._grouped(members).items():
            zones = seen.setdefault((locs, vars), [])
            fresh = [m.zone for m in group if not m.zone.is_empty()]
            if not fresh:
                continue
            if self.batch and len(fresh) >= self.batch_min:
                new_stack = np.stack([z.m for z in fresh])
                seen_stack = np.stack([z.m for z in zones]) if zones else None
                keep, drop_seen = _sk.subsume_frontier(new_stack, seen_stack)
                if zones and drop_seen.any():
                    retained[0] -= int(drop_seen.sum())
                    zones[:] = [
                        z for z, dropped in zip(zones, drop_seen) if not dropped
                    ]
                for idx in np.flatnonzero(keep):
                    zones.append(fresh[idx])
                    kept.append(_Member(locs, vars, fresh[idx]))
                retained[0] += int(keep.sum())
            else:
                for zone in fresh:
                    if any(old.includes(zone) for old in zones):
                        continue
                    survivors = [old for old in zones if not zone.includes(old)]
                    retained[0] -= len(zones) - len(survivors)
                    survivors.append(zone)
                    zones[:] = survivors
                    retained[0] += 1
                    kept.append(_Member(locs, vars, zone))
            if retained[0] > self.max_states:
                raise EstimateLimit(
                    f"hidden-move closure exceeded {self.max_states} symbolic"
                    f" states (raise max_states or simplify the partition)"
                )
        return kept

    def _closure_fixpoint(
        self, work: List[_Member], *, timed: bool
    ) -> List[_Member]:
        """Reachability over hidden moves (with delays iff ``timed``).

        Batched mode expands wave by wave: each wave is grouped by
        discrete state and every internal move fires over a whole group
        through one stacked-kernel call.  Scalar mode (``batch=False``)
        keeps the original member-at-a-time LIFO loop as the differential
        reference.  Both share :meth:`_admit`, so retention, budget
        accounting, and the resulting fixpoint agree.
        """
        counters.inc("estimate.closures")
        seen: Dict[tuple, List[DBM]] = {}
        retained = [0]
        if self.batch:
            frontier = list(work)
            while frontier:
                wave = self._admit(seen, frontier, retained)
                frontier = []
                for (locs, vars), group in self._grouped(wave).items():
                    zones = [m.zone for m in group]
                    for move in self._internal_moves(locs, vars):
                        res = self._post_group(
                            locs, vars, zones, move, delayed=timed
                        )
                        if res is None:
                            continue
                        new_locs, new_vars, new_zones = res
                        frontier.extend(
                            _Member(new_locs, new_vars, zone)
                            for zone in new_zones
                        )
        else:
            stack = list(work)
            while stack:
                member = stack.pop()
                if not self._admit(seen, [member], retained):
                    continue
                for move in self._internal_moves(member.locs, member.vars):
                    nxt = self._post(member, move)
                    if nxt is not None:
                        stack.append(self._delayed(nxt) if timed else nxt)
        out = [
            _Member(locs, vars, zone)
            for (locs, vars), zones in seen.items()
            for zone in zones
        ]
        counters.observe("estimate.closure_members", len(out))
        return out

    def _instant_closure(self, members: List[_Member]) -> List[_Member]:
        """Closure under hidden moves at the current instant (no delay)."""
        return self._closure_fixpoint(list(members), timed=False)

    def _delayed_frontier(self, members: List[_Member]) -> List[_Member]:
        """Members with the elapsed clock reset, then delay-closed."""
        out: List[_Member] = []
        for (locs, vars), group in self._grouped(members).items():
            if self.batch and len(group) >= self.batch_min:
                stacked = np.stack([m.zone.m for m in group])
                _sk.reset(stacked, [self.tdx])
                if self.system.can_delay(locs):
                    _sk.up(stacked)
                    invariant = self._scaled(
                        self.system.invariant_constraints(locs, vars)
                    )
                    if invariant:
                        # Cannot empty a nonempty zone (the zone already
                        # satisfied its invariant before delaying).
                        _sk.constrain(stacked, invariant)
                out.extend(
                    _Member(locs, vars, DBM(stacked[i]))
                    for i in range(stacked.shape[0])
                )
            else:
                out.extend(
                    self._delayed(
                        _Member(m.locs, m.vars, m.zone.reset([self.tdx]))
                    )
                    for m in group
                )
        return out

    def _timed_closure(self) -> List[_Member]:
        """Closure under delays and hidden moves, elapsed clock reset first.

        Memoized until the state set changes — the monitors ask for the
        quiescence bound, then advance through the same closure, and may
        probe several delays against one state set; each of those reuses
        the memo.  Only :meth:`advance` / :meth:`observe` /
        :meth:`observe_move` / :meth:`reset` invalidate (they change the
        state set); rescaling updates the memo in place instead of
        dropping it (:meth:`_ensure_scale`).
        """
        if self._closure is None:
            counters.inc("estimate.timed_closures")
            self._closure = self._closure_fixpoint(
                self._delayed_frontier(self.states), timed=True
            )
        return self._closure

    # ------------------------------------------------------------------
    # The monitor-facing operations
    # ------------------------------------------------------------------

    def max_quiescence(self) -> Tuple[Optional[Fraction], bool]:
        """Sup of durations reachable without an observable action.

        Returns ``(bound, strict)``; bound ``None`` means silence is
        allowed forever.
        """
        best: Optional[Fraction] = None
        best_strict = False
        for member in self._timed_closure():
            enc = int(member.zone.m[self.tdx, 0])
            if enc >= INF:
                return None, False
            value, strict = decode(enc)
            bound = Fraction(value, self.scale)
            if best is None or bound > best or (bound == best and not strict):
                best, best_strict = bound, strict
        return best, best_strict

    def advance(self, d: Fraction) -> bool:
        """Extend the trace by a silent delay of exactly ``d``.

        False iff no member admits a hidden-move interleaving of duration
        ``d`` (a quiescence violation for the monitors).
        """
        if d < 0:
            raise ValueError("negative delay")
        if d == 0:
            return bool(self.states)
        self._ensure_scale(d)
        ticks = int(d * self.scale)
        try:
            pin = [(self.tdx, 0, le(ticks)), (0, self.tdx, le(-ticks))]
        except ValueError as err:  # delay horizon beyond the DBM range
            raise EstimateLimit(str(err)) from err
        result: List[_Member] = []
        for (locs, vars), group in self._grouped(self._timed_closure()).items():
            if self.batch and len(group) >= self.batch_min:
                stacked = np.stack([m.zone.m for m in group])
                keep = _sk.constrain(stacked, pin)
                result.extend(
                    _Member(locs, vars, DBM(stacked[i].copy()))
                    for i in np.flatnonzero(keep)
                )
            else:
                for member in group:
                    zone = member.zone.constrained(pin)
                    if not zone.is_empty():
                        result.append(_Member(locs, vars, zone))
        if not result:
            return False
        self.states = result
        self._closure = None
        self._notify()
        return True

    def observe(
        self, label: str, direction: str, updates: Optional[Sequence] = None
    ) -> bool:
        """Extend the trace by an observed action; False iff disallowed."""
        decls = self.system.decls
        matched: List[_Member] = []
        for (locs, vars), group in self._grouped(self.states).items():
            if updates:
                vars = apply_var_updates(decls, vars, updates)
            zones = [m.zone for m in group]
            for move in self.system.moves_from(locs, vars, self.mode):
                if move.label != label or move.direction != direction:
                    continue
                res = self._post_group(locs, vars, zones, move, delayed=False)
                if res is None:
                    continue
                new_locs, new_vars, new_zones = res
                matched.extend(
                    _Member(new_locs, new_vars, zone) for zone in new_zones
                )
        if not matched:
            return False
        self.states = self._instant_closure(matched)
        self._closure = None
        self._notify()
        return True

    def observe_move(self, move: Move) -> bool:
        """Extend the trace by one *specific* move (not just its label).

        Used when the observer knows exactly which composed move fired —
        e.g. the tester's own environment-chosen input, whose
        value-passing variant matters; label-level :meth:`observe` would
        keep successors of every same-label variant.
        """
        matched: List[_Member] = []
        for (locs, vars), group in self._grouped(self.states).items():
            res = self._post_group(
                locs, vars, [m.zone for m in group], move, delayed=False
            )
            if res is None:
                continue
            new_locs, new_vars, new_zones = res
            matched.extend(
                _Member(new_locs, new_vars, zone) for zone in new_zones
            )
        if not matched:
            return False
        self.states = self._instant_closure(matched)
        self._closure = None
        self._notify()
        return True

    def enabled_labels(self, direction: str) -> List[str]:
        """Labels of ``direction`` moves enabled in some member right now.

        Runs the existence-only probe (:meth:`_group_enables`) instead of
        materialising successor zones: per (group, label) the probe stops
        at the first member with a nonempty post.
        """
        labels: set = set()
        for (locs, vars), group in self._grouped(self.states).items():
            zones = [m.zone for m in group]
            for move in self.system.moves_from(locs, vars, self.mode):
                if move.direction != direction or move.label in labels:
                    continue
                if self._group_enables(locs, vars, zones, move):
                    labels.add(move.label)
        return sorted(labels)

    def allowed_outputs(self) -> List[str]:
        return self.enabled_labels("output")

    def describe(self) -> str:
        sizes = {}
        for member in self.states:
            names = self.system.network.location_names(member.locs)
            key = ",".join(names)
            sizes[key] = sizes.get(key, 0) + 1
        body = "; ".join(f"{k} x{n}" if n > 1 else k for k, n in sorted(sizes.items()))
        return f"estimate[{len(self.states)}: {body}]"


__all__ = [
    "EstimateLimit",
    "StateEstimate",
    "apply_var_updates",
]
