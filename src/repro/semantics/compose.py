"""State estimation for partially composed plants (UPPAAL-TRON style).

A multi-automaton plant monitored through its interface partition has
*hidden* moves: internalised synchronizations (and their variable
updates) fire at instants the tester cannot observe.  ``s0 After σ`` is
then no longer a single state but the **set** of states reachable by
interleaving σ's observed delays and actions with hidden moves at
arbitrary legal times.  :class:`StateEstimate` tracks that set
symbolically, which is exactly what the online monitors need:

* a delay ``d`` is conformant iff *some* member admits a hidden-move
  interleaving of total duration exactly ``d``;
* an output ``o`` is allowed iff *some* member enables an ``o`` move at
  the current instant;
* the maximal quiescence is the supremum of durations reachable without
  an observable action.

**Representation.**  Members are ``(locations, variables, zone)`` triples
whose zones live in a DBM *padded with one extra clock* ``t`` (index
``system.dim``): the time elapsed since the last observation.  ``t``
appears in no model constraint, so guard/invariant/reset encodings from
:class:`~repro.semantics.system.System` apply unchanged, while
constraining ``t == d`` after a timed closure selects exactly the
interleavings of duration ``d``.  Observed delays are rationals; all
encodings are integers, so the estimate keeps a global *time scale*
``k`` (every bound multiplied by ``k``) and rescales on demand so that
``k·d`` is integral — the classic region-to-integer trick.

The timed closure is a reachability fixpoint (delay-close, fire hidden
moves, repeat, with zone-inclusion subsumption) bounded by
``max_states``; models whose hidden behaviour exceeds the budget raise
:class:`EstimateLimit` rather than returning an unsound answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from ..dbm import DBM
from ..dbm.bounds import INF, MAX_BOUND_CONST, decode, le
from ..expr.env import Declarations
from ..ta.model import ModelError
from .system import PARTIAL, Move, System


class EstimateLimit(RuntimeError):
    """The hidden-move closure exceeded the configured state budget."""


def apply_var_updates(decls: Declarations, vars: tuple, updates) -> tuple:
    """Apply ``(name, index_or_None, value)`` updates to a variable tuple.

    The message-payload helper shared by the monitors and the simulated
    implementations (UPPAAL value-passing idiom); unknown names and
    out-of-range array indices are ignored.
    """
    state = list(vars)
    for name, index, value in updates:
        if index is None:
            var = decls.int_vars.get(name)
            if var is not None:
                state[var.slot] = value
        else:
            arr = decls.arrays.get(name)
            if arr is not None and 0 <= index < arr.size:
                state[arr.offset + index] = value
    return tuple(state)


def _scaled_zone(zone: DBM, factor: int) -> DBM:
    """The zone with every finite bound constant multiplied by ``factor``.

    Scaling all values by the same positive factor preserves both the
    shortest-path (canonical-form) inequalities and the strictness bits,
    so the result is canonical iff the input was.  Raises
    :class:`EstimateLimit` if a scaled constant would leave the range the
    DBM kernel's drift-tolerant closure is sound for.
    """
    m = zone.m
    finite = m < INF
    values = (m >> 1) * factor
    if (abs(values[finite]) > MAX_BOUND_CONST).any():
        raise EstimateLimit(
            "rescaled zone constant exceeds the supported DBM range"
            f" (±{MAX_BOUND_CONST}); the observed delays' denominators are"
            " too varied for this model's constants"
        )
    scaled = (values << 1) | (m & 1)
    scaled[~finite] = INF
    return DBM(scaled)


@dataclass(frozen=True)
class _Member:
    """One element of the state set (zone padded with the elapsed clock)."""

    locs: Tuple[int, ...]
    vars: Tuple[int, ...]
    zone: DBM


class StateEstimate:
    """The set of spec states compatible with the observed timed trace."""

    def __init__(
        self,
        system: System,
        mode: str = PARTIAL,
        *,
        max_states: int = 256,
    ):
        self.system = system
        self.mode = mode
        #: Index of the padded elapsed-time clock.
        self.tdx = system.dim
        self.max_states = max_states
        self.scale = 1
        # Largest time scale for which every scaled model constant stays
        # within the DBM kernel's sound range; beyond it rescaling raises
        # EstimateLimit instead of silently corrupting closures.
        max_const = max([1] + system.network.max_constants())
        self._scale_cap = max(1, MAX_BOUND_CONST // (max_const + 1))
        self.states: List[_Member] = []
        self._closure: Optional[List[_Member]] = None
        self.reset()

    # ------------------------------------------------------------------
    # Construction / bookkeeping
    # ------------------------------------------------------------------

    def reset(self) -> None:
        system = self.system
        locs = system.network.initial_locations()
        vars = system.decls.initial_state()
        self.scale = 1
        zone = DBM.zero(self.tdx + 1)
        zone = zone.constrained(
            self._scaled(system.invariant_constraints(locs, vars))
        )
        self.states = self._instant_closure([_Member(locs, vars, zone)])
        if not self.states:
            raise ModelError("initial state violates an invariant")
        self._closure = None

    @property
    def size(self) -> int:
        return len(self.states)

    def _scaled(self, constraints) -> list:
        if self.scale == 1:
            return list(constraints)
        k = self.scale
        return [
            (i, j, enc if enc >= INF else (((enc >> 1) * k) << 1) | (enc & 1))
            for (i, j, enc) in constraints
        ]

    def _ensure_scale(self, d: Fraction) -> None:
        q = d.denominator
        if self.scale % q == 0:
            return
        new_scale = self.scale * q // gcd(self.scale, q)
        if new_scale > self._scale_cap:
            raise EstimateLimit(
                f"time scale {new_scale} (lcm of observed delay"
                f" denominators) exceeds the sound DBM range for this"
                f" model's constants (cap {self._scale_cap})"
            )
        factor = new_scale // self.scale
        self.states = [
            _Member(m.locs, m.vars, _scaled_zone(m.zone, factor))
            for m in self.states
        ]
        self.scale = new_scale
        self._closure = None

    # ------------------------------------------------------------------
    # Padded-zone semantics pieces
    # ------------------------------------------------------------------

    def _moves(self, member: _Member) -> List[Move]:
        return self.system.moves_from(member.locs, member.vars, self.mode)

    def _post(self, member: _Member, move: Move) -> Optional[_Member]:
        """Discrete successor on padded zones (mirrors ``System.post``)."""
        system = self.system
        new_vars = system.apply_move_vars(member.vars, move)
        if new_vars is None:
            return None
        new_locs = system.target_locs(member.locs, move)
        if not system.invariant_int_ok(new_locs, new_vars):
            return None
        zone = member.zone.constrained(
            self._scaled(system.guard_constraints(move, member.vars))
        )
        if zone.is_empty():
            return None
        resets = system.resets_of(move)
        if resets:
            zone = zone.assign_clocks(
                [(clock, value * self.scale) for clock, value in resets]
            )
        zone = zone.constrained(
            self._scaled(system.invariant_constraints(new_locs, new_vars))
        )
        if zone.is_empty():
            return None
        return _Member(new_locs, new_vars, zone)

    def _delayed(self, member: _Member) -> _Member:
        """Delay closure of a member (elapsed clock advances with time)."""
        system = self.system
        if not system.can_delay(member.locs):
            return member
        zone = member.zone.up().constrained(
            self._scaled(system.invariant_constraints(member.locs, member.vars))
        )
        return _Member(member.locs, member.vars, zone)

    # ------------------------------------------------------------------
    # Closures
    # ------------------------------------------------------------------

    def _closure_fixpoint(
        self, work: List[_Member], *, timed: bool
    ) -> List[_Member]:
        """Reachability over hidden moves (with delays iff ``timed``)."""
        seen: Dict[tuple, List[DBM]] = {}
        out: List[_Member] = []
        while work:
            member = work.pop()
            if member.zone.is_empty():
                continue
            key = (member.locs, member.vars)
            zones = seen.setdefault(key, [])
            if any(existing.includes(member.zone) for existing in zones):
                continue
            zones.append(member.zone)
            out.append(member)
            if len(out) > self.max_states:
                raise EstimateLimit(
                    f"hidden-move closure exceeded {self.max_states} symbolic"
                    f" states (raise max_states or simplify the partition)"
                )
            for move in self._moves(member):
                if move.direction != "internal":
                    continue
                nxt = self._post(member, move)
                if nxt is not None:
                    work.append(self._delayed(nxt) if timed else nxt)
        return out

    def _instant_closure(self, members: List[_Member]) -> List[_Member]:
        """Closure under hidden moves at the current instant (no delay)."""
        return self._closure_fixpoint(list(members), timed=False)

    def _timed_closure(self) -> List[_Member]:
        """Closure under delays and hidden moves, elapsed clock reset first.

        Memoized until the state set changes: the monitors ask for the
        quiescence bound and then advance through the same closure.
        """
        if self._closure is None:
            frontier = [
                self._delayed(
                    _Member(m.locs, m.vars, m.zone.reset([self.tdx]))
                )
                for m in self.states
            ]
            self._closure = self._closure_fixpoint(frontier, timed=True)
        return self._closure

    # ------------------------------------------------------------------
    # The monitor-facing operations
    # ------------------------------------------------------------------

    def max_quiescence(self) -> Tuple[Optional[Fraction], bool]:
        """Sup of durations reachable without an observable action.

        Returns ``(bound, strict)``; bound ``None`` means silence is
        allowed forever.
        """
        best: Optional[Fraction] = None
        best_strict = False
        for member in self._timed_closure():
            enc = int(member.zone.m[self.tdx, 0])
            if enc >= INF:
                return None, False
            value, strict = decode(enc)
            bound = Fraction(value, self.scale)
            if best is None or bound > best or (bound == best and not strict):
                best, best_strict = bound, strict
        return best, best_strict

    def advance(self, d: Fraction) -> bool:
        """Extend the trace by a silent delay of exactly ``d``.

        False iff no member admits a hidden-move interleaving of duration
        ``d`` (a quiescence violation for the monitors).
        """
        if d < 0:
            raise ValueError("negative delay")
        if d == 0:
            return bool(self.states)
        self._ensure_scale(d)
        ticks = int(d * self.scale)
        try:
            pin = [(self.tdx, 0, le(ticks)), (0, self.tdx, le(-ticks))]
        except ValueError as err:  # delay horizon beyond the DBM range
            raise EstimateLimit(str(err)) from err
        result = []
        for member in self._timed_closure():
            zone = member.zone.constrained(pin)
            if not zone.is_empty():
                result.append(_Member(member.locs, member.vars, zone))
        if not result:
            return False
        self.states = result
        self._closure = None
        return True

    def observe(
        self, label: str, direction: str, updates: Optional[Sequence] = None
    ) -> bool:
        """Extend the trace by an observed action; False iff disallowed."""
        decls = self.system.decls
        matched: List[_Member] = []
        for member in self.states:
            if updates:
                member = _Member(
                    member.locs,
                    apply_var_updates(decls, member.vars, updates),
                    member.zone,
                )
            for move in self._moves(member):
                if move.label != label or move.direction != direction:
                    continue
                nxt = self._post(member, move)
                if nxt is not None:
                    matched.append(nxt)
        if not matched:
            return False
        self.states = self._instant_closure(matched)
        self._closure = None
        return True

    def observe_move(self, move: Move) -> bool:
        """Extend the trace by one *specific* move (not just its label).

        Used when the observer knows exactly which composed move fired —
        e.g. the tester's own environment-chosen input, whose
        value-passing variant matters; label-level :meth:`observe` would
        keep successors of every same-label variant.
        """
        matched: List[_Member] = []
        for member in self.states:
            nxt = self._post(member, move)
            if nxt is not None:
                matched.append(nxt)
        if not matched:
            return False
        self.states = self._instant_closure(matched)
        self._closure = None
        return True

    def enabled_labels(self, direction: str) -> List[str]:
        """Labels of ``direction`` moves enabled in some member right now."""
        labels: set = set()
        for member in self.states:
            for move in self._moves(member):
                if move.direction != direction or move.label in labels:
                    continue
                if self._post(member, move) is not None:
                    labels.add(move.label)
        return sorted(labels)

    def allowed_outputs(self) -> List[str]:
        return self.enabled_labels("output")

    def describe(self) -> str:
        sizes = {}
        for member in self.states:
            names = self.system.network.location_names(member.locs)
            key = ",".join(names)
            sizes[key] = sizes.get(key, 0) + 1
        body = "; ".join(f"{k} x{n}" if n > 1 else k for k, n in sorted(sizes.items()))
        return f"estimate[{len(self.states)}: {body}]"


__all__ = [
    "EstimateLimit",
    "StateEstimate",
    "apply_var_updates",
]
