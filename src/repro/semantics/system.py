"""Executable semantics of a network: moves, posts, preds, invariants.

This is the TIOTS of Definition 4, in two flavours:

* **symbolic** — zones (DBMs) per discrete state, with ``post`` (discrete
  successor), ``delay_closure`` (time successor within invariants) and
  ``pred`` (discrete predecessor of a federation), the building blocks of
  the zone-graph explorer and the game solver;
* **concrete** — exact rational valuations with enabled-delay intervals,
  used by the test executor and the simulated implementations.

A **move** is a complete synchronization: one internal edge, an
emitter/receiver pair on a binary channel, or — on a *broadcast* channel —
one emitter plus every automaton with an enabled receiving edge (emission
never blocks on missing receivers).  Controllability follows the paper's
TIOGA convention: input channels are controllable; output, broadcast, and
internal moves are uncontrollable (internal edges carry an explicit flag).

**Urgent locations** freeze delay exactly like committed ones (``d = 0``
is the only legal delay while any automaton sits in one) but, unlike
committed locations, grant no priority: every enabled move of the network
remains enabled.  Both flags are folded into :meth:`System.can_delay`, so
delay closure, maximal-delay computation, and the solvers' boundary
handling treat urgent states uniformly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from ..dbm import DBM, Federation, decode, INF
from ..expr.env import Declarations
from ..expr.eval import Context, EvalError, apply_assignments
from ..ta.model import Automaton, Edge, ModelError, Network
from .state import ConcreteState, SymbolicState, zero_valuation


@dataclass(frozen=True)
class Move:
    """One complete transition of the network (internal or a sync pair)."""

    label: str  # channel name, or "tau"
    direction: str  # 'input' | 'output' | 'internal'
    controllable: bool
    edges: Tuple[Tuple[int, Edge], ...]  # (automaton index, edge); emitter first

    @property
    def observable(self) -> bool:
        return self.direction in ("input", "output")

    def describe(self) -> str:
        kind = {"input": "?", "output": "!", "internal": ""}[self.direction]
        body = "; ".join(edge.describe() for _, edge in self.edges)
        return f"{self.label}{kind} [{body}]"

    def __repr__(self) -> str:
        return f"Move({self.label}, {self.direction})"


@dataclass(frozen=True)
class DelayInterval:
    """Delays ``d`` enabling a move: ``lo (<|<=) d (<|<=) hi`` (hi None = inf)."""

    lo: Fraction
    lo_strict: bool
    hi: Optional[Fraction]
    hi_strict: bool

    def is_empty(self) -> bool:
        if self.hi is None:
            return False
        if self.lo < self.hi:
            return False
        return self.lo > self.hi or self.lo_strict or self.hi_strict

    def contains(self, d: Fraction) -> bool:
        if d < self.lo or (d == self.lo and self.lo_strict):
            return False
        if self.hi is not None and (d > self.hi or (d == self.hi and self.hi_strict)):
            return False
        return True

    def pick(self) -> Fraction:
        """A representative delay (earliest if closed, else a midpoint)."""
        if not self.lo_strict:
            return self.lo
        if self.hi is None:
            return self.lo + 1
        return (self.lo + self.hi) / 2


class System:
    """Semantic wrapper around a prepared :class:`Network`."""

    def __init__(self, network: Network):
        if not network._prepared:
            network.prepare()
        self.network = network
        self.decls: Declarations = network.decls
        self.dim = network.dim
        self.automata: List[Automaton] = network.automata
        self._proc_index: Dict[str, int] = {
            a.name: i for i, a in enumerate(self.automata)
        }
        # Memoization of per-discrete-state computations: the solver asks
        # for the same invariant zones, move lists, and guard constraints
        # thousands of times during the backward fixpoint.
        self._inv_cache: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], DBM] = {}
        self._moves_cache: Dict[
            Tuple[Tuple[int, ...], Tuple[int, ...]], List["Move"]
        ] = {}
        self._guard_cache: Dict[Tuple[int, Tuple[int, ...]], list] = {}
        # Per automaton: location index -> internal edges / sync edges.
        self._internal: List[Dict[int, List[Edge]]] = []
        self._emit: Dict[str, List[Tuple[int, Edge]]] = {}
        self._recv: Dict[str, List[Tuple[int, Edge]]] = {}
        for idx, automaton in enumerate(self.automata):
            per_loc: Dict[int, List[Edge]] = {}
            for edge in automaton.edges:
                src = automaton.location_index(edge.source)
                if edge.sync is None:
                    per_loc.setdefault(src, []).append(edge)
                else:
                    channel, bang = edge.sync
                    table = self._emit if bang == "!" else self._recv
                    table.setdefault(channel, []).append((idx, edge))
            self._internal.append(per_loc)

    # ------------------------------------------------------------------
    # Contexts and invariants
    # ------------------------------------------------------------------

    def ctx(self, vars: Tuple[int, ...]) -> Context:
        return Context(self.decls, vars)

    def query_ctx(self, locs: Tuple[int, ...], vars: Tuple[int, ...]) -> Context:
        """A context where dotted location tests (``IUT.Bright``) work."""

        def location_test(proc: str, loc: str) -> bool:
            a_idx = self._proc_index.get(proc)
            if a_idx is None:
                raise EvalError(f"unknown process {proc!r}")
            automaton = self.automata[a_idx]
            if loc not in automaton.locations:
                raise EvalError(f"unknown location {proc}.{loc}")
            return locs[a_idx] == automaton.location_index(loc)

        return Context(self.decls, vars, location_test)

    def invariant_int_ok(self, locs: Tuple[int, ...], vars: Tuple[int, ...]) -> bool:
        ctx = self.ctx(vars)
        for a_idx, automaton in enumerate(self.automata):
            loc = automaton.location_list[locs[a_idx]]
            if not loc.inv_split.int_holds(ctx):
                return False
        return True

    def invariant_zone(self, locs: Tuple[int, ...], vars: Tuple[int, ...]) -> DBM:
        key = (locs, vars)
        cached = self._inv_cache.get(key)
        if cached is not None:
            return cached
        ctx = self.ctx(vars)
        zone = DBM.universal(self.dim)
        for a_idx, automaton in enumerate(self.automata):
            loc = automaton.location_list[locs[a_idx]]
            constraints = loc.inv_split.clock_constraints(ctx)
            if constraints:
                zone = zone.constrained(constraints)
        self._inv_cache[key] = zone
        return zone

    def can_delay(self, locs: Tuple[int, ...]) -> bool:
        for a_idx, automaton in enumerate(self.automata):
            loc = automaton.location_list[locs[a_idx]]
            if loc.committed or loc.urgent:
                return False
        return True

    def has_committed(self, locs: Tuple[int, ...]) -> bool:
        """True iff some automaton is in a committed location."""
        for a_idx, automaton in enumerate(self.automata):
            if automaton.location_list[locs[a_idx]].committed:
                return True
        return False

    def has_urgent(self, locs: Tuple[int, ...]) -> bool:
        """True iff some automaton is in an urgent location."""
        for a_idx, automaton in enumerate(self.automata):
            if automaton.location_list[locs[a_idx]].urgent:
                return True
        return False


    # ------------------------------------------------------------------
    # Move enumeration
    # ------------------------------------------------------------------

    def moves_from(
        self, locs: Tuple[int, ...], vars: Tuple[int, ...]
    ) -> List[Move]:
        """All moves whose *integer* guards hold (clock parts are zones)."""
        key = (locs, vars)
        cached = self._moves_cache.get(key)
        if cached is not None:
            return cached
        ctx = self.ctx(vars)
        committed = self.has_committed(locs)
        moves: List[Move] = []

        def committed_ok(indices: Iterable[int]) -> bool:
            if not committed:
                return True
            for a_idx in indices:
                automaton = self.automata[a_idx]
                if automaton.location_list[locs[a_idx]].committed:
                    return True
            return False

        for a_idx, per_loc in enumerate(self._internal):
            for edge in per_loc.get(locs[a_idx], ()):
                if not committed_ok((a_idx,)):
                    continue
                if edge.guard_split.int_holds(ctx):
                    moves.append(
                        Move("tau", "internal", edge.controllable, ((a_idx, edge),))
                    )
        for channel_name, channel in self.network.channels.items():
            emitters = self._emit.get(channel_name, ())
            receivers = self._recv.get(channel_name, ())
            if channel.broadcast:
                moves.extend(
                    self._broadcast_moves(
                        channel_name, emitters, receivers, locs, ctx, committed_ok
                    )
                )
                continue
            for i, e_send in emitters:
                automaton = self.automata[i]
                if automaton.location_index(e_send.source) != locs[i]:
                    continue
                if not e_send.guard_split.int_holds(ctx):
                    continue
                for j, e_recv in receivers:
                    if i == j:
                        continue
                    recv_automaton = self.automata[j]
                    if recv_automaton.location_index(e_recv.source) != locs[j]:
                        continue
                    if not committed_ok((i, j)):
                        continue
                    if not e_recv.guard_split.int_holds(ctx):
                        continue
                    direction = (
                        "input"
                        if channel.kind == "input"
                        else "output"
                        if channel.kind == "output"
                        else "internal"
                    )
                    moves.append(
                        Move(
                            channel_name,
                            direction,
                            channel.controllable,
                            ((i, e_send), (j, e_recv)),
                        )
                    )
        self._moves_cache[key] = moves
        return moves

    def _broadcast_moves(
        self,
        channel_name: str,
        emitters,
        receivers,
        locs: Tuple[int, ...],
        ctx: Context,
        committed_ok,
    ) -> List[Move]:
        """Broadcast synchronizations from a discrete state.

        One move per (enabled emitter edge, choice of one enabled receiving
        edge per listening automaton).  Receivers never block the emitter:
        an automaton with no enabled receiving edge simply does not
        participate.  Broadcast receiver guards are integer-only (enforced
        by :meth:`Network.prepare`), so the participating set is fully
        determined by the discrete state and each combination is a single
        symbolic move.  In a committed state the move is enabled iff *some*
        participant (emitter or receiver) occupies a committed location.
        """
        moves: List[Move] = []
        for i, e_send in emitters:
            automaton = self.automata[i]
            if automaton.location_index(e_send.source) != locs[i]:
                continue
            if not e_send.guard_split.int_holds(ctx):
                continue
            per_automaton: Dict[int, List[Edge]] = {}
            for j, e_recv in receivers:
                if i == j:
                    continue
                recv_automaton = self.automata[j]
                if recv_automaton.location_index(e_recv.source) != locs[j]:
                    continue
                if not e_recv.guard_split.int_holds(ctx):
                    continue
                per_automaton.setdefault(j, []).append(e_recv)
            indices = sorted(per_automaton)
            if not committed_ok((i,) + tuple(indices)):
                continue
            for combo in itertools.product(*(per_automaton[j] for j in indices)):
                participants = tuple(zip(indices, combo))
                moves.append(
                    Move(
                        channel_name,
                        "output",
                        False,
                        ((i, e_send),) + participants,
                    )
                )
        return moves

    def open_moves_from(
        self, locs: Tuple[int, ...], vars: Tuple[int, ...]
    ) -> List[Move]:
        """Moves of an *open* system: sync edges fire alone.

        Used when a network models a single component (the plant spec for
        the tioco monitor, or a simulated implementation) whose partners
        live outside the model: an edge ``c?`` on an input channel is an
        input move, ``c!`` on an output channel is an output move.  On a
        broadcast channel the *edge* decides: the emitting half ``c!`` is
        an (observable, uncontrollable) output of the component, the
        receiving half ``c?`` an input the environment may trigger.
        """
        ctx = self.ctx(vars)
        committed = self.has_committed(locs)
        moves: List[Move] = []
        for a_idx, automaton in enumerate(self.automata):
            src_loc = automaton.location_list[locs[a_idx]]
            for edge in automaton.edges:
                if automaton.location_index(edge.source) != locs[a_idx]:
                    continue
                if committed and not src_loc.committed:
                    continue
                if not edge.guard_split.int_holds(ctx):
                    continue
                if edge.sync is None:
                    moves.append(
                        Move("tau", "internal", edge.controllable, ((a_idx, edge),))
                    )
                    continue
                channel = self.network.channels.get(edge.sync[0])
                if channel is None:
                    raise ModelError(f"undeclared channel on {edge.describe()}")
                if channel.broadcast:
                    direction = "output" if edge.sync[1] == "!" else "input"
                    controllable = direction == "input"
                else:
                    direction = (
                        "input"
                        if channel.kind == "input"
                        else "output"
                        if channel.kind == "output"
                        else "internal"
                    )
                    controllable = channel.controllable
                moves.append(
                    Move(channel.name, direction, controllable, ((a_idx, edge),))
                )
        return moves

    # ------------------------------------------------------------------
    # Discrete transition pieces
    # ------------------------------------------------------------------

    def target_locs(self, locs: Tuple[int, ...], move: Move) -> Tuple[int, ...]:
        out = list(locs)
        for a_idx, edge in move.edges:
            out[a_idx] = self.automata[a_idx].location_index(edge.target)
        return tuple(out)

    def apply_move_vars(
        self, vars: Tuple[int, ...], move: Move
    ) -> Optional[Tuple[int, ...]]:
        """Variable update of a move (emitter first); None on range error."""
        state = vars
        for a_idx, edge in move.edges:
            if edge.int_assigns:
                try:
                    state = apply_assignments(edge.int_assigns, self.ctx(state))
                except (OverflowError, EvalError):
                    return None
        return state

    def guard_constraints(self, move: Move, vars: Tuple[int, ...]):
        """Encoded clock constraints of a move's guards (memoized)."""
        key = (tuple(edge.index for _, edge in move.edges), vars)
        cached = self._guard_cache.get(key)
        if cached is not None:
            return cached
        ctx = self.ctx(vars)
        constraints = []
        for _, edge in move.edges:
            constraints.extend(edge.guard_split.clock_constraints(ctx))
        self._guard_cache[key] = constraints
        return constraints

    def resets_of(self, move: Move) -> Tuple[Tuple[int, int], ...]:
        """Clock assignments of a move, emitter first (later wins)."""
        merged: Dict[int, int] = {}
        for _, edge in move.edges:
            for clock, value in edge.clock_resets:
                merged[clock] = value
        return tuple(sorted(merged.items()))

    # ------------------------------------------------------------------
    # Symbolic semantics
    # ------------------------------------------------------------------

    def initial_symbolic(self) -> SymbolicState:
        locs = self.network.initial_locations()
        vars = self.decls.initial_state()
        if not self.invariant_int_ok(locs, vars):
            raise ModelError("initial state violates an integer invariant")
        zone = DBM.zero(self.dim)
        inv = self.invariant_zone(locs, vars)
        zone = zone.intersect(inv)
        if zone.is_empty():
            raise ModelError("initial state violates a clock invariant")
        return self.delay_closure(SymbolicState(locs, vars, zone))

    def delay_closure(self, sym: SymbolicState) -> SymbolicState:
        if not self.can_delay(sym.locs):
            return sym
        zone = sym.zone.up().intersect(self.invariant_zone(sym.locs, sym.vars))
        return SymbolicState(sym.locs, sym.vars, zone)

    def post(self, sym: SymbolicState, move: Move) -> Optional[SymbolicState]:
        """Discrete successor (no delay closure); None if disabled/empty."""
        new_vars = self.apply_move_vars(sym.vars, move)
        if new_vars is None:
            return None
        new_locs = self.target_locs(sym.locs, move)
        if not self.invariant_int_ok(new_locs, new_vars):
            return None
        zone = sym.zone.constrained(self.guard_constraints(move, sym.vars))
        if zone.is_empty():
            return None
        zone = zone.assign_clocks(self.resets_of(move))
        zone = zone.intersect(self.invariant_zone(new_locs, new_vars))
        if zone.is_empty():
            return None
        return SymbolicState(new_locs, new_vars, zone)

    def pred(
        self,
        source: SymbolicState,
        move: Move,
        target_fed: Federation,
    ) -> Federation:
        """States of ``source`` whose ``move``-successor lies in ``target_fed``."""
        if target_fed.is_empty():
            return Federation.empty(self.dim)
        fed = target_fed.assign_pred(self.resets_of(move))
        fed = fed.constrained(self.guard_constraints(move, source.vars))
        return fed.intersect_zone(source.zone)

    # ------------------------------------------------------------------
    # Concrete semantics
    # ------------------------------------------------------------------

    def initial_concrete(self) -> ConcreteState:
        locs = self.network.initial_locations()
        vars = self.decls.initial_state()
        return ConcreteState(locs, vars, zero_valuation(self.dim))

    def max_delay(
        self, state: ConcreteState
    ) -> Tuple[Optional[Fraction], bool]:
        """Largest delay allowed by invariants: (bound, strict); None = inf."""
        if not self.can_delay(state.locs):
            return Fraction(0), False
        zone = self.invariant_zone(state.locs, state.vars)
        hi: Optional[Fraction] = None
        hi_strict = False
        for i in range(1, self.dim):
            enc = int(zone.m[i, 0])
            if enc >= INF:
                continue
            value, strict = decode(enc)
            slack = Fraction(value) - state.clocks[i]
            if hi is None or slack < hi or (slack == hi and strict):
                hi, hi_strict = slack, strict
        return hi, hi_strict

    def enabled_interval(
        self, state: ConcreteState, move: Move
    ) -> Optional[DelayInterval]:
        """Delays after which ``move`` is enabled (guards + invariants).

        Integer guards were already checked by :meth:`moves_from`.  Returns
        None when no delay enables the move.
        """
        lo = Fraction(0)
        lo_strict = False
        hi, hi_strict = self.max_delay(state)
        for i, j, enc in self.guard_constraints(move, state.vars):
            if enc >= INF:
                continue
            value, strict = decode(enc)
            vi = state.clocks[i] if i else Fraction(0)
            vj = state.clocks[j] if j else Fraction(0)
            if i != 0 and j != 0:
                diff = vi - vj
                if diff > value or (diff == value and strict):
                    return None
                continue
            if j == 0:
                # (v_i + d) ≺ value  ->  d ≺ value - v_i
                slack = Fraction(value) - vi
                if hi is None or slack < hi or (slack == hi and strict and not hi_strict):
                    hi, hi_strict = slack, strict
            else:
                # -(v_j + d) ≺ value  ->  d ≻ -value - v_j
                need = -Fraction(value) - vj
                if need > lo or (need == lo and strict and not lo_strict):
                    lo, lo_strict = need, strict
        interval = DelayInterval(lo, lo_strict, hi, hi_strict)
        if interval.is_empty():
            return None
        return interval

    def move_options(
        self,
        state: ConcreteState,
        *,
        open_system: bool = False,
        directions: Optional[Tuple[str, ...]] = None,
    ) -> List[Tuple[Move, DelayInterval]]:
        """Moves enabled from ``state`` after *some* legal delay.

        Returns ``(move, interval)`` pairs where ``interval`` is the set of
        delays enabling the move (guards and the source invariant).  This
        is the shared enumeration primitive of the tioco/rtioco monitors,
        the simulated implementations, and the random-run machinery of
        :mod:`repro.gen`.
        """
        if open_system:
            moves = self.open_moves_from(state.locs, state.vars)
        else:
            moves = self.moves_from(state.locs, state.vars)
        options: List[Tuple[Move, DelayInterval]] = []
        for move in moves:
            if directions is not None and move.direction not in directions:
                continue
            interval = self.enabled_interval(state, move)
            if interval is not None:
                options.append((move, interval))
        return options

    def enabled_now(
        self,
        state: ConcreteState,
        *,
        open_system: bool = False,
        directions: Optional[Tuple[str, ...]] = None,
    ) -> List[Tuple[Move, DelayInterval]]:
        """Moves enabled at the current instant (zero delay)."""
        zero = Fraction(0)
        return [
            (move, interval)
            for move, interval in self.move_options(
                state, open_system=open_system, directions=directions
            )
            if interval.contains(zero)
        ]

    def fire(self, state: ConcreteState, move: Move) -> Optional[ConcreteState]:
        """Fire a move from a concrete state (delay 0); None if disabled."""
        interval = self.enabled_interval(state, move)
        if interval is None or not interval.contains(Fraction(0)):
            return None
        new_vars = self.apply_move_vars(state.vars, move)
        if new_vars is None:
            return None
        new_locs = self.target_locs(state.locs, move)
        if not self.invariant_int_ok(new_locs, new_vars):
            return None
        clocks = list(state.clocks)
        for clock, value in self.resets_of(move):
            clocks[clock] = Fraction(value)
        new_state = ConcreteState(new_locs, new_vars, tuple(clocks))
        inv = self.invariant_zone(new_locs, new_vars)
        if not new_state.in_zone(inv):
            return None
        return new_state

    def delay_ok(self, state: ConcreteState, d: Fraction) -> bool:
        hi, hi_strict = self.max_delay(state)
        if d == 0:
            return True
        if hi is None:
            return True
        return d < hi or (d == hi and not hi_strict)
